//! Quickstart: infer a join predicate over two CSV files in ~40 lines.
//!
//! Run with `cargo run --example quickstart`.
//!
//! A simulated user has the query "flight destination = hotel city" in
//! mind; JIM discovers it by asking membership questions about candidate
//! flight/hotel pairs, pruning uninformative candidates after each answer.

#![forbid(unsafe_code)]

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, GoalOracle, JoinPredicate};
use jim::relation::{csv, Product};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load raw data — no keys, no constraints, no metadata.
    let flights = csv::read_relation(
        "flights",
        "From,To,Airline\n\
         Paris,Lille,AF\n\
         Lille,NYC,AA\n\
         NYC,Paris,AA\n\
         Paris,NYC,AF\n",
    )?;
    let hotels = csv::read_relation(
        "hotels",
        "City,Discount\n\
         NYC,AA\n\
         Paris,\n\
         Lille,AF\n",
    )?;

    // 2. The candidate tuples are the cartesian product.
    let product = Product::new(vec![&flights, &hotels])?;
    let engine = Engine::new(product, &EngineOptions::default())?;
    println!(
        "instance: {} candidate tuples, {} candidate atoms\n",
        engine.stats().total_tuples,
        engine.universe().len()
    );

    // 3. A user who knows what they want but not how to write it. (In the
    //    demo this is a human; here it is the paper's simulated user.)
    let universe = engine.universe().clone();
    let goal = JoinPredicate::of(
        universe.clone(),
        [universe.id_by_names((0, "To"), (1, "City"))?],
    );
    let mut oracle = GoalOracle::new(goal.clone());

    // 4. Run the interactive loop with a lookahead strategy.
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let outcome = run_most_informative(engine, strategy.as_mut(), &mut oracle)?;

    // 5. The inferred query, as SQL and as a GAV mapping.
    println!("resolved after {} membership queries", outcome.interactions);
    println!("\ninferred predicate:  {}", outcome.inferred);
    println!("\nas SQL:\n{}", outcome.inferred.to_sql());
    println!("\nas GAV mapping:\n{}", outcome.inferred.to_gav("Package"));
    println!("\nprogress: {}", outcome.stats());

    assert!(outcome
        .inferred
        .instance_equivalent(&goal, outcome.engine.product())?);
    Ok(())
}
