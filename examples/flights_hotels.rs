//! The paper's full demonstration on the Figure 1 instance: the four
//! interaction types of Figure 3, and the "benefit of using a strategy"
//! comparison of Figure 4, rendered as terminal tables and bars.
//!
//! Run with `cargo run --example flights_hotels`.

#![forbid(unsafe_code)]

use jim::core::session::{run_free, run_most_informative, run_top_k, RandomPicker};
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, GoalOracle, TupleClass};
use jim::relation::display::product_table;
use jim::relation::{Product, ProductId, Relation};
use jim::synth::flights;

fn fresh_engine(f: &Relation, h: &Relation) -> Engine {
    let product = Product::new(vec![f, h]).expect("two non-empty relations");
    Engine::new(product, &EngineOptions::default()).expect("small instance")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = flights::flights();
    let h = flights::hotels();

    // ---- Figure 1: the denormalized table the user sees -----------------
    println!("== The instance (paper Figure 1) ==\n");
    let engine = fresh_engine(&f, &h);
    let ids: Vec<ProductId> = (0..12).map(ProductId).collect();
    let marks: Vec<String> = ids.iter().map(|id| format!("({})", id.0 + 1)).collect();
    println!("{}", product_table(engine.product(), &ids, Some(&marks)));

    // ---- §2 walkthrough: labels (3)+, (7)−, (8)− identify Q2 ------------
    println!("== §2 walkthrough ==\n");
    let mut e = fresh_engine(&f, &h);
    for (id, label) in flights::walkthrough_labels() {
        let out = e.label(id, label)?;
        println!(
            "label ({}) as {label}: {} tuples grayed out, {} informative left",
            id.0 + 1,
            out.pruned,
            out.informative_remaining
        );
    }
    println!("\nunique consistent query: {}", e.result());
    println!("{}\n", e.result().to_sql());

    // Show the gray-out state as the demo UI would.
    let marks: Vec<String> = ids
        .iter()
        .map(|&id| match e.label_of(id) {
            Some(l) => format!("({}) {l}", id.0 + 1),
            None => match e.classify(id).expect("id in range") {
                TupleClass::Informative => format!("({})", id.0 + 1),
                _ => format!("({}) ░", id.0 + 1), // grayed out
            },
        })
        .collect();
    println!("{}", product_table(e.product(), &ids, Some(&marks)));

    // ---- Figures 3 & 4: the four interaction types ----------------------
    println!("== The four interaction types (Figure 3), goal = Q2 ==\n");
    let goal = flights::q2(fresh_engine(&f, &h).universe());

    // (1) free labeling, no gray-out (random browsing user, avg of seeds)
    let mode1: f64 = average(8, |seed| {
        let out = run_free(
            fresh_engine(&f, &h),
            false,
            &mut RandomPicker::seeded(seed),
            &mut GoalOracle::new(goal.clone()),
        )
        .expect("consistent oracle");
        out.interactions as f64
    });

    // (2) free labeling with interactive gray-out
    let mode2: f64 = average(8, |seed| {
        let out = run_free(
            fresh_engine(&f, &h),
            true,
            &mut RandomPicker::seeded(seed),
            &mut GoalOracle::new(goal.clone()),
        )
        .expect("consistent oracle");
        out.interactions as f64
    });

    // (3) top-k proposals (k = 3)
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let out3 = run_top_k(
        fresh_engine(&f, &h),
        3,
        strategy.as_mut(),
        &mut GoalOracle::new(goal.clone()),
    )?;

    // (4) most informative tuple, one at a time
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let out4 = run_most_informative(
        fresh_engine(&f, &h),
        strategy.as_mut(),
        &mut GoalOracle::new(goal.clone()),
    )?;

    println!("interactions needed to identify Q2 (Figure 4):\n");
    bar("1. label anything (no gray-out)   ", mode1);
    bar("2. label anything + gray-out      ", mode2);
    bar(
        "3. label top-3 proposals          ",
        out3.interactions as f64,
    );
    bar(
        "4. label most informative (JIM)   ",
        out4.interactions as f64,
    );

    println!("\nfinal statistics (mode 4): {}", out4.stats());
    Ok(())
}

fn average(seeds: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    (0..seeds).map(&mut f).sum::<f64>() / seeds as f64
}

fn bar(label: &str, value: f64) {
    let blocks = "#".repeat((value * 2.0).round() as usize);
    println!("  {label} {value:>5.1} {blocks}");
}
