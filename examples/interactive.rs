//! A real interactive JIM session in the terminal: *you* are the user with
//! a join query in mind, JIM asks membership questions.
//!
//! Run with `cargo run --example interactive` and answer `y`/`n` (or `q` to
//! give up). Pass two CSV paths to use your own data:
//! `cargo run --example interactive -- flights.csv hotels.csv`.
//!
//! With stdin closed (e.g. CI), the session answers automatically using the
//! paper's Q2 goal, so the example is always runnable.

#![forbid(unsafe_code)]

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, FnOracle, GoalOracle, Label, Oracle};
use jim::relation::display::product_table;
use jim::relation::{csv, Product, Relation};
use jim::synth::flights;
use std::io::{BufRead, Write};

fn load(args: &[String]) -> Result<(Relation, Relation), Box<dyn std::error::Error>> {
    if args.len() >= 2 {
        let left = csv::read_relation("left", &std::fs::read_to_string(&args[0])?)?;
        let right = csv::read_relation("right", &std::fs::read_to_string(&args[1])?)?;
        Ok((left, right))
    } else {
        Ok((flights::flights(), flights::hotels()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (left, right) = load(&args)?;
    let product = Product::new(vec![&left, &right])?;
    let engine = Engine::new(product, &EngineOptions::default())?;

    println!("JIM — Join Inference Machine");
    println!("============================\n");
    println!(
        "{} candidate tuples over {} × {}. Think of a way of pairing rows",
        engine.stats().total_tuples,
        left.name(),
        right.name()
    );
    println!("(e.g. \"flight destination = hotel city\"), then answer the questions.\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let interactive = atty_stdin();

    let outcome = if interactive {
        let mut oracle = FnOracle::new(move |tuple: &jim::relation::Tuple| loop {
            println!("Is this tuple part of your join result?\n  {tuple}");
            print!("  [y/n] > ");
            std::io::stdout().flush().ok();
            match lines.next() {
                Some(Ok(line)) => match line.trim().to_ascii_lowercase().as_str() {
                    "y" | "yes" | "+" => return Label::Positive,
                    "n" | "no" | "-" => return Label::Negative,
                    _ => println!("  please answer y or n"),
                },
                _ => {
                    println!("  (stdin closed; answering 'n')");
                    return Label::Negative;
                }
            }
        });
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        run_most_informative(engine, strategy.as_mut(), &mut oracle)?
    } else {
        println!("(stdin is not a terminal: auto-answering with the paper's Q2 goal)\n");
        let goal = flights::q2(engine.universe());
        let mut auto = GoalOracle::new(goal);
        let mut narrate = FnOracle::new(move |tuple: &jim::relation::Tuple| {
            let answer = auto.label(tuple);
            println!("Q: {tuple} ? {answer}");
            answer
        });
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        run_most_informative(engine, strategy.as_mut(), &mut narrate)?
    };

    println!(
        "\nYour query, inferred after {} answers:",
        outcome.interactions
    );
    println!("  {}\n", outcome.inferred);
    println!("{}\n", outcome.inferred.to_sql());

    let positives = outcome.engine.entailed_positive_ids();
    println!("It selects {} tuples:", positives.len());
    let shown: Vec<_> = positives.iter().copied().take(10).collect();
    println!("{}", product_table(outcome.engine.product(), &shown, None));
    if positives.len() > shown.len() {
        println!("… and {} more", positives.len() - shown.len());
    }
    println!("{}", outcome.stats());
    Ok(())
}

/// Crude TTY detection without external crates: respect an explicit
/// JIM_AUTO=1 override, else assume interactive only when stdin has a
/// terminal-ish environment.
fn atty_stdin() -> bool {
    if std::env::var("JIM_AUTO").as_deref() == Ok("1") {
        return false;
    }
    // On Linux, /proc/self/fd/0 links to a tty device when interactive.
    match std::fs::read_link("/proc/self/fd/0") {
        Ok(path) => {
            path.to_string_lossy().contains("/dev/pts")
                || path.to_string_lossy().contains("/dev/tty")
        }
        Err(_) => false,
    }
}
