//! Crowdsourced join specification: the paper's §1 motivation that
//! "minimizing the number of interactions entails lower financial costs".
//!
//! Simulates crowd workers with a 10% answer-error rate, mitigated by
//! majority voting, over a TPC-H-shaped instance, and prices each strategy
//! with a per-question cost model.
//!
//! Run with `cargo run --example crowdsourcing`.

#![forbid(unsafe_code)]

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{CostModel, Engine, EngineOptions, JoinPredicate, MajorityOracle};
use jim::relation::Product;
use jim::synth::tpch::{generate, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate(TpchConfig::default());
    let (rels, _) = db.join_view(&["customer", "orders"])?;
    let product = Product::new(rels)?;
    let engine = Engine::new(product, &EngineOptions::default())?;
    println!(
        "crowd task: pair customers with their orders — {} candidate pairs\n",
        engine.stats().total_tuples
    );

    let universe = engine.universe().clone();
    let goal = JoinPredicate::of(
        universe.clone(),
        [universe.id_by_names((0, "c_custkey"), (1, "o_custkey"))?],
    );
    let pricing = CostModel::cents_per_question(1);
    const ERROR_RATE: f64 = 0.10;
    const VOTES: u32 = 5;

    println!(
        "worker error rate {:.0}%, {} votes per question, {} per elementary question\n",
        ERROR_RATE * 100.0,
        VOTES,
        pricing.cost(1)
    );
    println!(
        "{:<22} {:>9} {:>10} {:>9}  (lower cost is better)",
        "strategy", "questions", "crowd cost", "correct?"
    );

    for kind in [
        StrategyKind::Random { seed: 1 },
        StrategyKind::LocalGeneral,
        StrategyKind::LookaheadMinPrune,
    ] {
        let db = generate(TpchConfig::default());
        let (rels, _) = db.join_view(&["customer", "orders"])?;
        let product = Product::new(rels)?;
        let engine = Engine::new(product, &EngineOptions::default())?;
        let mut oracle = MajorityOracle::new(goal.clone(), ERROR_RATE, VOTES, 7);
        let mut strategy = kind.build();

        match run_most_informative(engine, strategy.as_mut(), &mut oracle) {
            Ok(out) => {
                let correct = out
                    .inferred
                    .instance_equivalent(&goal, out.engine.product())?;
                println!(
                    "{:<22} {:>9} {:>10} {:>9}",
                    kind.to_string(),
                    out.questions,
                    pricing.cost(out.questions).to_string(),
                    if correct { "yes" } else { "NO" },
                );
            }
            Err(e) => {
                // A majority vote can still be wrong; a later truthful
                // answer then contradicts it and JIM detects the conflict
                // instead of silently inferring garbage.
                println!(
                    "{:<22} {:>9} {:>10} {:>9}  (conflict detected: {e})",
                    kind.to_string(),
                    "-",
                    "-",
                    "abort"
                );
            }
        }
    }

    println!(
        "\nthe lookahead strategy needs the fewest questions, so the same\n\
         crowd budget specifies more joins — the paper's cost argument."
    );
    Ok(())
}
