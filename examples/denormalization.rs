//! Database denormalization — one of the applications the paper's
//! introduction motivates ("data integration, constraint inference, and
//! database denormalization").
//!
//! Scenario: a warehouse inherited a wide denormalized export. An admin
//! split it into two narrower tables, but nobody wrote down *how they
//! join back*. JIM re-discovers the reconstruction join — and, via the
//! substrate's statistics, reports which attributes look like keys.
//!
//! Run with `cargo run --example denormalization`.

#![forbid(unsafe_code)]

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, FnOracle, Label};
use jim::relation::stats::JoinStats;
use jim::relation::{csv, Product, Tuple};
use std::collections::HashSet;

const WIDE_CSV: &str = "\
emp_id,name,dept_id,dept_name,floor
1,Ada,10,Query Engines,3
2,Grace,10,Query Engines,3
3,Edgar,20,Storage,1
4,Barbara,20,Storage,1
5,Michael,30,Crowdsourcing,2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The wide table everyone actually queries…
    let wide = csv::read_relation("wide", WIDE_CSV)?;
    println!("inherited denormalized table ({} rows):", wide.len());
    println!("{}", jim::relation::display::relation_table(&wide));

    // …and the admin's normalized split (note: dept_id kept in both).
    let employees = wide.project("employees", &["emp_id", "name", "dept_id"])?;
    let mut departments = wide.project("departments", &["dept_id", "dept_name", "floor"])?;
    departments.dedup();
    println!(
        "normalized: {} + {}",
        employees.schema(),
        departments.schema()
    );

    // Which columns look like join keys? The substrate's statistics know.
    let product = Product::new(vec![&employees, &departments])?;
    let schema = product.schema().clone();
    let stats = JoinStats::collect(&[&employees, &departments], &schema)?;
    let e_dept = schema.global_by_name(0, "dept_id")?;
    let d_dept = schema.global_by_name(1, "dept_id")?;
    println!(
        "\nstatistics: departments.dept_id is {} (distinct {}/{} rows); \
         selectivity of employees.dept_id ≍ departments.dept_id = {:.3}",
        if stats.attr(d_dept).is_key() {
            "a key"
        } else {
            "not a key"
        },
        stats.attr(d_dept).distinct(),
        stats.attr(d_dept).rows,
        stats.atom_selectivity(e_dept, d_dept)?,
    );

    // The ground truth for this demo: a row pair belongs to the
    // reconstruction iff it appears in the wide table. The oracle answers
    // from the wide table — the user never writes a predicate.
    let wide_rows: HashSet<Tuple> = wide
        .rows()
        .iter()
        .map(|r| r.project(&[0, 1, 2, 2, 3, 4]))
        .collect();
    let mut oracle = FnOracle::new(move |t: &Tuple| Label::from_bool(wide_rows.contains(t)));

    let engine = Engine::new(product, &EngineOptions::default())?;
    println!(
        "\ncandidate pairs: {} — JIM asks:",
        engine.stats().total_tuples
    );
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let outcome = run_most_informative(engine, strategy.as_mut(), &mut oracle)?;

    println!(
        "\nreconstruction join inferred after {} membership questions:",
        outcome.interactions
    );
    println!("{}\n", outcome.inferred.to_sql());
    println!("as a GAV mapping: {}", outcome.inferred.to_gav("Wide"));

    // Certify: the inferred join reproduces exactly the wide table's rows.
    let reconstructed = outcome
        .inferred
        .materialize(outcome.engine.product(), "reconstructed")?;
    println!(
        "\nreconstructed {} rows (wide table had {}):",
        reconstructed.len(),
        wide.len()
    );
    println!("{}", jim::relation::display::relation_table(&reconstructed));
    assert_eq!(reconstructed.len(), wide.len());
    Ok(())
}
