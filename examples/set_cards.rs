//! Joining sets of pictures (paper Figure 5): infer "select the pairs of
//! cards having the same color and the same shading" over the Set deck.
//!
//! Each tagged picture is a tuple of its four tags; the candidate pairs are
//! the deck self-join. JIM repeatedly shows the most informative pair.
//!
//! Run with `cargo run --example set_cards`.

#![forbid(unsafe_code)]

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, GoalOracle, Label, Oracle};
use jim::relation::Product;
use jim::synth::setgame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 27-card hand keeps the demo output readable; the full deck works
    // identically (81 × 81 = 6561 candidate pairs).
    let cards_a = setgame::subdeck(27, 2014);
    let cards_b = setgame::subdeck(27, 2014);
    let product = Product::new(vec![&cards_a, &cards_b])?;
    let engine = Engine::new(product, &EngineOptions::default())?;
    println!(
        "deck of {} cards -> {} candidate pairs, {} candidate atoms\n",
        cards_a.len(),
        engine.stats().total_tuples,
        engine.universe().len()
    );

    // The attendee trains: same color AND same shading.
    let goal = setgame::same_features_goal(engine.universe(), &["color", "shading"]);
    println!("attendee's (hidden) goal: {goal}\n");

    // Wrap the oracle to narrate each shown pair like the demo UI.
    struct Narrating {
        inner: GoalOracle,
        step: u32,
    }
    impl Oracle for Narrating {
        fn label(&mut self, tuple: &jim::relation::Tuple) -> Label {
            let answer = self.inner.label(tuple);
            self.step += 1;
            let card = |offset: usize| {
                format!(
                    "[{} {} {} {}]",
                    tuple[offset],
                    tuple[offset + 1],
                    tuple[offset + 2],
                    tuple[offset + 3]
                )
            };
            println!("Q{:<2} {} ~ {} ? {}", self.step, card(0), card(4), answer);
            answer
        }
        fn questions_asked(&self) -> u64 {
            self.inner.questions_asked()
        }
    }

    let mut oracle = Narrating {
        inner: GoalOracle::new(goal.clone()),
        step: 0,
    };
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let outcome = run_most_informative(engine, strategy.as_mut(), &mut oracle)?;

    println!(
        "\ninferred after {} questions: {}",
        outcome.interactions, outcome.inferred
    );
    println!("{}", outcome.inferred.to_sql());
    println!(
        "\n{} of {} candidate pairs belong to the result; {}",
        outcome.engine.entailed_positive_ids().len(),
        outcome.stats().total_tuples,
        outcome.stats()
    );
    assert!(outcome
        .inferred
        .instance_equivalent(&goal, outcome.engine.product())?);
    Ok(())
}
