//! # `jim` — Interactive Join Query Inference
//!
//! A Rust reproduction of **JIM (Join Inference Machine)**:
//! Bonifati, Ciucanu & Staworko, *Interactive Join Query Inference with
//! JIM*, PVLDB 7(13):1541–1544, VLDB 2014.
//!
//! JIM helps users who cannot write join predicates — raw data, no
//! metadata, unfamiliar query languages — specify n-ary equi-joins by
//! answering simple Boolean membership queries ("is this row part of what
//! you want?"). It minimizes the number of questions by pruning
//! *uninformative* tuples after every answer and by choosing the next
//! question with a pluggable strategy (random / local / lookahead /
//! optimal).
//!
//! This facade re-exports the three workspace crates:
//!
//! * [`relation`] (`jim-relation`) — the relational substrate: values,
//!   schemas, relations, cartesian products, equi-join execution, CSV and
//!   SQL/GAV rendering.
//! * [`core`] (`jim-core`) — the inference machinery: atom universes,
//!   signatures, the version space, strategies, sessions, oracles, cost
//!   accounting.
//! * [`synth`] (`jim-synth`) — the paper's workloads: the flights&hotels
//!   example, the Set card deck, TPC-H-shaped data, random instances.
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use jim_core as core;
pub use jim_relation as relation;
pub use jim_synth as synth;

/// One-stop imports for applications.
pub mod prelude {
    pub use jim_core::prelude::*;
    pub use jim_core::session::SessionOutcome;
    pub use jim_relation::prelude::*;
}
