//! Rule `wire`: the wire protocol, the per-op metrics ledger, and the
//! README protocol table must agree, by construction.
//!
//! Three artifacts list the same op set today: `protocol.rs`'s `enum
//! Request`, `metrics.rs`'s `enum Op` (with its `Op::ALL` array that
//! drives the per-op counter registry and the `Metrics` wire
//! response), and the README's protocol table. Adding a wire op and
//! forgetting one of the other two is a silent drift class — the op
//! works but is invisible to operators — so this rule closes it: every
//! `Request` variant must have a matching `Op` variant, be present in
//! `Op::ALL`, and have a README table row naming it in backticks; and
//! every `Op` variant must still correspond to a live `Request`
//! variant (no dead metrics entries).
//!
//! The rule keys off item *names*, not paths: any non-test file
//! defining `enum Request` is the protocol, any defining `enum Op` is
//! the ledger. Workspaces without an `enum Request` (rule fixtures for
//! other rules) skip the rule entirely.

use crate::lexer::{matching_close, Token, TokenKind};
use crate::{Config, Finding, Workspace};

pub fn check(ws: &Workspace, _cfg: &Config, out: &mut Vec<Finding>) {
    let mut request: Option<(&crate::Lexed, Vec<(String, u32)>)> = None;
    let mut op: Option<(&crate::Lexed, Vec<(String, u32)>)> = None;
    for file in &ws.files {
        if file.test_file {
            continue;
        }
        if let Some(v) = enum_variants(file, "Request") {
            request = Some((file, v));
        }
        if let Some(v) = enum_variants(file, "Op") {
            op = Some((file, v));
        }
    }
    let Some((proto_file, request)) = request else {
        return;
    };
    let Some((metrics_file, op)) = op else {
        out.push(Finding {
            rule: "wire",
            file: proto_file.path.clone(),
            line: 1,
            message: "found `enum Request` but no `enum Op` metrics ledger anywhere in the \
                      workspace"
                .into(),
        });
        return;
    };

    let op_names: Vec<&str> = op.iter().map(|(n, _)| n.as_str()).collect();
    let req_names: Vec<&str> = request.iter().map(|(n, _)| n.as_str()).collect();
    let all_span = op_all_span(&metrics_file.tokens);

    for (name, line) in &request {
        if !op_names.contains(&name.as_str()) {
            out.push(Finding {
                rule: "wire",
                file: proto_file.path.clone(),
                line: *line,
                message: format!(
                    "wire op `{name}` has no per-op `Op` entry in {} — its requests \
                     would be invisible to the metrics ledger",
                    metrics_file.path
                ),
            });
        } else if let Some((lo, hi)) = all_span {
            let present = metrics_file.tokens[lo..hi].iter().any(|t| t.is_ident(name));
            if !present {
                out.push(Finding {
                    rule: "wire",
                    file: metrics_file.path.clone(),
                    line: metrics_file.tokens[lo].line,
                    message: format!(
                        "`Op::{name}` exists but is missing from `Op::ALL` — per-op \
                         counters for it are never registered or reported"
                    ),
                });
            }
        }
        let in_readme = ws
            .readme
            .lines()
            .any(|l| l.trim_start().starts_with('|') && l.contains(&format!("`{name}`")));
        if !in_readme {
            out.push(Finding {
                rule: "wire",
                file: proto_file.path.clone(),
                line: *line,
                message: format!(
                    "wire op `{name}` has no README protocol-table row (a `| \\`{name}\\` …` \
                     line); document it where operators look first"
                ),
            });
        }
    }
    for (name, line) in &op {
        if !req_names.contains(&name.as_str()) {
            out.push(Finding {
                rule: "wire",
                file: metrics_file.path.clone(),
                line: *line,
                message: format!(
                    "`Op::{name}` has no matching `Request` variant in {} — dead metrics \
                     entry; remove it or add the wire op",
                    proto_file.path
                ),
            });
        }
    }
}

/// Extract `(variant, line)` pairs from `enum <name> { .. }` in a
/// file, skipping attributes, discriminants, and variant payloads
/// (tuple or struct). Returns `None` when the file has no such enum.
fn enum_variants(file: &crate::Lexed, name: &str) -> Option<Vec<(String, u32)>> {
    let tokens = &file.tokens;
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) && !file.in_test(i) {
            let open = (i + 2..tokens.len()).find(|&k| tokens[k].is_punct("{"))?;
            let close = matching_close(tokens, open);
            return Some(variants_in(&tokens[open + 1..close]));
        }
        i += 1;
    }
    None
}

fn variants_in(body: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes on the variant.
        while body.get(i).is_some_and(|t| t.is_punct("#"))
            && body.get(i + 1).is_some_and(|t| t.is_punct("["))
        {
            i = matching_close(body, i + 1) + 1;
        }
        let Some(t) = body.get(i) else { break };
        if t.kind == TokenKind::Ident {
            out.push((t.text.clone(), t.line));
            i += 1;
            // Skip payload and/or discriminant up to the next comma at
            // this depth.
            while let Some(n) = body.get(i) {
                if n.is_punct("{") || n.is_punct("(") || n.is_punct("[") {
                    i = matching_close(body, i) + 1;
                } else if n.is_punct(",") {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// The token span of `Op::ALL`'s initializer array: `ALL .. = [ .. ]`.
fn op_all_span(tokens: &[Token]) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("ALL") {
            // const ALL: [Op; N] = [ ... ];
            let eq = (i..tokens.len().min(i + 16)).find(|&k| tokens[k].is_punct("="))?;
            let open = (eq..tokens.len().min(eq + 4)).find(|&k| tokens[k].is_punct("["))?;
            let close = matching_close(tokens, open);
            return Some((open + 1, close));
        }
        i += 1;
    }
    None
}
