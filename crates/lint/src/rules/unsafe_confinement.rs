//! Rule `unsafe`: the `unsafe` keyword may appear only under the
//! allowlisted paths (`crates/aio/`, `crates/simd/src/avx2.rs`, and
//! this crate's own fixtures aside). Everything else in the workspace
//! — including tests, benches, and examples — must be safe Rust; the
//! satellite `#![forbid(unsafe_code)]` attributes make rustc enforce
//! the same thing per crate, and this rule closes the gap for files
//! (integration tests, examples) that are their own crate roots.
//!
//! The lexer guarantees `unsafe` inside strings, raw strings, and
//! comments never reaches this rule.

use crate::{Config, Finding, Workspace};

pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if cfg
            .unsafe_allow
            .iter()
            .any(|prefix| file.path.starts_with(prefix.as_str()))
        {
            continue;
        }
        for t in &file.tokens {
            if t.is_ident("unsafe") {
                out.push(Finding {
                    rule: "unsafe",
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`unsafe` outside the allowlisted surfaces ({}); either remove it or \
                         move the unsafe core behind a safe wrapper in an allowlisted module",
                        cfg.unsafe_allow.join(", ")
                    ),
                });
            }
        }
    }
}
