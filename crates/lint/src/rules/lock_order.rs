//! Rule `locks`: the cross-function lock-acquisition graph must be
//! acyclic.
//!
//! Per function, the rule tracks which lock classes are *held* at each
//! point: a `let`-bound guard (`let g = m.lock_unpoisoned();`) is held
//! until its block closes or an explicit `drop(g)`; a temporary
//! (`m.lock().len()`) acquires but holds nothing afterward. Every
//! acquisition performed while another class is held contributes a
//! directed edge `held → acquired`. Calls that can be resolved by name
//! (methods rooted at `self`, `Type::method(..)`, bare lowercase
//! `helper(..)`) propagate: the callee's *transitive* lock set (a
//! fixpoint over the whole workspace call graph) is edged from
//! whatever the caller holds at the call site. Closure-taking wrappers
//! whose guard never escapes (`with_session`) are declared in
//! `[locks.acquires]` and hold their class for the span of their
//! argument list, so edges out of the closures they run are seen.
//!
//! Lock *classes* are receiver field names after `[locks.aliases]`
//! normalization (`s` and `shard` are the same shard mutex seen
//! through different locals). A cycle between classes — `session →
//! shard` somewhere and `shard → session` anywhere else — is exactly
//! an AB/BA deadlock shape and is reported with one example site per
//! edge. Same-class re-acquisition is reported too, unless the class
//! is in `ordered_classes` (shards are taken in ascending index order
//! by construction).
//!
//! Known blind spot (documented, tested): a guard bound by `match
//! m.lock() {..}` scrutinee lives to the end of the match but is
//! treated as a temporary here. The workspace does not use that shape;
//! prefer `let` bindings for guards.

use super::{functions, is_keyword, receiver_of};
use crate::lexer::{matching_close, TokenKind};
use crate::{Config, Finding, Workspace};
use std::collections::{BTreeMap, BTreeSet};

const ACQUIRE_METHODS: [&str; 4] = ["lock", "lock_unpoisoned", "read", "write"];

struct Holder {
    class: String,
    binding: Option<String>,
    depth: i32,
    /// Token index after which the holder expires (closure-wrapper
    /// spans); `usize::MAX` for ordinary guards.
    until: usize,
}

#[derive(Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    func: String,
    via: Option<String>,
}

#[derive(Default)]
struct FnData {
    direct: BTreeSet<String>,
    calls: Vec<(String, Vec<String>, String, u32, String)>, // callee, held, file, line, fn
}

pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let mut fns: BTreeMap<String, FnData> = BTreeMap::new();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();

    for file in &ws.files {
        if file.test_file {
            continue;
        }
        for f in functions(file, true) {
            scan_fn(file, &f, cfg, &mut fns, &mut edges);
        }
    }

    // Fixpoint: transitive lock set per function name.
    let mut trans: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(name, d)| (name.clone(), d.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, data) in &fns {
            let mut add = BTreeSet::new();
            for (callee, _, _, _, _) in &data.calls {
                if let Some(t) = trans.get(callee) {
                    add.extend(t.iter().cloned());
                }
            }
            let mine = trans.entry(name.clone()).or_default();
            for c in add {
                changed |= mine.insert(c);
            }
        }
        if !changed {
            break;
        }
    }

    // Call edges: caller holds H, callee transitively locks T ⇒ H × T.
    for data in fns.values() {
        for (callee, held, file, line, func) in &data.calls {
            if held.is_empty() {
                continue;
            }
            let Some(t) = trans.get(callee) else { continue };
            for h in held {
                for to in t {
                    edges
                        .entry((h.clone(), to.clone()))
                        .or_insert_with(|| EdgeSite {
                            file: file.clone(),
                            line: *line,
                            func: func.clone(),
                            via: Some(callee.clone()),
                        });
                }
            }
        }
    }

    // Self-loops are their own finding (unless declared ordered).
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ((from, to), site) in &edges {
        if from == to {
            if !cfg.lock_ordered_classes.iter().any(|c| c == from) {
                out.push(Finding {
                    rule: "locks",
                    file: site.file.clone(),
                    line: site.line,
                    message: format!(
                        "lock class `{from}` acquired while already held in `{}`{}; if the \
                         class is a sharded set taken in a fixed order, declare it in \
                         [locks] ordered_classes",
                        site.func,
                        match &site.via {
                            Some(v) => format!(" (via call to `{v}`)"),
                            None => String::new(),
                        }
                    ),
                });
            }
            continue;
        }
        graph.entry(from.clone()).or_default().insert(to.clone());
    }

    for cycle in find_cycles(&graph) {
        let mut sites = Vec::new();
        for w in cycle.windows(2) {
            if let Some(site) = edges.get(&(w[0].clone(), w[1].clone())) {
                sites.push(format!(
                    "{}→{} at {}:{} in `{}`{}",
                    w[0],
                    w[1],
                    site.file,
                    site.line,
                    site.func,
                    match &site.via {
                        Some(v) => format!(" (call to `{v}`)"),
                        None => String::new(),
                    }
                ));
            }
        }
        let first = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or(EdgeSite {
                file: String::new(),
                line: 0,
                func: String::new(),
                via: None,
            });
        out.push(Finding {
            rule: "locks",
            file: first.file,
            line: first.line,
            message: format!(
                "lock-order cycle (potential AB/BA deadlock): {}; edges: {}",
                cycle.join(" → "),
                sites.join("; ")
            ),
        });
    }
}

fn scan_fn(
    file: &crate::Lexed,
    f: &super::FnSpan,
    cfg: &Config,
    fns: &mut BTreeMap<String, FnData>,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
) {
    let tokens = &file.tokens;
    let mut holders: Vec<Holder> = Vec::new();
    let mut depth: i32 = 0;
    let data = fns.entry(f.name.clone()).or_default();

    let mut idx = f.body.0 + 1;
    while idx < f.body.1 {
        holders.retain(|h| h.until > idx);
        let t = &tokens[idx];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            holders.retain(|h| h.depth < depth || h.until != usize::MAX);
            depth -= 1;
        } else if t.is_ident("drop")
            && tokens.get(idx + 1).is_some_and(|t| t.is_punct("("))
            && tokens
                .get(idx + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(idx + 3).is_some_and(|t| t.is_punct(")"))
        {
            let name = &tokens[idx + 2].text;
            if let Some(pos) = holders
                .iter()
                .rposition(|h| h.binding.as_deref() == Some(name.as_str()))
            {
                holders.remove(pos);
            }
            idx += 4;
            continue;
        } else if t.kind == TokenKind::Ident
            && ACQUIRE_METHODS.contains(&t.text.as_str())
            && idx > 0
            && tokens[idx - 1].is_punct(".")
            && tokens.get(idx + 1).is_some_and(|t| t.is_punct("("))
            && tokens.get(idx + 2).is_some_and(|t| t.is_punct(")"))
        {
            let (recv, _) = receiver_of(tokens, idx - 1);
            if let Some(recv) = recv {
                let class = cfg.lock_aliases.get(&recv).cloned().unwrap_or(recv);
                record_acquisition(&class, t.line, file, f, &holders, data, edges);
                if let Some(binding) = let_binding(tokens, f.body.0, idx - 1) {
                    holders.push(Holder {
                        class,
                        binding,
                        depth,
                        until: usize::MAX,
                    });
                }
            }
            idx += 3;
            continue;
        } else if t.kind == TokenKind::Ident
            && tokens.get(idx + 1).is_some_and(|t| t.is_punct("("))
            && !is_keyword(&t.text)
        {
            if let Some(class) = cfg.lock_acquires.get(&t.text) {
                // Closure-taking wrapper: holds `class` for the span of
                // its argument list.
                record_acquisition(class, t.line, file, f, &holders, data, edges);
                let close = matching_close(tokens, idx + 1);
                holders.push(Holder {
                    class: class.clone(),
                    binding: None,
                    depth,
                    until: close,
                });
                idx += 2;
                continue;
            }
            if !cfg.lock_ignore_calls.iter().any(|c| c == &t.text) {
                let resolvable = if idx > 0 && tokens[idx - 1].is_punct(".") {
                    receiver_of(tokens, idx - 1).1 // methods only when self-rooted
                } else if idx > 0 && tokens[idx - 1].is_punct(":") {
                    true // Type::method(..) / path::helper(..)
                } else {
                    t.text.starts_with(|c: char| c.is_lowercase() || c == '_')
                };
                if resolvable {
                    let held: Vec<String> = holders.iter().map(|h| h.class.clone()).collect();
                    data.calls.push((
                        t.text.clone(),
                        held,
                        file.path.clone(),
                        t.line,
                        f.name.clone(),
                    ));
                }
            }
        }
        idx += 1;
    }
}

fn record_acquisition(
    class: &str,
    line: u32,
    file: &crate::Lexed,
    f: &super::FnSpan,
    holders: &[Holder],
    data: &mut FnData,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
) {
    data.direct.insert(class.to_string());
    for h in holders {
        edges
            .entry((h.class.clone(), class.to_string()))
            .or_insert_with(|| EdgeSite {
                file: file.path.clone(),
                line,
                func: f.name.clone(),
                via: None,
            });
    }
}

/// Is the acquisition ending at `anchor` (the `.` before the method)
/// the right-hand side of a `let` statement? Returns `Some(binding)`
/// when the guard is held (binding name when nameable), `None` for a
/// temporary. The walk-back skips matched groups; hitting an unmatched
/// `(` means we are inside an argument list — a temporary.
fn let_binding(
    tokens: &[crate::lexer::Token],
    body_start: usize,
    anchor: usize,
) -> Option<Option<String>> {
    let mut idx = anchor;
    let stmt_start = loop {
        if idx <= body_start {
            break body_start + 1;
        }
        idx -= 1;
        let t = &tokens[idx];
        if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            let open = crate::lexer::matching_open(tokens, idx);
            if open == idx {
                break idx + 1; // unmatched closer: give up at it
            }
            idx = open;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct(";") {
            break idx + 1;
        }
    };
    let mut k = stmt_start;
    while tokens
        .get(k)
        .is_some_and(|t| t.is_ident("if") || t.is_ident("while"))
    {
        k += 1;
    }
    if !tokens.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    k += 1;
    if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    match tokens.get(k) {
        Some(t) if t.kind == TokenKind::Ident => Some(Some(t.text.clone())),
        _ => Some(None),
    }
}

/// Enumerate simple cycles in a small digraph, normalized (rotated so
/// the lexicographically smallest node comes first, returned as
/// `[a, b, ..., a]` paths) and deduplicated.
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in graph.keys() {
        let mut stack = vec![start.clone()];
        let mut on_stack: BTreeSet<String> = [start.clone()].into();
        dfs(
            graph,
            start,
            start,
            &mut stack,
            &mut on_stack,
            &mut found,
            0,
        );
    }
    found.into_iter().collect()
}

fn dfs(
    graph: &BTreeMap<String, BTreeSet<String>>,
    start: &str,
    node: &str,
    stack: &mut Vec<String>,
    on_stack: &mut BTreeSet<String>,
    found: &mut BTreeSet<Vec<String>>,
    depth: usize,
) {
    if depth > 16 {
        return; // class graphs are tiny; this bounds pathological input
    }
    let Some(nexts) = graph.get(node) else { return };
    for next in nexts {
        if next == start {
            let mut cycle = stack.clone();
            cycle.push(start.to_string());
            // Normalize: only record the rotation that starts at the
            // smallest node, so each cycle is reported once.
            if stack.iter().min().map(|m| m == start).unwrap_or(false) {
                found.insert(cycle);
            }
            continue;
        }
        if on_stack.contains(next) {
            continue;
        }
        stack.push(next.clone());
        on_stack.insert(next.clone());
        dfs(graph, start, next, stack, on_stack, found, depth + 1);
        stack.pop();
        on_stack.remove(next);
    }
}
