//! Rule `atomics`: every use of a memory `Ordering` must match the
//! per-field convention declared in `crates/lint/atomics.toml`.
//!
//! The workspace's atomic vocabulary is deliberately split: metrics
//! counters and backend caches are `Relaxed` (they are statistics, not
//! synchronization), while shutdown/admission flags are `SeqCst` (they
//! *are* synchronization — a reactor observing `triggered` must also
//! observe everything the triggering thread wrote). A well-meaning
//! "optimize to Relaxed" on a synchronizing flag is exactly the bug
//! class this rule makes loud.
//!
//! Mechanics: for each `Ordering::<Variant>` token sequence (atomic
//! variants only — `std::cmp::Ordering`'s `Less`/`Equal`/`Greater`
//! never match), walk back over balanced parens to the enclosing call;
//! if it is a known atomic method (`load`, `store`, `fetch_add`,
//! `compare_exchange`, ...), resolve the receiver field. Tuple-struct
//! receivers (`self.0.fetch_add(..)` inside `impl Counter`) are keyed
//! as `Counter.0`. A field with no declared convention is itself a
//! finding — new atomics must be added to the convention file
//! deliberately, with the intended ordering written down.

use super::receiver_of;
use crate::lexer::TokenKind;
use crate::{Config, Finding, Workspace};

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.test_file {
            continue;
        }
        let impls = impl_spans(file);
        let tokens = &file.tokens;
        for idx in 0..tokens.len() {
            if !tokens[idx].is_ident("Ordering") {
                continue;
            }
            if file.in_test(idx) {
                continue;
            }
            let variant = match (
                tokens.get(idx + 1),
                tokens.get(idx + 2),
                tokens.get(idx + 3),
            ) {
                (Some(a), Some(b), Some(v))
                    if a.is_punct(":") && b.is_punct(":") && v.kind == TokenKind::Ident =>
                {
                    &v.text
                }
                _ => continue,
            };
            if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
                continue; // std::cmp::Ordering or similar
            }
            let line = tokens[idx].line;
            match enclosing_atomic_call(file, idx) {
                Some(method_idx) => {
                    let field = receiver_field(file, &impls, method_idx);
                    match field {
                        Some(field) => match cfg.atomics.get(&field) {
                            None => out.push(Finding {
                                rule: "atomics",
                                file: file.path.clone(),
                                line,
                                message: format!(
                                    "atomic field `{field}` has no declared ordering convention; \
                                     add it to crates/lint/atomics.toml with the intended \
                                     ordering(s)"
                                ),
                            }),
                            Some(allowed) if !allowed.iter().any(|o| o == variant) => {
                                out.push(Finding {
                                    rule: "atomics",
                                    file: file.path.clone(),
                                    line,
                                    message: format!(
                                        "`Ordering::{variant}` on atomic field `{field}` \
                                         violates its declared convention ({}); if the \
                                         protocol changed, update crates/lint/atomics.toml \
                                         in the same commit",
                                        allowed.join("|")
                                    ),
                                })
                            }
                            Some(_) => {}
                        },
                        None => out.push(Finding {
                            rule: "atomics",
                            file: file.path.clone(),
                            line,
                            message: format!(
                                "cannot resolve the atomic receiver for `Ordering::{variant}`; \
                                 name the field explicitly so the convention is checkable"
                            ),
                        }),
                    }
                }
                None => out.push(Finding {
                    rule: "atomics",
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "`Ordering::{variant}` outside a recognized atomic operation; \
                         orderings belong at the call site of load/store/rmw methods"
                    ),
                }),
            }
        }
    }
}

/// Walk back from the `Ordering` token over balanced parens to the
/// unmatched `(` that encloses it; return the index of the method
/// identifier before that paren when it is a known atomic method.
fn enclosing_atomic_call(file: &crate::Lexed, ord_idx: usize) -> Option<usize> {
    let tokens = &file.tokens;
    let mut depth = 0i32;
    let mut idx = ord_idx;
    for _ in 0..400 {
        if idx == 0 {
            return None;
        }
        idx -= 1;
        let t = &tokens[idx];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                let m = idx.checked_sub(1)?;
                if tokens[m].kind == TokenKind::Ident
                    && ATOMIC_METHODS.contains(&tokens[m].text.as_str())
                {
                    return Some(m);
                }
                // Nested non-atomic call (e.g. `Some(Ordering::SeqCst)`)
                // — keep walking out; the atomic call may enclose it.
                depth = 0;
                continue;
            }
            depth -= 1;
        } else if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
    }
    None
}

/// Resolve the field name for the atomic method at `method_idx`:
/// `self.triggered.load(..)` → `triggered`; `TERM_FD.store(..)` →
/// `TERM_FD`; `self.0.fetch_add(..)` inside `impl Counter` →
/// `Counter.0`.
fn receiver_field(
    file: &crate::Lexed,
    impls: &[(usize, usize, String)],
    method_idx: usize,
) -> Option<String> {
    let tokens = &file.tokens;
    if method_idx == 0 || !tokens[method_idx - 1].is_punct(".") {
        return None;
    }
    let (recv, _) = receiver_of(tokens, method_idx - 1);
    let recv = recv?;
    if recv.chars().all(|c| c.is_ascii_digit()) {
        let ty = impls
            .iter()
            .filter(|(lo, hi, _)| method_idx >= *lo && method_idx < *hi)
            .map(|(_, _, ty)| ty.clone())
            .next_back()?;
        return Some(format!("{ty}.{recv}"));
    }
    Some(recv)
}

/// `(body_start, body_end, type_name)` for every `impl` block in the
/// file: `impl Counter { .. }` and `impl Default for Counter { .. }`
/// both yield `Counter`.
fn impl_spans(file: &crate::Lexed) -> Vec<(usize, usize, String)> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Collect header idents at angle-depth 0 up to the body `{`.
        let mut angle = 0i32;
        let mut after_for: Option<Vec<String>> = None;
        let mut head: Vec<String> = Vec::new();
        let mut in_where = false;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.is_punct("{") {
                open = Some(j);
                break;
            } else if angle == 0 && t.is_punct(";") {
                break;
            } else if angle == 0 && t.is_ident("where") {
                in_where = true;
            } else if angle == 0 && t.is_ident("for") && !in_where {
                after_for = Some(Vec::new());
            } else if angle == 0 && t.kind == TokenKind::Ident && !in_where {
                match &mut after_for {
                    Some(v) => v.push(t.text.clone()),
                    None => head.push(t.text.clone()),
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = crate::lexer::matching_close(tokens, open);
        let segment = after_for.unwrap_or(head);
        if let Some(name) = segment.last() {
            out.push((open, close, name.clone()));
        }
        i = open + 1;
    }
    out
}
