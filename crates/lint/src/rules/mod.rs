//! The rule set. Each rule is a pure function `(workspace, config) ->
//! findings`, so fixtures are plain in-memory strings and a rule can
//! be exercised against a seeded violation without touching disk.

pub mod atomics;
pub mod lock_order;
pub mod panic_path;
pub mod unsafe_confinement;
pub mod wire_ops;

use crate::lexer::{matching_close, matching_open, Token, TokenKind};

/// Walk backward from the `.` at `dot` to find the receiver of a
/// method call. Returns `(last_ident, rooted_at_self)`:
/// `self.store.record_batch(..)` → `("store", true)`;
/// `s.lock()` → `("s", false)`; `self.shard(id).lock()` → `("shard", true)`.
/// Matched `(..)`/`[..]` groups are skipped, so indexing and call
/// results resolve to the nearest meaningful name.
pub(crate) fn receiver_of(tokens: &[Token], dot: usize) -> (Option<String>, bool) {
    let mut idx = dot;
    let mut last: Option<String> = None;
    let mut rooted_self = false;
    loop {
        if idx == 0 {
            break;
        }
        idx -= 1;
        let t = &tokens[idx];
        if t.is_punct(")") || t.is_punct("]") {
            idx = matching_open(tokens, idx);
            continue;
        }
        if t.kind == TokenKind::Ident {
            if t.text == "self" {
                rooted_self = true;
                if last.is_none() {
                    last = Some("self".into());
                }
                // `self` can only be the chain root.
                let prev_is_dot = idx > 0 && tokens[idx - 1].is_punct(".");
                if !prev_is_dot {
                    break;
                }
                continue;
            }
            if last.is_none() {
                last = Some(t.text.clone());
            }
            // Keep walking only while the chain continues with `.`;
            // `a::b` or a fresh expression ends the receiver.
            if idx == 0 || !tokens[idx - 1].is_punct(".") {
                break;
            }
            continue;
        }
        if t.kind == TokenKind::Literal {
            // Tuple-field receiver like `self.0` — report the index so
            // the caller can qualify it with the enclosing impl type.
            if last.is_none() {
                last = Some(t.text.clone());
            }
            if idx == 0 || !tokens[idx - 1].is_punct(".") {
                break;
            }
            continue;
        }
        if t.is_punct(".") {
            continue;
        }
        break;
    }
    (last, rooted_self)
}

/// A function item found in a file: its name and the token span of its
/// body (exclusive of the braces' outside).
pub(crate) struct FnSpan {
    pub name: String,
    /// Token index range `(open_brace, close_brace)` of the body.
    pub body: (usize, usize),
}

/// Extract every named `fn` with a body from a lexed file, skipping
/// test-only spans when `skip_tests` is set. `fn`-pointer types
/// (`fn(usize) -> bool`) have no name token and are ignored.
pub(crate) fn functions(file: &crate::Lexed, skip_tests: bool) -> Vec<FnSpan> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        if skip_tests && file.in_test(i) {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Scan from the name to the body `{` at paren depth 0; a `;`
        // first means a bodiless trait/extern declaration.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren -= 1;
            } else if paren == 0 && t.is_punct("{") {
                body = Some(j);
                break;
            } else if paren == 0 && t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j.max(i + 1);
            continue;
        };
        let close = matching_close(tokens, open);
        out.push(FnSpan {
            name: name_tok.text.clone(),
            body: (open, close),
        });
        // Nested fns are rare and harmless to re-scan; continue past
        // the signature only, not the whole body.
        i = open + 1;
    }
    out
}

/// Identifiers that look like calls but are control flow.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "let"
            | "move"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "else"
            | "break"
            | "continue"
            | "unsafe"
            | "async"
            | "await"
            | "const"
            | "static"
            | "pub"
            | "use"
            | "mod"
    )
}
