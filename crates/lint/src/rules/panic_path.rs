//! Rule `panics`: no `unwrap()` / `expect()` / `panic!` / `todo!` in
//! non-test code under the audited paths (the server request path and
//! the epoll reactor — a panic there takes down a worker or poisons a
//! lock for every other connection).
//!
//! Existing sites are *burned down, not grandfathered*: the committed
//! `crates/lint/panic_baseline.txt` records, per file, how many sites
//! are still tolerated. Going **above** a file's baseline fails the
//! lint with one finding per site; dropping **below** it also fails —
//! a stale ceiling would let the count creep back up silently — with a
//! one-line fix (`jim-lint --write-baseline`). The end state is an
//! empty baseline file, at which point the rule is simply "zero".
//!
//! `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are distinct
//! identifiers at the token level and never match. `assert!` family
//! macros are deliberately out of scope: they document invariants, and
//! banning them drives people to silent corruption instead.

use crate::lexer::TokenKind;
use crate::{Config, Finding, Workspace};
use std::collections::BTreeMap;

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Every panic-capable site in audited non-test code:
/// file → `(line, what)` list.
pub fn sites(ws: &Workspace, cfg: &Config) -> BTreeMap<String, Vec<(u32, String)>> {
    let mut out: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();
    for file in &ws.files {
        if file.test_file {
            continue;
        }
        if !cfg
            .panic_paths
            .iter()
            .any(|p| file.path.starts_with(p.as_str()))
        {
            continue;
        }
        let tokens = &file.tokens;
        let mut found = Vec::new();
        for idx in 0..tokens.len() {
            let t = &tokens[idx];
            if t.kind != TokenKind::Ident || file.in_test(idx) {
                continue;
            }
            let is_method = PANIC_METHODS.contains(&t.text.as_str())
                && idx > 0
                && tokens[idx - 1].is_punct(".")
                && tokens.get(idx + 1).is_some_and(|n| n.is_punct("("));
            let is_macro = PANIC_MACROS.contains(&t.text.as_str())
                && tokens.get(idx + 1).is_some_and(|n| n.is_punct("!"));
            if is_method {
                found.push((t.line, format!(".{}()", t.text)));
            } else if is_macro {
                found.push((t.line, format!("{}!", t.text)));
            }
        }
        out.insert(file.path.clone(), found);
    }
    out
}

/// Per-file counts, zero-count files omitted — the exact content of a
/// fresh `panic_baseline.txt`.
pub fn counts(ws: &Workspace, cfg: &Config) -> BTreeMap<String, usize> {
    sites(ws, cfg)
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(k, v)| (k, v.len()))
        .collect()
}

pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let all = sites(ws, cfg);
    for (file, found) in &all {
        let baseline = cfg.panic_baseline.get(file).copied().unwrap_or(0);
        if found.len() > baseline {
            for (line, what) in found {
                out.push(Finding {
                    rule: "panics",
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "panic-capable `{what}` on a non-test path ({} sites, baseline \
                         allows {baseline}); return a typed error or log-and-shed instead",
                        found.len()
                    ),
                });
            }
        } else if found.len() < baseline {
            out.push(Finding {
                rule: "panics",
                file: file.clone(),
                line: 1,
                message: format!(
                    "stale panic baseline: allows {baseline} sites but only {} remain — \
                     lock in the progress with `cargo run -p jim-lint -- --write-baseline`",
                    found.len()
                ),
            });
        }
    }
    // Baseline entries for files that no longer exist (or left the
    // audited set) are stale too.
    for (file, baseline) in &cfg.panic_baseline {
        if !all.contains_key(file) && *baseline > 0 {
            out.push(Finding {
                rule: "panics",
                file: file.clone(),
                line: 1,
                message: format!(
                    "stale panic baseline: file is gone or no longer audited but still \
                     allows {baseline} sites — regenerate with --write-baseline"
                ),
            });
        }
    }
}
