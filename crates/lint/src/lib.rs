#![forbid(unsafe_code)]
//! # jim-lint — workspace invariants as machine-checked rules
//!
//! The ROADMAP's standing constraints (unsafe confined to two crates,
//! a lock-per-reactor design with no shared hot-path lock, a declared
//! atomic-ordering vocabulary) were enforced only by reviewer memory.
//! This crate turns them into a static-analysis pass that CI runs on
//! every push: `cargo run -p jim-lint -- --workspace --deny all`.
//!
//! Five rules, all built on the hand-rolled token scanner in
//! [`lexer`] (no crates.io access, so no `syn`):
//!
//! | rule      | invariant |
//! |-----------|-----------|
//! | `unsafe`  | `unsafe` only under `crates/aio/` and `crates/simd/src/avx2.rs` |
//! | `locks`   | the cross-function lock-acquisition graph is acyclic (no AB/BA deadlock shapes) |
//! | `atomics` | every `Ordering::` use matches the per-field convention in `crates/lint/atomics.toml` |
//! | `panics`  | no `unwrap`/`expect`/`panic!`/`todo!` in non-test server/aio code beyond the committed baseline |
//! | `wire`    | every protocol op has a `ServerMetrics` per-op entry and a README protocol-table row |
//!
//! Rules are pure functions from a [`Workspace`] (lexed files + README
//! text) to [`Finding`]s, so every rule is unit-tested against inline
//! string fixtures — including deliberately seeded violations — without
//! touching the real tree.

pub mod lexer;
pub mod rules;

use lexer::{lex, matching_close, Token, TokenKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One source file, lexed, with its `#[cfg(test)]` spans resolved.
pub struct Lexed {
    /// Workspace-relative path with `/` separators (`crates/server/src/store.rs`).
    pub path: String,
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges that are test-only code: bodies of
    /// `#[cfg(test)] mod`, `#[test] fn`, and `macro_rules!` definitions
    /// (macro bodies are patterns, not executed acquisition sites).
    test_spans: Vec<(usize, usize)>,
    /// True when the whole file is test/bench/example scaffolding by
    /// virtue of its path (`tests/`, `benches/`, `examples/`).
    pub test_file: bool,
}

impl Lexed {
    pub fn new(path: &str, src: &str) -> Lexed {
        let tokens = lex(src);
        let test_spans = find_test_spans(&tokens);
        let test_file = {
            let p = path;
            p.starts_with("tests/")
                || p.starts_with("benches/")
                || p.starts_with("examples/")
                || p.contains("/tests/")
                || p.contains("/benches/")
                || p.contains("/examples/")
        };
        Lexed {
            path: path.to_string(),
            tokens,
            test_spans,
            test_file,
        }
    }

    /// Is token `idx` inside test-only code?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_file
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| idx >= lo && idx < hi)
    }
}

/// Locate test-only token spans: the body of any `mod`/`fn` whose
/// attributes mention `test` outside a `not(...)` group, plus
/// `macro_rules!` bodies. Handles `#[cfg(test)]`, `#[cfg(all(test,
/// target_os = "linux"))]`, `#[test]`, and stacked attributes.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("macro_rules") && tokens.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            if let Some(open) = (i..tokens.len().min(i + 6)).find(|&k| tokens[k].is_punct("{")) {
                let close = matching_close(tokens, open);
                spans.push((open, close + 1));
                i = close + 1;
                continue;
            }
        }
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Scan a run of attributes; remember whether any is test-y.
            let mut testy = false;
            let mut j = i;
            while tokens.get(j).is_some_and(|t| t.is_punct("#"))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
            {
                let close = matching_close(tokens, j + 1);
                testy |= attr_mentions_test(&tokens[j + 2..close]);
                j = close + 1;
            }
            if testy {
                // Skip visibility / qualifiers to the item keyword.
                let mut k = j;
                while tokens.get(k).is_some_and(|t| {
                    t.kind == TokenKind::Ident
                        && matches!(t.text.as_str(), "pub" | "async" | "unsafe" | "const")
                }) || tokens.get(k).is_some_and(|t| t.is_punct("("))
                {
                    if tokens[k].is_punct("(") {
                        k = matching_close(tokens, k) + 1; // pub(crate)
                    } else {
                        k += 1;
                    }
                }
                if tokens
                    .get(k)
                    .is_some_and(|t| t.is_ident("mod") || t.is_ident("fn"))
                {
                    if let Some(open) = (k..tokens.len())
                        .find(|&m| tokens[m].is_punct("{") || tokens[m].is_punct(";"))
                    {
                        if tokens[open].is_punct("{") {
                            let close = matching_close(tokens, open);
                            spans.push((open, close + 1));
                            i = close + 1;
                            continue;
                        }
                    }
                }
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    spans
}

/// Does an attribute token list mention `test` outside `not(...)`?
/// `#[cfg(test)]` and `#[cfg(any(test, fuzzing))]` count;
/// `#[cfg(not(test))]` does not.
fn attr_mentions_test(attr: &[Token]) -> bool {
    let mut stack: Vec<String> = Vec::new();
    let mut prev_ident: Option<&str> = None;
    for t in attr {
        if t.is_punct("(") {
            stack.push(prev_ident.unwrap_or("").to_string());
            prev_ident = None;
        } else if t.is_punct(")") {
            stack.pop();
        } else if t.kind == TokenKind::Ident {
            if t.text == "test" && !stack.iter().any(|g| g == "not") {
                return true;
            }
            prev_ident = Some(&t.text);
        } else {
            prev_ident = None;
        }
    }
    false
}

/// Everything a rule can see: the lexed `.rs` files plus the README
/// (for the wire-ops protocol-table check).
pub struct Workspace {
    pub files: Vec<Lexed>,
    pub readme: String,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, source)` pairs — the
    /// fixture entry point used by every rule test.
    pub fn from_sources(files: &[(&str, &str)], readme: &str) -> Workspace {
        Workspace {
            files: files.iter().map(|(p, s)| Lexed::new(p, s)).collect(),
            readme: readme.to_string(),
        }
    }

    /// Walk a real tree rooted at `root`, lexing every `.rs` file
    /// outside `target/` and `.git/`, and reading `README.md`.
    pub fn from_root(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        collect_rs(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in &paths {
            let src = std::fs::read_to_string(root.join(rel))?;
            files.push(Lexed::new(rel, &src));
        }
        let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
        Ok(Workspace { files, readme })
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "node_modules" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// One rule violation, pointed at a file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed lint configuration (from `crates/lint/lint.toml`,
/// `crates/lint/atomics.toml`, and `crates/lint/panic_baseline.txt`).
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes where `unsafe` is allowed.
    pub unsafe_allow: Vec<String>,
    /// Receiver-name → lock-class aliases (`s` and `shard` are the
    /// same `Mutex` viewed through different local names).
    pub lock_aliases: BTreeMap<String, String>,
    /// Callee names the lock rule must not resolve through — std-library
    /// collisions like `insert` or `get` that would wire unrelated
    /// functions into the acquisition graph.
    pub lock_ignore_calls: Vec<String>,
    /// Lock classes where same-class re-acquisition is by design
    /// (e.g. store shards, always taken in ascending index order).
    pub lock_ordered_classes: Vec<String>,
    /// Helper functions that acquire and hold a lock class for the
    /// duration of their argument list (closure-taking wrappers such
    /// as `with_session`): fn name → class. Without this, a lock whose
    /// guard never escapes the helper would hide every edge out of the
    /// closures it runs.
    pub lock_acquires: BTreeMap<String, String>,
    /// Path prefixes the panic rule audits.
    pub panic_paths: Vec<String>,
    /// file → allowed count of panic-capable sites.
    pub panic_baseline: BTreeMap<String, usize>,
    /// Atomic field/static name → allowed `Ordering` variants.
    pub atomics: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// Load the committed configuration from `crates/lint/` under `root`.
    pub fn load(root: &Path) -> Result<Config, String> {
        let dir = root.join("crates/lint");
        let lint = read_required(&dir.join("lint.toml"))?;
        let atomics = read_required(&dir.join("atomics.toml"))?;
        let baseline = std::fs::read_to_string(dir.join("panic_baseline.txt"))
            .map_err(|e| format!("crates/lint/panic_baseline.txt: {e}"))?;
        Config::parse(&lint, &atomics, &baseline)
    }

    /// Parse configuration from in-memory text (fixture entry point).
    pub fn parse(lint: &str, atomics: &str, baseline: &str) -> Result<Config, String> {
        let lint = parse_toml(lint)?;
        let atomics_doc = parse_toml(atomics)?;
        let mut cfg = Config {
            unsafe_allow: lint.list("unsafe", "allow"),
            lock_ignore_calls: lint.list("locks", "ignore_calls"),
            lock_ordered_classes: lint.list("locks", "ordered_classes"),
            panic_paths: lint.list("panic", "paths"),
            ..Config::default()
        };
        for (k, v) in lint.section("locks.aliases") {
            if let TomlValue::Str(s) = v {
                cfg.lock_aliases.insert(k.clone(), s.clone());
            }
        }
        for (k, v) in lint.section("locks.acquires") {
            if let TomlValue::Str(s) = v {
                cfg.lock_acquires.insert(k.clone(), s.clone());
            }
        }
        for (k, v) in atomics_doc.section("") {
            if let TomlValue::List(items) = v {
                cfg.atomics.insert(k.clone(), items.clone());
            }
        }
        for (lineno, line) in baseline.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (count, file) = line.split_once(char::is_whitespace).ok_or_else(|| {
                format!("panic_baseline.txt:{}: want `<count> <file>`", lineno + 1)
            })?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("panic_baseline.txt:{}: bad count {count:?}", lineno + 1))?;
            cfg.panic_baseline.insert(file.trim().to_string(), count);
        }
        Ok(cfg)
    }
}

fn read_required(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// The subset of TOML this crate needs: comments, `[section]` /
/// `[a.b]` headers, `key = "string"`, `key = ["a", "b"]`, bare and
/// quoted keys. No inline tables, no multi-line strings.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    Str(String),
    List(Vec<String>),
}

pub struct TomlDoc {
    /// (section, key) → value; top-level keys use section `""`.
    entries: Vec<(String, String, TomlValue)>,
}

impl TomlDoc {
    pub fn section<'a>(&'a self, name: &str) -> Vec<(&'a String, &'a TomlValue)> {
        self.entries
            .iter()
            .filter(|(s, _, _)| s == name)
            .map(|(_, k, v)| (k, v))
            .collect()
    }

    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        self.entries
            .iter()
            .find(|(s, k, _)| s == section && k == key)
            .map(|(_, _, v)| match v {
                TomlValue::List(items) => items.clone(),
                TomlValue::Str(s) => vec![s.clone()],
            })
            .unwrap_or_default()
    }
}

pub fn parse_toml(text: &str) -> Result<TomlDoc, String> {
    let mut entries = Vec::new();
    let mut section = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("toml line {}: expected `key = value`", lineno + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        let parsed = if value.starts_with('[') {
            if !value.ends_with(']') {
                return Err(format!("toml line {}: unclosed list", lineno + 1));
            }
            let inner = &value[1..value.len() - 1];
            let items = inner
                .split(',')
                .map(|s| s.trim().trim_matches('"').to_string())
                .filter(|s| !s.is_empty())
                .collect();
            TomlValue::List(items)
        } else {
            TomlValue::Str(value.trim_matches('"').to_string())
        };
        entries.push((section.clone(), key, parsed));
    }
    Ok(TomlDoc { entries })
}

/// Strip a `#` comment, but not a `#` inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// The registered rule set, in report order.
pub const RULES: [&str; 5] = ["unsafe", "locks", "atomics", "panics", "wire"];

/// Run every rule over the workspace. Rule selection (allow/deny) is a
/// presentation concern handled by the caller — the scan is always full.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    rules::unsafe_confinement::check(ws, cfg, &mut out);
    rules::lock_order::check(ws, cfg, &mut out);
    rules::atomics::check(ws, cfg, &mut out);
    rules::panic_path::check(ws, cfg, &mut out);
    rules::wire_ops::check(ws, cfg, &mut out);
    out.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    out
}

/// Locate the workspace root: `--root` if given, else walk up from the
/// current directory to the first `Cargo.toml` containing `[workspace]`.
pub fn find_root(explicit: Option<&str>) -> Result<PathBuf, String> {
    if let Some(r) = explicit {
        return Ok(PathBuf::from(r));
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace Cargo.toml found above the current directory; \
                        pass --root"
                    .into(),
            );
        }
    }
}

/// Minimal JSON string escaping for the machine-readable output (the
/// crate is dependency-free by design, so it does not pull jim-json).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
