//! A minimal Rust token scanner.
//!
//! The container has no crates.io access, so `syn` is off the table;
//! every rule in this crate instead works over this hand-rolled lexer
//! (same spirit as `jim-json`'s hand-rolled parser). It does *not*
//! parse Rust — it only has to be exact about the places where a naive
//! text scan lies: comments (line, nested block), string literals
//! (plain, byte, raw with any `#` count), char literals vs lifetimes,
//! and raw identifiers. Everything that survives those filters comes
//! out as a flat token stream with line numbers, which is enough to
//! recognize `unsafe`, `.lock()` chains, `Ordering::` paths, panic
//! macros, and `#[cfg(test)]` module boundaries.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `lock`, `Ordering`, ...).
    Ident,
    /// Number, string, char, or byte literal. String contents are
    /// dropped — a literal's text is an opaque placeholder, so
    /// `"unsafe"` in a string can never look like the keyword.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any other single character: `{`, `(`, `.`, `:`, `!`, ...
    Punct,
}

/// One token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Tokenize `src`, dropping comments and string contents.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_plain_string(b, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"…\"".into(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Char literal or lifetime. `'a'` is a char; `'a` not
                // followed by a closing quote is a lifetime; `'\n'` is
                // a char escape. `'static` is a lifetime.
                let start_line = line;
                let next = b.get(i + 1).copied();
                if next == Some(b'\\') {
                    // Escape: skip the escaped character unconditionally
                    // (it may itself be a quote, as in '\''), then
                    // consume to the closing quote.
                    i += 3; // past '\ and the escaped char
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // past closing '
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'…'".into(),
                        line: start_line,
                    });
                } else if next.is_some_and(is_ident_start) && b.get(i + 2) != Some(&b'\'') {
                    // Lifetime: 'ident with no closing quote right after.
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                        line: start_line,
                    });
                    i = j;
                } else {
                    // Char literal like 'x' (or a stray quote — consume it).
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'…'".into(),
                        line: start_line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                let start_line = line;
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                let word = &src[start..j];
                // Raw strings and byte strings: r"..", r#".."#, b"..",
                // br#".."#, and raw identifiers r#ident.
                if matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr") {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while b.get(k) == Some(&b'#') {
                        hashes += 1;
                        k += 1;
                    }
                    let is_raw = word.contains('r');
                    if b.get(k) == Some(&b'"') && (is_raw || hashes == 0) {
                        // Raw string (r/br/cr with any hash count) or
                        // plain byte/c string (b"/c" with no hashes).
                        if is_raw {
                            i = skip_raw_string(b, k + 1, hashes, &mut line);
                        } else {
                            i = skip_plain_string(b, k, &mut line);
                        }
                        tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: "\"…\"".into(),
                            line: start_line,
                        });
                        continue;
                    }
                    if word == "r" && hashes == 1 && b.get(k).copied().is_some_and(is_ident_start) {
                        // Raw identifier r#ident: emit the ident itself so
                        // `r#try` and `try` compare equal where it matters.
                        let mut m = k + 1;
                        while m < b.len() && is_ident_continue(b[m]) {
                            m += 1;
                        }
                        tokens.push(Token {
                            kind: TokenKind::Ident,
                            text: src[k..m].to_string(),
                            line: start_line,
                        });
                        i = m;
                        continue;
                    }
                    if word == "b" && b.get(j) == Some(&b'\'') {
                        // Byte char literal b'x' / b'\n'.
                        let mut m = j + 1;
                        if b.get(m) == Some(&b'\\') {
                            m += 1;
                        }
                        m += 1;
                        while m < b.len() && b[m] != b'\'' {
                            m += 1;
                        }
                        tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: "b'…'".into(),
                            line: start_line,
                        });
                        i = m + 1;
                        continue;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: word.to_string(),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let start_line = line;
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if is_ident_continue(d) {
                        j += 1;
                    } else if d == b'.' && b.get(j + 1).copied().is_some_and(|n| n.is_ascii_digit())
                    {
                        // `1.5` is one literal; `1..n` is a range — keep
                        // the dots as puncts in that case.
                        j += 2;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b.get(j - 1), Some(b'e') | Some(b'E'))
                    {
                        j += 1; // exponent sign in 1e-3
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[start..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // past opening "
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string body starting just past the opening quote; the
/// terminator is `"` followed by `hashes` `#`s. No escapes exist.
fn skip_raw_string(b: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Find the index of the matching close for the opener at `open`
/// (which must be `{`, `(`, or `[`). Returns `tokens.len()` when
/// unbalanced so callers degrade to "rest of file" instead of panicking.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return idx;
            }
        }
    }
    tokens.len()
}

/// Walk backward from `idx` (exclusive) to the index of the opener
/// matching an unbalanced run of closers — used to find the receiver
/// of a method call across `foo(bar)[i]`-style groups. Returns the
/// index of the token that *opens* the group ending at `idx - 1`.
pub fn matching_open(tokens: &[Token], close: usize) -> usize {
    let (o, c) = match tokens[close].text.as_str() {
        "}" => ("{", "}"),
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return close,
    };
    let mut depth = 0usize;
    let mut idx = close;
    loop {
        let t = &tokens[idx];
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return idx;
            }
        }
        if idx == 0 {
            return 0;
        }
        idx -= 1;
    }
}
