//! Fixture tests for every jim-lint rule, the lexer's lying-text edge
//! cases, and the mini-TOML config parser.
//!
//! Fixtures are inline strings (never on-disk `.rs` files) so a clean
//! `jim-lint --workspace --deny all` run over the real tree stays clean:
//! the lexer drops string contents, so the deliberately seeded
//! violations below are invisible to the workspace scan.

#![forbid(unsafe_code)]

use jim_lint::lexer::{lex, TokenKind};
use jim_lint::rules::{atomics, lock_order, panic_path, unsafe_confinement, wire_ops};
use jim_lint::{json_escape, parse_toml, run_all, Config, Finding, TomlValue, Workspace};

/// A config with the shapes the fixtures below rely on.
fn test_config() -> Config {
    Config::parse(
        r#"
[unsafe]
allow = ["crates/aio/", "crates/simd/src/avx2.rs"]

[locks]
ignore_calls = ["new", "push", "len", "insert"]
ordered_classes = []

[locks.aliases]
s = "shard"
shard = "shard"

[locks.acquires]
with_session = "session"

[panic]
paths = ["crates/server/src"]
"#,
        r#"
triggered = ["SeqCst"]
count = ["Relaxed"]
"Counter.0" = ["Relaxed"]
"#,
        "",
    )
    .expect("fixture config parses")
}

fn findings_of(
    rule: fn(&Workspace, &Config, &mut Vec<Finding>),
    files: &[(&str, &str)],
    readme: &str,
    cfg: &Config,
) -> Vec<Finding> {
    let ws = Workspace::from_sources(files, readme);
    let mut out = Vec::new();
    rule(&ws, cfg, &mut out);
    out
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_drops_strings_and_comments_that_mention_unsafe() {
    let src = r##"
// unsafe in a line comment
/* unsafe /* nested block, still unsafe */ comment */
fn f() {
    let a = "unsafe { }";
    let b = r#"unsafe in a raw string with "quotes" inside"#;
    let c = b"unsafe bytes";
    let d = br#"unsafe raw bytes"#;
}
"##;
    let cfg = test_config();
    let out = findings_of(
        unsafe_confinement::check,
        &[("crates/server/src/x.rs", src)],
        "",
        &cfg,
    );
    assert!(out.is_empty(), "string/comment text is not code: {out:?}");
}

#[test]
fn lexer_flags_a_real_unsafe_token_with_its_line() {
    let src = "fn f() {\n    let p = 0 as *const u8;\n    unsafe { p.read() };\n}\n";
    let cfg = test_config();
    let out = findings_of(
        unsafe_confinement::check,
        &[("crates/server/src/x.rs", src)],
        "",
        &cfg,
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].line, 3);
    assert_eq!(out[0].rule, "unsafe");
}

#[test]
fn lexer_allows_unsafe_under_allowlisted_prefixes() {
    let src = "pub fn f() { unsafe { core::arch::x86_64::_mm_pause() } }";
    let cfg = test_config();
    let out = findings_of(
        unsafe_confinement::check,
        &[("crates/aio/src/lib.rs", src)],
        "",
        &cfg,
    );
    assert!(out.is_empty());
}

#[test]
fn lexer_distinguishes_char_literals_from_lifetimes() {
    let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Literal && t.text == "'…'"));
}

#[test]
fn lexer_handles_escaped_char_and_raw_hash_counts() {
    // '\'' must not desynchronize the scan; r##"…"## needs two hashes.
    let toks = lex(r####"fn f() { let q = '\''; let s = r##"a "# b"##; q }"####);
    let idents: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    // The trailing `q` proves the lexer resynchronized after both.
    assert_eq!(idents, ["fn", "f", "let", "q", "let", "s", "q"]);
}

#[test]
fn lexer_keeps_range_dots_but_merges_float_dots() {
    let toks = lex("for i in 1..n { let x = 1.5; }");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Literal && t.text == "1"));
    assert_eq!(toks.iter().filter(|t| t.is_punct(".")).count(), 2);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Literal && t.text == "1.5"));
}

#[test]
fn lexer_unescapes_raw_identifiers() {
    let toks = lex("fn r#match() { r#match() }");
    assert_eq!(
        toks.iter().filter(|t| t.is_ident("match")).count(),
        2,
        "r#match lexes as the ident `match`: {toks:?}"
    );
}

// ---------------------------------------------------- test-span detection

#[test]
fn cfg_test_spans_exclude_tests_but_not_cfg_not_test() {
    let src = r#"
fn real(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 { x.unwrap() }
}

#[cfg(all(test, target_os = "linux"))]
mod linux_tests {
    fn helper(x: Option<u32>) -> u32 { x.unwrap() }
}

#[cfg(not(test))]
fn prod(x: Option<u32>) -> u32 { x.unwrap() }

#[test]
fn a_test() { assert_eq!(Some(1).unwrap(), 1); }

macro_rules! m {
    ($x:expr) => { $x.unwrap() };
}
"#;
    let cfg = test_config();
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/a.rs", src)],
        "",
        &cfg,
    );
    // Only `real` (line 2) and the cfg(not(test)) `prod` (line 15)
    // count; mod tests, cfg(all(test,..)), #[test] fn, and the
    // macro_rules body are all excluded.
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 15], "{out:?}");
}

#[test]
fn files_under_tests_dirs_are_test_files_wholesale() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let cfg = test_config();
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/tests/fixture.rs", src)],
        "",
        &cfg,
    );
    assert!(out.is_empty());
}

// ------------------------------------------------------------ lock order

/// Shorthand: run the locks rule over one non-test file.
fn lock_findings(src: &str, cfg: &Config) -> Vec<Finding> {
    findings_of(
        lock_order::check,
        &[("crates/server/src/l.rs", src)],
        "",
        cfg,
    )
}

#[test]
fn seeded_ab_ba_cycle_is_a_deadlock_finding() {
    let src = r#"
impl S {
    fn ab(&self) {
        let g = self.alpha.lock();
        let h = self.beta.lock();
        h.len()
    }
    fn ba(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
        h.len()
    }
}
"#;
    let cfg = test_config();
    let out = lock_findings(src, &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("lock-order cycle"));
    assert!(out[0].message.contains("alpha → beta → alpha"));
    // Both edge sites are named so the report is actionable.
    assert!(out[0].message.contains(":5 "), "{}", out[0].message);
    assert!(out[0].message.contains(":10 "), "{}", out[0].message);
}

#[test]
fn dropping_the_guard_breaks_the_edge() {
    let src = r#"
impl S {
    fn ab(&self) {
        let g = self.alpha.lock();
        drop(g);
        let h = self.beta.lock();
    }
    fn ba(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
    }
}
"#;
    let cfg = test_config();
    assert!(lock_findings(src, &cfg).is_empty());
}

#[test]
fn scope_end_releases_the_guard() {
    let src = r#"
impl S {
    fn ab(&self) {
        { let g = self.alpha.lock(); }
        let h = self.beta.lock();
    }
    fn ba(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
    }
}
"#;
    let cfg = test_config();
    assert!(lock_findings(src, &cfg).is_empty());
}

#[test]
fn a_temporary_acquires_but_holds_nothing() {
    let src = r#"
impl S {
    fn ab(&self) {
        self.alpha.lock().insert(1);
        let h = self.beta.lock();
    }
    fn ba(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
    }
}
"#;
    let cfg = test_config();
    assert!(lock_findings(src, &cfg).is_empty());
}

#[test]
fn same_class_reacquisition_is_a_self_loop_unless_ordered() {
    let src = r#"
impl S {
    fn nested(&self) {
        let g = self.session.lock();
        let h = self.session.lock();
    }
}
"#;
    let cfg = test_config();
    let out = lock_findings(src, &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("acquired while already held"));

    let mut ordered = test_config();
    ordered.lock_ordered_classes = vec!["session".into()];
    assert!(lock_findings(src, &ordered).is_empty());
}

#[test]
fn aliases_normalize_receivers_into_one_class() {
    // `s` aliases to `shard`, so these two functions form a cycle.
    let src = r#"
impl S {
    fn one(&self) {
        let g = self.s.lock();
        let h = self.inbox.lock();
    }
    fn two(&self) {
        let g = self.inbox.lock();
        let h = self.shard.lock();
    }
}
"#;
    let cfg = test_config();
    let out = lock_findings(src, &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("inbox → shard → inbox"));

    // Without the alias the receivers are distinct classes: no cycle.
    let mut unaliased = test_config();
    unaliased.lock_aliases.clear();
    assert!(lock_findings(src, &unaliased).is_empty());
}

#[test]
fn cross_function_edges_propagate_through_resolvable_calls() {
    let src = r#"
impl S {
    fn outer(&self) {
        let g = self.alpha.lock();
        self.helper();
    }
    fn helper(&self) {
        let h = self.beta.lock();
    }
    fn reverse(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
    }
}
"#;
    let cfg = test_config();
    let out = lock_findings(src, &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("lock-order cycle"));
    assert!(
        out[0].message.contains("`helper`"),
        "the call edge names the callee: {}",
        out[0].message
    );
}

#[test]
fn closure_taking_wrappers_hold_their_declared_class() {
    // `with_session` is declared in [locks.acquires]: the lock taken
    // inside its closure argument is an edge session → alpha, which
    // cycles with `reverse`'s alpha → session.
    let src = r#"
impl S {
    fn outer(&self) {
        with_session(id, |s| {
            let g = self.alpha.lock();
            g.len()
        });
    }
    fn reverse(&self) {
        let g = self.alpha.lock();
        let h = self.session.lock();
    }
}
"#;
    let cfg = test_config();
    let out = lock_findings(src, &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("alpha → session → alpha"));
}

#[test]
fn macro_rules_bodies_are_not_acquisition_sites() {
    let src = r#"
macro_rules! locked {
    ($m:expr) => {{
        let g = $m.alpha.lock();
        let h = $m.beta.lock();
    }};
}
impl S {
    fn reverse(&self) {
        let g = self.beta.lock();
        let h = self.alpha.lock();
    }
}
"#;
    let cfg = test_config();
    assert!(lock_findings(src, &cfg).is_empty());
}

// --------------------------------------------------------------- atomics

#[test]
fn atomics_enforce_the_declared_convention() {
    let src = r#"
impl S {
    fn ok(&self) {
        self.triggered.store(true, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
    fn weakened(&self) {
        self.triggered.store(true, Ordering::Relaxed);
    }
}
"#;
    let cfg = test_config();
    let out = findings_of(atomics::check, &[("crates/server/src/a.rs", src)], "", &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("violates its declared convention"));
    assert!(out[0].message.contains("SeqCst"));
    assert_eq!(out[0].line, 8);
}

#[test]
fn undeclared_atomic_fields_are_their_own_finding() {
    let src = "fn f(m: &M) { m.mystery.load(Ordering::Acquire); }";
    let cfg = test_config();
    let out = findings_of(atomics::check, &[("crates/server/src/a.rs", src)], "", &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("no declared ordering convention"));
}

#[test]
fn cmp_ordering_variants_never_match() {
    let src = r#"
fn f(a: &u32, b: &u32) -> bool {
    a.cmp(b) == Ordering::Less || a.cmp(b) == Ordering::Greater
}
fn g(a: &u32, b: &u32) -> Ordering { Ordering::Equal }
"#;
    let cfg = test_config();
    let out = findings_of(atomics::check, &[("crates/server/src/a.rs", src)], "", &cfg);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn tuple_struct_receivers_key_as_type_dot_index() {
    let src = r#"
pub struct Counter(AtomicU64);
impl Counter {
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    pub fn wrong(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}
"#;
    let cfg = test_config();
    let out = findings_of(atomics::check, &[("crates/server/src/a.rs", src)], "", &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("`Counter.0`"), "{}", out[0].message);
    assert_eq!(out[0].line, 8);
}

#[test]
fn orderings_outside_atomic_calls_are_flagged() {
    let src = "fn f() -> Ordering { Ordering::SeqCst }";
    let cfg = test_config();
    let out = findings_of(atomics::check, &[("crates/server/src/a.rs", src)], "", &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0]
        .message
        .contains("outside a recognized atomic operation"));
}

// ---------------------------------------------------------------- panics

#[test]
fn panic_sites_over_baseline_fail_per_site() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a != b { panic!("impossible") }
    a
}
"#;
    let cfg = test_config();
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/p.rs", src)],
        "",
        &cfg,
    );
    assert_eq!(out.len(), 3, "{out:?}");
    assert!(out[0].message.contains("baseline allows 0"));
}

#[test]
fn unwrap_or_family_never_matches() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}
"#;
    let cfg = test_config();
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/p.rs", src)],
        "",
        &cfg,
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn files_outside_the_audited_paths_are_not_scanned() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let cfg = test_config();
    let out = findings_of(
        panic_path::check,
        &[("crates/core/src/p.rs", src)],
        "",
        &cfg,
    );
    assert!(out.is_empty());
}

#[test]
fn baseline_at_exact_count_is_clean_but_stale_below() {
    let one_site = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let mut cfg = test_config();
    cfg.panic_baseline
        .insert("crates/server/src/p.rs".into(), 1);
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/p.rs", one_site)],
        "",
        &cfg,
    );
    assert!(out.is_empty(), "at-baseline is tolerated: {out:?}");

    // Fixing the site without regenerating the baseline is itself a
    // finding: stale ceilings let the count creep back up.
    let fixed = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
    let out = findings_of(
        panic_path::check,
        &[("crates/server/src/p.rs", fixed)],
        "",
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("stale panic baseline"));
}

#[test]
fn baseline_entries_for_gone_files_are_stale() {
    let mut cfg = test_config();
    cfg.panic_baseline
        .insert("crates/server/src/deleted.rs".into(), 3);
    let out = findings_of(panic_path::check, &[], "", &cfg);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("gone or no longer audited"));
}

// ------------------------------------------------------------------ wire

const PROTO_OK: &str = r#"
pub enum Request {
    Ping { payload: u64 },
    Stats,
}
"#;

const METRICS_OK: &str = r#"
pub enum Op { Ping, Stats }
impl Op {
    pub const ALL: [Op; 2] = [Op::Ping, Op::Stats];
}
"#;

const README_OK: &str = "\
| op | meaning |\n\
|----|---------|\n\
| `Ping` | round trip |\n\
| `Stats` | engine statistics |\n";

#[test]
fn consistent_wire_surfaces_are_clean() {
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", METRICS_OK),
        ],
        README_OK,
        &cfg,
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn a_wire_op_missing_from_the_metrics_ledger_is_flagged() {
    let metrics = "pub enum Op { Ping }\nimpl Op { pub const ALL: [Op; 1] = [Op::Ping]; }";
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", metrics),
        ],
        README_OK,
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("`Stats` has no per-op `Op` entry"));
}

#[test]
fn an_op_missing_from_op_all_is_flagged() {
    let metrics = "pub enum Op { Ping, Stats }\nimpl Op { pub const ALL: [Op; 1] = [Op::Ping]; }";
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", metrics),
        ],
        README_OK,
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("missing from `Op::ALL`"));
}

#[test]
fn a_wire_op_missing_its_readme_row_is_flagged() {
    let readme = "| op | meaning |\n| `Ping` | round trip |\n";
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", METRICS_OK),
        ],
        readme,
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("no README protocol-table row"));
    // Mentioning `Stats` in prose (not a table row) does not count.
    let prose = format!("{readme}\nThe Stats op returns statistics.\n");
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", METRICS_OK),
        ],
        &prose,
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
}

#[test]
fn dead_metrics_entries_are_flagged() {
    let metrics = "pub enum Op { Ping, Stats, Retired }\n\
                   impl Op { pub const ALL: [Op; 3] = [Op::Ping, Op::Stats, Op::Retired]; }";
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", PROTO_OK),
            ("crates/server/src/metrics.rs", metrics),
        ],
        README_OK,
        &cfg,
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0]
        .message
        .contains("`Op::Retired` has no matching `Request` variant"));
}

#[test]
fn workspaces_without_a_request_enum_skip_the_rule() {
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[("crates/server/src/l.rs", "fn f() {}")],
        "",
        &cfg,
    );
    assert!(out.is_empty());
}

#[test]
fn enum_variants_skip_attributes_payloads_and_discriminants() {
    let proto = r#"
pub enum Request {
    #[deprecated = "old"]
    Ping { payload: u64, extra: Vec<String> },
    Stats = 7,
}
"#;
    let cfg = test_config();
    let out = findings_of(
        wire_ops::check,
        &[
            ("crates/server/src/protocol.rs", proto),
            ("crates/server/src/metrics.rs", METRICS_OK),
        ],
        README_OK,
        &cfg,
    );
    assert!(
        out.is_empty(),
        "payload fields must not read as variants: {out:?}"
    );
}

// ------------------------------------------------------- config plumbing

#[test]
fn mini_toml_parses_sections_lists_and_quoted_keys() {
    let doc = parse_toml(
        r##"
# leading comment
top = "value with # inside"

[a.b]
"quoted.key" = ["x", "y"]  # trailing comment
plain = "z"
"##,
    )
    .expect("parses");
    assert_eq!(doc.list("", "top"), vec!["value with # inside".to_string()]);
    assert_eq!(
        doc.list("a.b", "quoted.key"),
        vec!["x".to_string(), "y".to_string()]
    );
    let section = doc.section("a.b");
    assert_eq!(section.len(), 2);
    assert_eq!(
        section[1],
        (&"plain".to_string(), &TomlValue::Str("z".to_string()))
    );
}

#[test]
fn bad_baseline_lines_are_config_errors() {
    let err = Config::parse("", "", "not-a-count crates/server/src/x.rs")
        .expect_err("bad count must not parse");
    assert!(err.contains("bad count"), "{err}");
    let err = Config::parse("", "", "justoneword").expect_err("missing file must not parse");
    assert!(err.contains("want `<count> <file>`"), "{err}");
}

#[test]
fn run_all_orders_findings_by_rule_file_line() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    let p = x.unwrap();
    unsafe { core::hint::unreachable_unchecked() }
}
"#;
    let cfg = test_config();
    let ws = Workspace::from_sources(&[("crates/server/src/z.rs", src)], "");
    let out = run_all(&ws, &cfg);
    let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["panics", "unsafe"], "{out:?}");
    assert!(out[1]
        .render()
        .starts_with("crates/server/src/z.rs:4: [unsafe]"));
}

#[test]
fn json_escape_covers_quotes_backslashes_and_control_chars() {
    assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
    assert_eq!(json_escape("\u{1}"), "\\u0001");
}
