//! `jim-load` — a concurrent-session load driver for `jim-serve`.
//!
//! The driver opens `--concurrency` client connections (one worker thread
//! each) against a running server — an external one via `--addr`, or an
//! in-process one it spawns itself with `--spawn` — and drives
//! `--sessions` synthetic inference sessions through them: a seeded mixed
//! workload of `CreateSession` (scenario and strategy mix, the `social`
//! self-join included), `NextQuestion`+`Answer` turns, `TopK`+`AnswerBatch`
//! turns, side ops (`Stats`, `Sql`, `Transcript`, `Explain`,
//! `ResumeSession`) and a probabilistic `CloseSession`.
//!
//! Every request's round-trip latency lands in a per-worker, per-op
//! `jim-metrics` [`Histogram`]; workers never share a lock. At the end the
//! per-worker snapshots are **merged** — the exact snapshot-merge
//! invariant `jim-metrics` proptests — into one client-side percentile
//! table per op, and the driver asks the server for its own `Metrics`
//! snapshot. When the driver is the only client (`--spawn`, or `--addr`
//! with `--exclusive`), the two views must agree *exactly*: for every op,
//! the client's sent count equals the server's request counter (the
//! `Metrics` fetch itself included — the server counts requests before
//! dispatch). Any disagreement, any `ok:false` response and any transport
//! error fails the run.
//!
//! The result is written as `BENCH_load.json`: git revision, full config,
//! per-op count + p50/p90/p99/max/mean microseconds, throughput, error
//! counts and the server's store counters. The file is re-parsed after
//! writing; an unwritable or invalid report also fails the run.
//!
//! The workload is error-free *by construction*: answers label only
//! tuples the server just proposed (always informative, hence unlabeled
//! and unpruned), batches apply one label polarity (same-label batches
//! can never conflict), and `Explain` passes an explicitly known tuple.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use jim_json::Json;
use jim_metrics::{Histogram, HistogramSnapshot};
use jim_server::{
    serve_with, spawn_sweeper, Handler, JournalStore, Op, SessionStore, Shutdown, StoreConfig,
    Transport, TransportLimits,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scenario mix the sessions draw from (weights out of 100).
const SCENARIOS: [(&str, u32); 3] = [("flights", 40), ("social", 40), ("setgame", 20)];

/// Run configuration (CLI flags parsed by [`cli_main`]).
#[derive(Debug, Clone)]
pub struct Config {
    /// Server address; `None` spawns an in-process server.
    pub addr: Option<String>,
    /// Transport for the spawned server (`None` = platform default).
    pub transport: Option<Transport>,
    /// Worker threads = concurrent client connections.
    pub concurrency: usize,
    /// Total sessions driven across all workers.
    pub sessions: usize,
    /// Upper bound on interaction turns per session.
    pub max_turns: usize,
    /// Base RNG seed; worker `i` derives its own stream from it.
    pub seed: u64,
    /// Where the report lands.
    pub out: PathBuf,
    /// The driver is the only client: cross-check client vs. server
    /// counts exactly (implied by spawning).
    pub exclusive: bool,
    /// Smoke preset (small, CI-sized run).
    pub smoke: bool,
    /// Transport guardrails for the spawned server (reactor count,
    /// admission cap, idle timeout, in-flight cap) — recorded in the
    /// report so a BENCH_load.json diff shows what front end produced it.
    pub limits: TransportLimits,
    /// The admission-churn preset: more workers than connection slots,
    /// one connection per session, so every session pays the full
    /// admit-or-shed path. The run *fails* if the cap never sheds.
    pub connections_preset: bool,
    /// A previously written `BENCH_load.json` to regression-gate against:
    /// the run fails if any op's p99 exceeds
    /// [`BASELINE_P99_FACTOR`]× the baseline's.
    pub check_baseline: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: None,
            transport: None,
            concurrency: 100,
            sessions: 200,
            max_turns: 20,
            seed: 42,
            out: PathBuf::from("BENCH_load.json"),
            exclusive: true,
            smoke: false,
            limits: TransportLimits::default(),
            connections_preset: false,
            check_baseline: None,
        }
    }
}

impl Config {
    /// The CI-sized preset: small enough for a smoke gate, mixed enough
    /// to touch every op.
    pub fn smoke() -> Config {
        Config {
            concurrency: 8,
            sessions: 24,
            max_turns: 10,
            smoke: true,
            ..Config::default()
        }
    }

    /// The `--connections` preset: twice as many workers as connection
    /// slots, reconnecting for every session, so the admission cap sheds
    /// continuously while admitted traffic stays error-free. Shed
    /// workers retry with backoff until a slot frees.
    pub fn connections() -> Config {
        Config {
            concurrency: 64,
            sessions: 96,
            max_turns: 5,
            limits: TransportLimits {
                max_connections: 32,
                ..TransportLimits::default()
            },
            connections_preset: true,
            ..Config::default()
        }
    }
}

/// How long a fresh connection listens for an immediate shed notice
/// before concluding it was admitted. The server sheds synchronously at
/// accept, so on loopback the notice (or its FIN) lands in microseconds;
/// the window only bounds the *admitted* case, which pays it once.
const ADMISSION_PROBE: Duration = Duration::from_millis(150);

/// One line-oriented client connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    /// Connect and classify the server's admission verdict before
    /// sending anything: a shed connection hears the typed `overloaded`
    /// line (or at least the close) immediately, an admitted one hears
    /// nothing until it speaks. `Ok(None)` means shed — the caller backs
    /// off and retries. Probing before the first write keeps the notice
    /// reliable (the client has nothing in flight, so the server's close
    /// is a clean FIN, never a data-discarding reset) and keeps shed
    /// requests out of the sent counts entirely.
    fn connect_probe(addr: &str) -> Result<Option<Conn>, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(ADMISSION_PROBE))
            .map_err(|e| format!("probe timeout: {e}"))?;
        let mut one = [0u8; 1];
        match stream.peek(&mut one) {
            Ok(_) => Ok(None), // the shed notice (or bare close): not admitted
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
                let reader = BufReader::new(
                    stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?,
                );
                Ok(Some(Conn {
                    reader,
                    writer: stream,
                }))
            }
            Err(e) => Err(format!("probe {addr}: {e}")),
        }
    }

    fn round_trip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(response),
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

/// Per-worker accounting: op counts, per-op latency histograms, errors.
struct WorkerStats {
    sent: Vec<u64>,
    latency: Vec<Histogram>,
    protocol_errors: u64,
    io_errors: u64,
    rejected_batches: u64,
    sheds: u64,
    error_samples: Vec<String>,
}

/// Cap on retained error messages, per worker and in the merged report.
const ERROR_SAMPLES: usize = 5;

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            sent: vec![0; Op::ALL.len()],
            latency: (0..Op::ALL.len()).map(|_| Histogram::new()).collect(),
            protocol_errors: 0,
            io_errors: 0,
            rejected_batches: 0,
            sheds: 0,
            error_samples: Vec::new(),
        }
    }

    /// Send one request, time the round trip, account the outcome.
    fn request(&mut self, conn: &mut Conn, op: Op, line: &str) -> Result<Json, String> {
        self.sent[op as usize] += 1;
        let start = Instant::now();
        let response = match conn.round_trip(line) {
            Ok(response) => response,
            Err(e) => {
                self.io_errors += 1;
                return Err(e);
            }
        };
        let json = match Json::parse(response.trim()) {
            Ok(json) => json,
            Err(e) => {
                self.io_errors += 1;
                return Err(format!("unparseable response: {e}"));
            }
        };
        if json.get("code").and_then(Json::as_str) == Some("overloaded") {
            // Shed at admission (the connect probe's window was outrun):
            // the server never read this request, so it must not count
            // toward the exact cross-check. The connection is closing —
            // tell the caller to reconnect.
            self.sent[op as usize] -= 1;
            self.sheds += 1;
            return Err("shed at admission".into());
        }
        self.latency[op as usize].record_duration(start.elapsed());
        if json.get("ok").and_then(Json::as_bool) != Some(true) {
            self.protocol_errors += 1;
            if self.error_samples.len() < ERROR_SAMPLES {
                let message = json
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("(no error field)");
                self.error_samples.push(format!("{}: {message}", op.name()));
            }
        }
        Ok(json)
    }
}

/// Pick from a weighted table (weights sum to 100).
fn pick_weighted<'a>(rng: &mut StdRng, table: &[(&'a str, u32)]) -> &'a str {
    let roll = rng.gen_range(0u32..100);
    let mut acc = 0;
    for &(name, weight) in table {
        acc += weight;
        if roll < acc {
            return name;
        }
    }
    table.last().expect("non-empty table").0
}

/// Drive one full session lifecycle over `conn`. `Err` means the
/// connection itself is unusable (I/O failure or an admission shed that
/// outran the connect probe) — the worker reconnects and retries.
fn drive_session(
    conn: &mut Conn,
    rng: &mut StdRng,
    stats: &mut WorkerStats,
    max_turns: usize,
) -> Result<(), String> {
    let scenario = pick_weighted(rng, &SCENARIOS);
    let strategy = match rng.gen_range(0u32..4) {
        0 => String::new(), // server default
        1 => r#","strategy":"lookahead-minprune""#.into(),
        2 => r#","strategy":"local-general""#.into(),
        _ => format!(r#","strategy":"random:{}""#, rng.gen_range(1u64..1000)),
    };
    // Sample setgame down so its 144-tuple product varies across
    // sessions — `force_sample` keeps the seed meaningful now that
    // oversized products open factorized (at full fidelity) by default.
    let sampling = if scenario == "setgame" {
        format!(
            r#","max_product":64,"sample_seed":{},"force_sample":true"#,
            rng.gen_range(0u64..1000)
        )
    } else {
        String::new()
    };
    let create = format!(
        r#"{{"op":"CreateSession","source":{{"scenario":"{scenario}"}}{strategy}{sampling}}}"#
    );
    let r = stats.request(conn, Op::CreateSession, &create)?;
    let Some(sid) = r.get("session").and_then(Json::as_u64) else {
        return Ok(());
    };
    let mut last_tuple: Option<u64> = None;
    for _ in 0..max_turns {
        let roll = rng.gen_range(0u32..100);
        let resolved = if roll < 55 {
            one_question_turn(conn, rng, stats, sid, &mut last_tuple)
        } else if roll < 75 {
            batch_turn(conn, rng, stats, sid, &mut last_tuple)
        } else {
            side_op_turn(conn, rng, stats, sid, last_tuple)
        };
        if resolved? {
            break;
        }
    }
    if rng.gen_bool(0.85) {
        stats.request(
            conn,
            Op::CloseSession,
            &format!(r#"{{"op":"CloseSession","session":{sid}}}"#),
        )?;
    }
    Ok(())
}

/// `NextQuestion` then `Answer` on the proposed tuple. `Ok(true)` once
/// the session resolves.
fn one_question_turn(
    conn: &mut Conn,
    rng: &mut StdRng,
    stats: &mut WorkerStats,
    sid: u64,
    last_tuple: &mut Option<u64>,
) -> Result<bool, String> {
    let q = stats.request(
        conn,
        Op::NextQuestion,
        &format!(r#"{{"op":"NextQuestion","session":{sid}}}"#),
    )?;
    if q.get("resolved").and_then(Json::as_bool) == Some(true) {
        return Ok(true);
    }
    let Some(tuple) = q.get("tuple").and_then(Json::as_u64) else {
        return Ok(false);
    };
    *last_tuple = Some(tuple);
    // Mostly negative answers keep sessions converging the way the
    // paper's walkthrough does; the explicit tuple rank makes the answer
    // valid even if the session was evicted and resumed in between.
    let label = if rng.gen_bool(0.7) { "-" } else { "+" };
    let a = stats.request(
        conn,
        Op::Answer,
        &format!(r#"{{"op":"Answer","session":{sid},"tuple":{tuple},"label":"{label}"}}"#),
    )?;
    Ok(a.get("resolved").and_then(Json::as_bool) == Some(true))
}

/// `TopK` then a same-label `AnswerBatch` over the returned tuples
/// (one polarity per batch: such a batch can never self-conflict).
fn batch_turn(
    conn: &mut Conn,
    rng: &mut StdRng,
    stats: &mut WorkerStats,
    sid: u64,
    last_tuple: &mut Option<u64>,
) -> Result<bool, String> {
    let k = rng.gen_range(2u64..5);
    let b = stats.request(
        conn,
        Op::TopK,
        &format!(r#"{{"op":"TopK","session":{sid},"k":{k}}}"#),
    )?;
    if b.get("resolved").and_then(Json::as_bool) == Some(true) {
        return Ok(true);
    }
    let tuples: Vec<u64> = b
        .get("tuples")
        .and_then(Json::as_array)
        .map(|ts| {
            ts.iter()
                .filter_map(|t| t.get("tuple").and_then(Json::as_u64))
                .collect()
        })
        .unwrap_or_default();
    if tuples.is_empty() {
        return Ok(false);
    }
    *last_tuple = Some(tuples[0]);
    let label = if rng.gen_bool(0.8) { "-" } else { "+" };
    let labels: Vec<String> = tuples
        .iter()
        .map(|t| format!(r#"{{"tuple":{t},"label":"{label}"}}"#))
        .collect();
    let a = stats.request(
        conn,
        Op::AnswerBatch,
        &format!(
            r#"{{"op":"AnswerBatch","session":{sid},"labels":[{}]}}"#,
            labels.join(",")
        ),
    )?;
    if a.get("ok").and_then(Json::as_bool) == Some(false) {
        let message = a.get("error").and_then(Json::as_str).unwrap_or("");
        if message.contains("contradicts") {
            // A simulated user labels without ground truth, so a batch of
            // `+` labels can contradict the session's earlier answers.
            // The server's atomic rejection (session untouched) is the
            // documented contract, not a failure — reclassify it out of
            // the error gate into its own ledger.
            stats.protocol_errors -= 1;
            stats.rejected_batches += 1;
            if stats
                .error_samples
                .last()
                .is_some_and(|s| s.contains("contradicts"))
            {
                stats.error_samples.pop();
            }
        }
        return Ok(false);
    }
    Ok(a.get("resolved").and_then(Json::as_bool) == Some(true))
}

/// One observer op: `Stats`, `Sql`, `Transcript`, `Explain` (when a
/// tuple is known) or `ResumeSession` on the session's own id.
fn side_op_turn(
    conn: &mut Conn,
    rng: &mut StdRng,
    stats: &mut WorkerStats,
    sid: u64,
    last_tuple: Option<u64>,
) -> Result<bool, String> {
    let (op, line) = match rng.gen_range(0u32..5) {
        0 => (Op::Stats, format!(r#"{{"op":"Stats","session":{sid}}}"#)),
        1 => (Op::Sql, format!(r#"{{"op":"Sql","session":{sid}}}"#)),
        2 => (
            Op::Transcript,
            format!(r#"{{"op":"Transcript","session":{sid}}}"#),
        ),
        3 => match last_tuple {
            Some(t) => (
                Op::Explain,
                format!(r#"{{"op":"Explain","session":{sid},"tuple":{t}}}"#),
            ),
            None => (Op::Stats, format!(r#"{{"op":"Stats","session":{sid}}}"#)),
        },
        _ => (
            Op::ResumeSession,
            format!(r#"{{"op":"ResumeSession","session":{sid}}}"#),
        ),
    };
    stats.request(conn, op, &line)?;
    Ok(false)
}

/// The merged outcome of a run, ready to render and judge.
pub struct Report {
    /// The configuration that produced it.
    pub config: Config,
    /// Address actually driven.
    pub addr: String,
    /// Transport label for the report (spawned server or "external").
    pub transport: String,
    /// Wall-clock for the traffic phase.
    pub elapsed: Duration,
    /// Per-op (sent, merged latency) in [`Op::ALL`] order.
    pub ops: Vec<(u64, HistogramSnapshot)>,
    /// `ok:false` responses observed.
    pub protocol_errors: u64,
    /// Transport-level failures (connect/read/write/parse).
    pub io_errors: u64,
    /// `AnswerBatch` contradiction rejections — expected workload
    /// outcomes (atomic rejection is the contract), outside the gate.
    pub rejected_batches: u64,
    /// Admission sheds the client observed (typed `overloaded` notices).
    /// Expected traffic under the `--connections` preset — which *fails*
    /// if this stays zero, since then the cap was never exercised.
    pub sheds: u64,
    /// The first few `ok:false` messages, `"Op: message"`, for triage.
    pub error_samples: Vec<String>,
    /// `"exact"`, `"skipped"`, or a mismatch description.
    pub cross_check: String,
    /// The server's `store` metrics section, verbatim.
    pub server_store: Json,
    /// The server's `transport` metrics section, verbatim — dispatch and
    /// shed/reap counters, globally and per reactor.
    pub server_transport: Json,
}

impl Report {
    /// Total requests across every op.
    pub fn requests_total(&self) -> u64 {
        self.ops.iter().map(|(sent, _)| sent).sum()
    }

    /// Requests per second over the traffic phase.
    pub fn throughput_rps(&self) -> f64 {
        self.requests_total() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Did the run meet the gate: no errors, no cross-check mismatch,
    /// and — under the `--connections` preset — an admission cap that
    /// actually shed something?
    pub fn clean(&self) -> bool {
        self.protocol_errors == 0
            && self.io_errors == 0
            && (self.cross_check == "exact" || self.cross_check == "skipped")
            && (!self.config.connections_preset || self.sheds > 0)
    }

    /// Render the `BENCH_load.json` document.
    pub fn to_json(&self) -> Json {
        let ops: Vec<(String, Json)> = Op::ALL
            .iter()
            .zip(&self.ops)
            .map(|(&op, (sent, lat))| {
                (
                    op.name().to_string(),
                    Json::object([
                        ("count", Json::from(*sent)),
                        ("p50_us", Json::from(lat.p50())),
                        ("p90_us", Json::from(lat.p90())),
                        ("p99_us", Json::from(lat.p99())),
                        ("max_us", Json::from(lat.max())),
                        ("mean_us", Json::from(lat.mean())),
                    ]),
                )
            })
            .collect();
        Json::object([
            ("bench", Json::from("load")),
            ("git_rev", Json::from(git_rev())),
            ("timestamp_unix", Json::from(unix_now())),
            (
                "config",
                Json::object([
                    ("addr", Json::from(self.addr.as_str())),
                    ("transport", Json::from(self.transport.as_str())),
                    ("concurrency", Json::from(self.config.concurrency)),
                    ("sessions", Json::from(self.config.sessions)),
                    ("max_turns", Json::from(self.config.max_turns)),
                    ("seed", Json::from(self.config.seed)),
                    ("smoke", Json::Bool(self.config.smoke)),
                    (
                        "connections_preset",
                        Json::Bool(self.config.connections_preset),
                    ),
                    ("exclusive", Json::Bool(self.config.exclusive)),
                    // The spawned server's transport guardrails, so a
                    // throughput diff can be attributed to (or ruled out
                    // of) a front-end reconfiguration at a glance.
                    ("reactors", Json::from(self.config.limits.reactors)),
                    (
                        "max_connections",
                        Json::from(self.config.limits.max_connections),
                    ),
                    (
                        "idle_timeout_secs",
                        match self.config.limits.idle_timeout {
                            Some(t) => Json::from(t.as_secs()),
                            None => Json::Null,
                        },
                    ),
                    ("max_inflight", Json::from(self.config.limits.max_inflight)),
                    // Which jim-simd backend the in-process server's
                    // engine sweeps ran on, and the last revision that
                    // touched the kernel crate — so regressions in a
                    // BENCH_load.json diff can be attributed to (or ruled
                    // out of) a kernel change at a glance.
                    ("simd_backend", Json::from(jim_simd::active_name())),
                    ("simd_rev", Json::from(crate_rev("crates/simd"))),
                    // Same provenance stamp for the lint rules: a
                    // BENCH_load.json produced under a different rule
                    // set (e.g. before a panic-path refactor the lint
                    // forced) is attributable to it.
                    ("lint_rev", Json::from(crate_rev("crates/lint"))),
                ]),
            ),
            ("elapsed_secs", Json::from(self.elapsed.as_secs_f64())),
            ("ops", Json::Object(ops)),
            ("requests_total", Json::from(self.requests_total())),
            ("throughput_rps", Json::from(self.throughput_rps())),
            (
                "errors",
                Json::object([
                    ("protocol", Json::from(self.protocol_errors)),
                    ("io", Json::from(self.io_errors)),
                    (
                        "samples",
                        Json::Array(
                            self.error_samples
                                .iter()
                                .map(|s| Json::from(s.as_str()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("rejected_batches", Json::from(self.rejected_batches)),
            ("sheds", Json::from(self.sheds)),
            ("cross_check", Json::from(self.cross_check.as_str())),
            ("server_store", self.server_store.clone()),
            ("server_transport", self.server_transport.clone()),
        ])
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// The last commit that touched a crate's directory — a per-subsystem
/// provenance stamp, distinct from the workspace `git_rev`. Used for
/// the SIMD kernels (`crates/simd`) and the lint rule set
/// (`crates/lint`).
fn crate_rev(path: &str) -> String {
    std::process::Command::new("git")
        .args(["log", "-n1", "--format=%H", "--", path])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A spawned in-process server, torn down on drop.
struct SpawnedServer {
    addr: String,
    shutdown: Shutdown,
    serve_thread: Option<std::thread::JoinHandle<()>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
    journal_dir: PathBuf,
}

impl SpawnedServer {
    fn start(config: &Config) -> Result<SpawnedServer, String> {
        let journal_dir = std::env::temp_dir().join(format!(
            "jim-load-journal-{}-{}",
            std::process::id(),
            config.seed
        ));
        let _ = std::fs::remove_dir_all(&journal_dir);
        let journal = JournalStore::open(&journal_dir).map_err(|e| format!("journal dir: {e}"))?;
        // Capacity above the live working set (one open session per
        // worker plus the ~15% left unclosed), yet low enough that a
        // long run exercises LRU eviction + journal resume.
        let store = Arc::new(SessionStore::with_journal(
            StoreConfig {
                max_sessions: config.concurrency * 2 + 64,
                ttl: Duration::from_secs(600),
                ..Default::default()
            },
            journal,
        ));
        let handler = Arc::new(Handler::new(Arc::clone(&store)));
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("bind 127.0.0.1:0: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .to_string();
        let shutdown = Shutdown::new();
        let transport = config
            .transport
            .unwrap_or_else(Transport::default_for_platform);
        let sweeper = spawn_sweeper(&store, Duration::from_secs(5), shutdown.clone());
        let serve_shutdown = shutdown.clone();
        let limits = config.limits.clone();
        let serve_thread = std::thread::spawn(move || {
            if let Err(e) = serve_with(listener, handler, transport, serve_shutdown, limits) {
                eprintln!("jim-load: spawned server failed: {e}");
            }
        });
        Ok(SpawnedServer {
            addr,
            shutdown,
            serve_thread: Some(serve_thread),
            sweeper: Some(sweeper),
            journal_dir,
        })
    }
}

impl Drop for SpawnedServer {
    fn drop(&mut self) {
        self.shutdown.trigger();
        if let Some(t) = self.serve_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sweeper.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_dir_all(&self.journal_dir);
    }
}

/// Run the workload and produce the merged report (the report is not yet
/// written to disk — [`cli_main`] does that, so tests can inspect runs
/// without touching the filesystem).
pub fn run(config: Config) -> Result<Report, String> {
    let spawned = match &config.addr {
        Some(_) => None,
        None => Some(SpawnedServer::start(&config)?),
    };
    let addr = config
        .addr
        .clone()
        .unwrap_or_else(|| spawned.as_ref().expect("spawned").addr.clone());
    let transport = match (&config.addr, &config.transport) {
        (Some(_), _) => "external".to_string(),
        (None, Some(t)) => t.to_string(),
        (None, None) => Transport::default_for_platform().to_string(),
    };

    // Deal sessions round-robin so every worker gets within one of the
    // same share.
    let workers = config.concurrency.max(1);
    // Shedding is reachable whenever the workers can outnumber the
    // admission slots; then (and only then) connects pay the probe, and
    // a shed is an expected outcome to retry rather than an error.
    let shed_possible =
        config.addr.is_none() && config.limits.clone().normalized().max_connections < workers + 1;
    let churn = config.connections_preset;
    let base = config.sessions / workers;
    let extra = config.sessions % workers;
    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let addr = addr.clone();
            let sessions = base + usize::from(i < extra);
            let seed = config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
            let max_turns = config.max_turns;
            std::thread::spawn(move || {
                let mut stats = WorkerStats::new();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut remaining = sessions;
                let mut backoff = Duration::from_millis(5);
                let mut stalls = 0u32;
                while remaining > 0 {
                    let conn = if shed_possible {
                        match Conn::connect_probe(&addr) {
                            Ok(Some(conn)) => Some(conn),
                            Ok(None) => {
                                stats.sheds += 1;
                                None
                            }
                            Err(e) => {
                                eprintln!("jim-load: worker {i}: {e}");
                                stats.io_errors += 1;
                                None
                            }
                        }
                    } else {
                        match Conn::connect(&addr) {
                            Ok(conn) => Some(conn),
                            Err(e) => {
                                eprintln!("jim-load: worker {i}: {e}");
                                stats.io_errors += 1;
                                None
                            }
                        }
                    };
                    let Some(mut conn) = conn else {
                        stalls += 1;
                        if stalls > 400 {
                            eprintln!("jim-load: worker {i}: no admission after {stalls} tries");
                            stats.io_errors += 1;
                            break;
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(200));
                        continue;
                    };
                    stalls = 0;
                    backoff = Duration::from_millis(5);
                    while remaining > 0 {
                        match drive_session(&mut conn, &mut rng, &mut stats, max_turns) {
                            Ok(()) => {
                                remaining -= 1;
                                // The churn preset releases its slot after
                                // every session so admission keeps cycling.
                                if churn {
                                    break;
                                }
                            }
                            Err(_) => break, // connection gone; reconnect
                        }
                    }
                }
                stats
            })
        })
        .collect();

    let mut sent = vec![0u64; Op::ALL.len()];
    let mut latency: Vec<HistogramSnapshot> = (0..Op::ALL.len())
        .map(|_| HistogramSnapshot::empty())
        .collect();
    let (mut protocol_errors, mut io_errors) = (0u64, 0u64);
    let mut rejected_batches = 0u64;
    let mut sheds = 0u64;
    let mut error_samples = Vec::new();
    for handle in handles {
        let stats = handle.join().map_err(|_| "worker panicked".to_string())?;
        for (i, &n) in stats.sent.iter().enumerate() {
            sent[i] += n;
        }
        for (i, h) in stats.latency.iter().enumerate() {
            latency[i].merge(&h.snapshot());
        }
        protocol_errors += stats.protocol_errors;
        io_errors += stats.io_errors;
        rejected_batches += stats.rejected_batches;
        sheds += stats.sheds;
        for sample in stats.error_samples {
            if error_samples.len() < ERROR_SAMPLES {
                error_samples.push(sample);
            }
        }
    }
    let elapsed = start.elapsed();

    // The observer pass: one fresh connection asks for the listing and
    // the server-side snapshot. These requests count like any others —
    // the server increments before dispatch, so the snapshot includes
    // the very request that fetched it and the totals can match exactly.
    // After a shed-heavy run, lingering slots may still be draining —
    // retry until one frees (observer sheds are the server's to count,
    // not part of the client shed tally).
    let mut observer = WorkerStats::new();
    let mut conn = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match Conn::connect_probe(&addr) {
                Ok(Some(conn)) => break conn,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Ok(None) => return Err("observer connection never admitted".into()),
                Err(e) => return Err(e),
            }
        }
    };
    let _ = observer.request(&mut conn, Op::ListSessions, r#"{"op":"ListSessions"}"#)?;
    observer.sent[Op::Metrics as usize] += 1;
    let snapshot = conn.round_trip(r#"{"op":"Metrics"}"#)?;
    let snapshot = Json::parse(snapshot.trim()).map_err(|e| format!("metrics response: {e}"))?;
    for (i, &n) in observer.sent.iter().enumerate() {
        sent[i] += n;
    }
    protocol_errors += observer.protocol_errors;
    io_errors += observer.io_errors;

    let cross_check = if config.exclusive || spawned.is_some() {
        cross_check(&sent, &snapshot)
    } else {
        "skipped".to_string()
    };
    let server_store = snapshot.get("store").cloned().unwrap_or(Json::Null);
    let server_transport = snapshot.get("transport").cloned().unwrap_or(Json::Null);

    Ok(Report {
        config,
        addr,
        transport,
        elapsed,
        ops: sent.into_iter().zip(latency).collect(),
        protocol_errors,
        io_errors,
        rejected_batches,
        sheds,
        error_samples,
        cross_check,
        server_store,
        server_transport,
    })
}

/// Compare client sent counts with the server's per-op request counters.
fn cross_check(sent: &[u64], snapshot: &Json) -> String {
    let Some(ops) = snapshot.get("ops") else {
        return "mismatch: Metrics response has no ops section".into();
    };
    let mut mismatches = Vec::new();
    for (i, &op) in Op::ALL.iter().enumerate() {
        let server = ops
            .get(op.name())
            .and_then(|o| o.get("requests"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if server != sent[i] {
            mismatches.push(format!(
                "{}: client {} vs server {}",
                op.name(),
                sent[i],
                server
            ));
        }
    }
    if mismatches.is_empty() {
        "exact".into()
    } else {
        format!("mismatch: {}", mismatches.join(", "))
    }
}

/// How many times a baseline p99 may grow before `--check-baseline`
/// fails the run. Generous on purpose: load-driver latencies on shared
/// CI hosts jitter freely, and the gate exists to catch order-of-
/// magnitude regressions (a lock on the hot path, an accidental
/// per-request allocation storm), not scheduler noise.
pub const BASELINE_P99_FACTOR: u64 = 3;

/// Compare this run's per-op p99 latencies against a previously written
/// `BENCH_load.json` document. Returns one line per regression — an op
/// whose p99 exceeded [`BASELINE_P99_FACTOR`]× the baseline's — or an
/// error if the baseline has no readable ops table. Ops that either side
/// never exercised are skipped (a count of 0 measures nothing), as are
/// baseline p99s of 0 (sub-resolution measurements have no meaningful
/// multiple).
pub fn p99_regressions(report: &Report, baseline: &Json) -> Result<Vec<String>, String> {
    let ops = baseline
        .get("ops")
        .ok_or_else(|| "baseline has no ops section".to_string())?;
    let mut regressions = Vec::new();
    for (&op, (sent, lat)) in Op::ALL.iter().zip(&report.ops) {
        let Some(base) = ops.get(op.name()) else {
            continue; // op added after the baseline was written
        };
        let base_count = base.get("count").and_then(Json::as_u64).unwrap_or(0);
        let base_p99 = base.get("p99_us").and_then(Json::as_u64).unwrap_or(0);
        if *sent == 0 || base_count == 0 || base_p99 == 0 {
            continue;
        }
        let p99 = lat.p99();
        if p99 > base_p99.saturating_mul(BASELINE_P99_FACTOR) {
            regressions.push(format!(
                "{}: p99 {p99}us vs baseline {base_p99}us (over {BASELINE_P99_FACTOR}x)",
                op.name()
            ));
        }
    }
    Ok(regressions)
}

/// Parse CLI flags, run the workload, write and validate the report.
/// Exits non-zero on any error, mismatch or invalid report.
pub fn cli_main() {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("jim-load: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let out = config.out.clone();
    let report = match run(config) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("jim-load: {message}");
            std::process::exit(1);
        }
    };
    let rendered = report.to_json().render();
    if let Err(e) = std::fs::write(&out, format!("{rendered}\n")) {
        eprintln!("jim-load: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    // Validate what actually landed on disk, not what we meant to write.
    let valid = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| Json::parse(text.trim()).ok())
        .is_some_and(|json| {
            [
                "bench",
                "git_rev",
                "config",
                "ops",
                "throughput_rps",
                "errors",
            ]
            .iter()
            .all(|key| json.get(key).is_some())
        });
    if !valid {
        eprintln!("jim-load: {} failed schema validation", out.display());
        std::process::exit(1);
    }
    println!(
        "jim-load: {} requests in {:.2}s ({:.0} req/s), errors: {} protocol / {} io, \
         {} batch(es) rejected as contradictory, {} connection(s) shed at admission, \
         cross-check: {} -> {}",
        report.requests_total(),
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.protocol_errors,
        report.io_errors,
        report.rejected_batches,
        report.sheds,
        report.cross_check,
        out.display(),
    );
    if !report.clean() {
        eprintln!(
            "jim-load: run failed the gate (errors, cross-check mismatch, or an \
             admission preset that never shed)"
        );
        for sample in &report.error_samples {
            eprintln!("jim-load:   error sample: {sample}");
        }
        std::process::exit(1);
    }
    if let Some(path) = &report.config.check_baseline {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| {
                Json::parse(text.trim()).map_err(|e| format!("{} is not JSON: {e}", path.display()))
            });
        let regressions = baseline.and_then(|json| p99_regressions(&report, &json));
        match regressions {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "jim-load: no per-op p99 regressed over {BASELINE_P99_FACTOR}x vs {}",
                    path.display()
                );
            }
            Ok(regressions) => {
                eprintln!(
                    "jim-load: p99 regression gate failed against {}:",
                    path.display()
                );
                for line in &regressions {
                    eprintln!("jim-load:   {line}");
                }
                std::process::exit(1);
            }
            Err(message) => {
                eprintln!("jim-load: baseline check: {message}");
                std::process::exit(1);
            }
        }
    }
}

const USAGE: &str = "usage: jim-load [--addr HOST:PORT] [--transport threads|epoll] \
    [--concurrency N] [--sessions N] [--max-turns N] [--seed N] [--out PATH] \
    [--reactors N] [--max-connections N] [--idle-timeout SECS] \
    [--check-baseline PATH] [--exclusive] [--smoke] [--connections]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut config = Config::default();
    let mut args = args.peekable();
    let mut smoke = false;
    let mut connections = false;
    let mut explicit_exclusive = false;
    let mut parsed: Vec<(String, String)> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--connections" => connections = true,
            "--exclusive" => explicit_exclusive = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" | "--transport" | "--concurrency" | "--sessions" | "--max-turns"
            | "--seed" | "--out" | "--reactors" | "--max-connections" | "--idle-timeout"
            | "--check-baseline" => {
                let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
                parsed.push((flag, value));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (smoke, connections) {
        (true, true) => return Err("--smoke and --connections are mutually exclusive".into()),
        (true, false) => config = Config::smoke(),
        (false, true) => config = Config::connections(),
        (false, false) => {}
    }
    for (flag, value) in parsed {
        match flag.as_str() {
            "--addr" => config.addr = Some(value),
            "--transport" => config.transport = Some(value.parse()?),
            "--concurrency" => {
                config.concurrency = value
                    .parse()
                    .map_err(|_| format!("bad --concurrency {value:?}"))?
            }
            "--sessions" => {
                config.sessions = value
                    .parse()
                    .map_err(|_| format!("bad --sessions {value:?}"))?
            }
            "--max-turns" => {
                config.max_turns = value
                    .parse()
                    .map_err(|_| format!("bad --max-turns {value:?}"))?
            }
            "--seed" => config.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?,
            "--out" => config.out = PathBuf::from(value),
            "--check-baseline" => config.check_baseline = Some(PathBuf::from(value)),
            "--reactors" => {
                config.limits.reactors = value
                    .parse()
                    .map_err(|_| format!("bad --reactors {value:?}"))?
            }
            "--max-connections" => {
                config.limits.max_connections = value
                    .parse()
                    .map_err(|_| format!("bad --max-connections {value:?}"))?
            }
            // 0 disables the idle reaper, mirroring jim-serve's flag.
            "--idle-timeout" => {
                config.limits.idle_timeout = match value
                    .parse::<u64>()
                    .map_err(|_| format!("bad --idle-timeout {value:?}"))?
                {
                    0 => None,
                    secs => Some(Duration::from_secs(secs)),
                }
            }
            _ => unreachable!("filtered above"),
        }
    }
    // Driving an external server is only exclusive if the caller says so.
    config.exclusive = config.addr.is_none() || explicit_exclusive;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_presets_and_overrides() {
        let config = parse_args(
            ["--smoke", "--concurrency", "3", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(config.smoke);
        assert_eq!(config.concurrency, 3, "flags override the preset");
        assert_eq!(config.seed, 9);
        assert_eq!(config.sessions, Config::smoke().sessions);
        assert!(config.exclusive, "spawn mode is always exclusive");

        let config = parse_args(["--addr", "127.0.0.1:1"].iter().map(|s| s.to_string())).unwrap();
        assert!(!config.exclusive, "external servers may have other clients");
        assert!(parse_args(["--nope"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--seed"].iter().map(|s| s.to_string())).is_err());

        let config = parse_args(
            [
                "--connections",
                "--max-connections",
                "5",
                "--idle-timeout",
                "0",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(config.connections_preset);
        assert_eq!(
            config.limits.max_connections, 5,
            "flags override the preset"
        );
        assert!(
            config.limits.idle_timeout.is_none(),
            "0 disables the reaper"
        );
        assert!(parse_args(["--smoke", "--connections"].iter().map(|s| s.to_string())).is_err());

        let config = parse_args(
            ["--smoke", "--check-baseline", "BENCH_load.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(
            config.check_baseline,
            Some(PathBuf::from("BENCH_load.json"))
        );
    }

    /// A synthetic report whose `CreateSession` histogram holds one
    /// round trip of the given latency; every other op is untouched.
    fn report_with_create_latency(us: u64) -> Report {
        let mut ops: Vec<(u64, HistogramSnapshot)> = (0..Op::ALL.len())
            .map(|_| (0, HistogramSnapshot::empty()))
            .collect();
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(us));
        ops[Op::CreateSession as usize] = (1, h.snapshot());
        Report {
            config: Config::default(),
            addr: "test".into(),
            transport: "test".into(),
            elapsed: Duration::from_secs(1),
            ops,
            protocol_errors: 0,
            io_errors: 0,
            rejected_batches: 0,
            sheds: 0,
            error_samples: Vec::new(),
            cross_check: "skipped".into(),
            server_store: Json::Null,
            server_transport: Json::Null,
        }
    }

    #[test]
    fn p99_gate_flags_only_real_regressions() {
        let baseline = Json::parse(
            r#"{"ops":{"CreateSession":{"count":5,"p99_us":100},
                 "NextQuestion":{"count":9,"p99_us":50},
                 "Answer":{"count":0,"p99_us":0}}}"#,
        )
        .unwrap();

        // Within 3x of the 100us baseline: clean.
        let ok = report_with_create_latency(150);
        assert_eq!(
            p99_regressions(&ok, &baseline).unwrap(),
            Vec::<String>::new()
        );

        // An order of magnitude over: flagged, and only CreateSession is
        // (NextQuestion was not exercised this run, Answer never was).
        let bad = report_with_create_latency(5_000);
        let regressions = p99_regressions(&bad, &baseline).unwrap();
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(
            regressions[0].starts_with("CreateSession:"),
            "{regressions:?}"
        );

        // A baseline without an ops table is an error, not a pass.
        assert!(p99_regressions(&ok, &Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn weighted_pick_stays_in_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(pick_weighted(&mut rng, &SCENARIOS));
        }
        assert!(seen.contains("flights") && seen.contains("social"));
    }

    /// The full loop against a real spawned server: mixed traffic, merge,
    /// exact cross-check, zero errors by construction.
    #[test]
    fn tiny_run_is_clean_and_cross_checks_exactly() {
        let report = run(Config {
            concurrency: 3,
            sessions: 6,
            max_turns: 8,
            seed: 7,
            ..Config::default()
        })
        .unwrap();
        assert_eq!(report.protocol_errors, 0, "{}", report.cross_check);
        assert_eq!(report.io_errors, 0);
        assert_eq!(report.cross_check, "exact");
        assert!(report.clean());
        assert!(report.requests_total() > 0);
        let json = report.to_json();
        assert_eq!(json.get("bench").unwrap().as_str(), Some("load"));
        let creates = json.get("ops").unwrap().get("CreateSession").unwrap();
        assert_eq!(creates.get("count").unwrap().as_u64(), Some(6));
        assert!(json.get("server_store").unwrap().get("hits").is_some());
        assert_eq!(report.sheds, 0, "an uncapped run never sheds");
    }

    /// A miniature `--connections` preset: more workers than admission
    /// slots, reconnecting per session. Sheds must happen (else the cap
    /// was never exercised), admitted traffic must stay error-free, and
    /// — because shed requests never reach the server — the per-op
    /// cross-check must still be *exact*.
    #[test]
    fn capped_run_sheds_and_still_cross_checks_exactly() {
        let report = run(Config {
            concurrency: 8,
            sessions: 16,
            max_turns: 3,
            seed: 11,
            limits: TransportLimits {
                max_connections: 3,
                ..TransportLimits::default()
            },
            connections_preset: true,
            ..Config::default()
        })
        .unwrap();
        assert_eq!(report.protocol_errors, 0, "{:?}", report.error_samples);
        assert_eq!(report.io_errors, 0);
        assert_eq!(report.cross_check, "exact");
        assert!(report.sheds > 0, "8 workers over a 3-slot cap never shed");
        assert!(report.clean());
        // The server counted at least every shed the client observed
        // (it may have counted more: reset races can eat a notice).
        let server_sheds = report
            .server_transport
            .get("sheds")
            .and_then(Json::as_u64)
            .expect("transport.sheds in the snapshot");
        assert!(
            server_sheds >= report.sheds,
            "{server_sheds} < {}",
            report.sheds
        );
    }
}
