#![forbid(unsafe_code)]
fn main() {
    jim_load::cli_main();
}
