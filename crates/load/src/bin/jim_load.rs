fn main() {
    jim_load::cli_main();
}
