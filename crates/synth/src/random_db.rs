//! Parameterized random instances — the "synthetic datasets" of the
//! companion paper's experiments.
//!
//! Values are integers drawn uniformly from a configurable domain. The
//! domain size is the lever that controls the richness of the signature
//! lattice: small domains produce many accidental equalities (complex
//! instances where lookahead pays off), large domains produce sparse
//! signatures (simple instances where local strategies shine). Experiment
//! E3 sweeps exactly this knob.

use jim_relation::{DataType, Database, Relation, RelationSchema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one generated relation.
#[derive(Debug, Clone, Copy)]
pub struct RelationShape {
    /// Number of attributes.
    pub arity: usize,
    /// Number of rows.
    pub rows: usize,
}

/// Configuration of a random instance.
#[derive(Debug, Clone)]
pub struct RandomDbConfig {
    /// One entry per relation (named `r1`, `r2`, … with attributes
    /// `r1_a1`, `r1_a2`, …).
    pub relations: Vec<RelationShape>,
    /// Values are drawn uniformly from `0..domain`.
    pub domain: i64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomDbConfig {
    /// A uniform configuration: `count` relations of identical shape.
    pub fn uniform(count: usize, arity: usize, rows: usize, domain: i64, seed: u64) -> Self {
        RandomDbConfig {
            relations: vec![RelationShape { arity, rows }; count],
            domain,
            seed,
        }
    }
}

/// Generate the database.
pub fn generate(config: &RandomDbConfig) -> Database {
    assert!(config.domain > 0, "domain must be non-empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let relations = config
        .relations
        .iter()
        .enumerate()
        .map(|(i, shape)| {
            let name = format!("r{}", i + 1);
            let attrs: Vec<(String, DataType)> = (0..shape.arity)
                .map(|a| (format!("{}_a{}", name, a + 1), DataType::Int))
                .collect();
            let attr_refs: Vec<(&str, DataType)> =
                attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = RelationSchema::of(name, &attr_refs).expect("generated names unique");
            let rows = (0..shape.rows)
                .map(|_| {
                    Tuple::new(
                        (0..shape.arity)
                            .map(|_| Value::Int(rng.gen_range(0..config.domain)))
                            .collect(),
                    )
                })
                .collect();
            Relation::new(schema, rows).expect("rows match schema")
        })
        .collect();
    Database::from_relations(relations).expect("generated names unique")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::{Engine, EngineOptions};
    use jim_relation::Product;

    #[test]
    fn shape_is_respected() {
        let db = generate(&RandomDbConfig::uniform(3, 2, 7, 10, 1));
        assert_eq!(db.len(), 3);
        for (i, rel) in db.relations().iter().enumerate() {
            assert_eq!(rel.name(), format!("r{}", i + 1));
            assert_eq!(rel.schema().arity(), 2);
            assert_eq!(rel.len(), 7);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&RandomDbConfig::uniform(2, 3, 5, 4, 77));
        let b = generate(&RandomDbConfig::uniform(2, 3, 5, 4, 77));
        assert_eq!(a, b);
    }

    #[test]
    fn values_within_domain() {
        let db = generate(&RandomDbConfig::uniform(1, 4, 50, 3, 5));
        for row in db.relations()[0].rows() {
            for v in row.values() {
                match v {
                    Value::Int(x) => assert!((0..3).contains(x)),
                    other => panic!("unexpected value {other:?}"),
                }
            }
        }
    }

    #[test]
    fn small_domain_gives_richer_signatures() {
        // Identical shapes; the 2-value domain must produce at least as
        // many distinct signatures as the 1000-value domain, where most
        // signatures are empty.
        let shapes = |domain, seed| {
            let db = generate(&RandomDbConfig::uniform(2, 3, 12, domain, seed));
            let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
            let p = Product::new(rels).unwrap();
            Engine::new(p, &EngineOptions::default())
                .unwrap()
                .num_groups()
        };
        let dense = shapes(2, 3);
        let sparse = shapes(1000, 3);
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn zero_domain_rejected() {
        generate(&RandomDbConfig::uniform(1, 1, 1, 0, 0));
    }

    #[test]
    fn heterogeneous_shapes() {
        let db = generate(&RandomDbConfig {
            relations: vec![
                RelationShape { arity: 1, rows: 2 },
                RelationShape { arity: 4, rows: 9 },
            ],
            domain: 5,
            seed: 0,
        });
        assert_eq!(db.relations()[0].schema().arity(), 1);
        assert_eq!(db.relations()[1].len(), 9);
    }
}
