//! The Set® card deck — the "joining sets of pictures" demo of the paper's
//! Figure 5.
//!
//! "An example of preloaded database consists of the cards used in the game
//! Set, which vary in four features: number (one, two, or three), symbol
//! (diamond, squiggle, oval), shading (solid, striped, or open), and color
//! (red, green, or purple)." Each tagged picture is modeled as a tuple of
//! its four tags; joining the deck with itself infers predicates like
//! "select the pairs of pictures having the same color and the same
//! shading".

use jim_core::{AtomUniverse, JoinPredicate};
use jim_relation::{tup, DataType, Relation, RelationSchema};
use std::sync::Arc;

/// The four feature names, in schema order.
pub const FEATURES: [&str; 4] = ["number", "symbol", "shading", "color"];

/// Values of each feature, in `FEATURES` order.
pub const FEATURE_VALUES: [[&str; 3]; 4] = [
    ["one", "two", "three"],
    ["diamond", "squiggle", "oval"],
    ["solid", "striped", "open"],
    ["red", "green", "purple"],
];

/// The schema of the deck: `cards(number, symbol, shading, color)`.
pub fn card_schema() -> RelationSchema {
    RelationSchema::of(
        "cards",
        &[
            ("number", DataType::Text),
            ("symbol", DataType::Text),
            ("shading", DataType::Text),
            ("color", DataType::Text),
        ],
    )
    .expect("static schema")
}

/// The full 81-card deck (3⁴ feature combinations), in lexicographic order.
pub fn deck() -> Relation {
    let mut rows = Vec::with_capacity(81);
    for number in FEATURE_VALUES[0] {
        for symbol in FEATURE_VALUES[1] {
            for shading in FEATURE_VALUES[2] {
                for color in FEATURE_VALUES[3] {
                    rows.push(tup![number, symbol, shading, color]);
                }
            }
        }
    }
    Relation::new(card_schema(), rows).expect("static rows")
}

/// A smaller random sub-deck of `n` distinct cards (for quick demos; the
/// full 81×81 product has 6561 candidate pairs).
pub fn subdeck(n: usize, seed: u64) -> Relation {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let full = deck();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rows: Vec<_> = full.rows().to_vec();
    rows.shuffle(&mut rng);
    rows.truncate(n.min(81));
    Relation::new(card_schema(), rows).expect("subset of valid rows")
}

/// The goal predicate "pairs of pictures with the same `features`", e.g.
/// `same_features_goal(&u, &["color", "shading"])` is the binary join the
/// paper trains in Figure 5.
pub fn same_features_goal(universe: &Arc<AtomUniverse>, features: &[&str]) -> JoinPredicate {
    let ids = features.iter().map(|f| {
        universe
            .id_by_names((0, f), (1, f))
            .expect("feature exists in both deck occurrences")
    });
    JoinPredicate::of(universe.clone(), ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::session::run_most_informative;
    use jim_core::strategy::StrategyKind;
    use jim_core::{Engine, EngineOptions, GoalOracle};
    use jim_relation::Product;

    #[test]
    fn deck_has_81_distinct_cards() {
        let mut d = deck();
        assert_eq!(d.len(), 81);
        d.dedup();
        assert_eq!(d.len(), 81);
    }

    #[test]
    fn subdeck_is_distinct_subset() {
        let s = subdeck(10, 3);
        assert_eq!(s.len(), 10);
        let full: std::collections::HashSet<_> = deck().rows().to_vec().into_iter().collect();
        assert!(s.rows().iter().all(|r| full.contains(r)));
    }

    #[test]
    fn subdeck_larger_than_deck_truncates() {
        assert_eq!(subdeck(500, 0).len(), 81);
    }

    #[test]
    fn self_join_universe_has_16_atoms() {
        let d = deck();
        let d2 = deck();
        let p = Product::new(vec![&d, &d2]).unwrap();
        let e = Engine::new(
            p,
            &EngineOptions {
                max_product: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        // 4 attrs × 4 attrs across the two occurrences.
        assert_eq!(e.universe().len(), 16);
    }

    #[test]
    fn same_color_goal_selects_a_third_of_pairs() {
        let d = deck();
        let d2 = deck();
        let p = Product::new(vec![&d, &d2]).unwrap();
        let e = Engine::new(
            p,
            &EngineOptions {
                max_product: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        let goal = same_features_goal(e.universe(), &["color"]);
        let selected = goal.eval(e.product()).unwrap();
        // 81 × 27 pairs share a color.
        assert_eq!(selected.len(), 81 * 27);
    }

    #[test]
    fn figure5_inference_same_color_and_shading() {
        // The paper's Figure 5 goal on a sub-deck (for test speed).
        let d = subdeck(20, 7);
        let d2 = subdeck(20, 7);
        let p = Product::new(vec![&d, &d2]).unwrap();
        let engine = Engine::new(p, &EngineOptions::default()).unwrap();
        let goal = same_features_goal(engine.universe(), &["color", "shading"]);
        let mut oracle = GoalOracle::new(goal.clone());
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        let out = run_most_informative(engine, strategy.as_mut(), &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(out
            .inferred
            .instance_equivalent(&goal, out.engine.product())
            .unwrap());
        // Minimal interactions: far fewer than the 400 candidate pairs.
        assert!(out.interactions < 40, "{} interactions", out.interactions);
    }
}
