//! A social-graph workload: multi-hop self-joins over a single edge
//! relation.
//!
//! The paper's instances join *different* relations; real exploration
//! sessions just as often join a relation **with itself** — "who follows
//! someone who follows X?" over one `follows(src, dst)` edge table. This
//! module generates such a graph and the two natural inference goals over
//! its self-join `follows × follows`:
//!
//! * [`two_hop_goal`] — `r1.dst ≍ r2.src`: paths of length two
//!   (follows-of-follows), the canonical multi-hop join;
//! * [`mutual_goal`] — `r1.dst ≍ r2.src ∧ r1.src ≍ r2.dst`: a **cyclic**
//!   join goal, selecting mutual-follow pairs (2-cycles in the graph).
//!
//! Both goals are satisfiable by construction: the generated graph always
//! contains the forced edges `0→1→2` (a two-hop witness) and `3⇄4` (a
//! mutual pair), on top of `extra` seeded random edges. The graph is also
//! guaranteed to contain a *non*-witness for each goal, so neither goal
//! degenerates to "everything" — the inference session has something to
//! learn.

use jim_core::{AtomUniverse, JoinPredicate};
use jim_relation::{DataType, Relation, RelationSchema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The `follows(src, dst)` edge relation over nodes `0..nodes`: the
/// forced witness edges (`0→1`, `1→2`, `3→4`, `4→3`) plus `extra` seeded
/// random distinct non-self edges. Edges are deduplicated and sorted, so
/// equal parameters build the identical relation.
pub fn follows(nodes: i64, extra: usize, seed: u64) -> Relation {
    assert!(nodes >= 5, "the forced witness edges need nodes 0..=4");
    let mut edges: Vec<(i64, i64)> = vec![(0, 1), (1, 2), (3, 4), (4, 3)];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attempts = 0;
    while edges.len() < 4 + extra && attempts < extra * 20 {
        attempts += 1;
        let src = rng.gen_range(0..nodes);
        let dst = rng.gen_range(0..nodes);
        if src != dst && !edges.contains(&(src, dst)) {
            edges.push((src, dst));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let rows = edges
        .into_iter()
        .map(|(src, dst)| Tuple::new(vec![Value::Int(src), Value::Int(dst)]))
        .collect();
    Relation::new(
        RelationSchema::of("follows", &[("src", DataType::Int), ("dst", DataType::Int)])
            .expect("static schema"),
        rows,
    )
    .expect("generated rows match the schema")
}

/// The scenario instance: 12 nodes, 8 random edges on top of the forced
/// witnesses (so the self-join product stays interactively small).
pub fn default_follows() -> Relation {
    follows(12, 8, 2014)
}

/// An event-log-shaped edge stream: `events` follow events over nodes
/// `0..nodes`, **duplicates preserved** — the shape real activity logs
/// have, where the same hot pairs recur over and over. The distinct-row
/// count is bounded by `nodes · (nodes − 1)` no matter how long the log
/// runs, so factorized construction over the self-join compresses the
/// `events²` product tuples into a block structure that stops growing
/// once the log saturates the edge domain. The forced witness edges of
/// [`follows`] lead the log, keeping [`two_hop_goal`] and [`mutual_goal`]
/// satisfiable at every length.
pub fn follows_log(nodes: i64, events: usize, seed: u64) -> Relation {
    assert!(nodes >= 5, "the forced witness edges need nodes 0..=4");
    assert!(
        events >= 4,
        "the log starts with the 4 forced witness edges"
    );
    let mut edges: Vec<(i64, i64)> = Vec::with_capacity(events);
    edges.extend([(0, 1), (1, 2), (3, 4), (4, 3)]);
    let mut rng = StdRng::seed_from_u64(seed);
    while edges.len() < events {
        let src = rng.gen_range(0..nodes);
        let dst = rng.gen_range(0..nodes);
        if src != dst {
            edges.push((src, dst));
        }
    }
    let rows = edges
        .into_iter()
        .map(|(src, dst)| Tuple::new(vec![Value::Int(src), Value::Int(dst)]))
        .collect();
    Relation::new(
        RelationSchema::of("follows", &[("src", DataType::Int), ("dst", DataType::Int)])
            .expect("static schema"),
        rows,
    )
    .expect("generated rows match the schema")
}

/// `r1.dst ≍ r2.src` over `follows × follows`: the two-hop
/// (follows-of-follows) paths.
pub fn two_hop_goal(universe: &Arc<AtomUniverse>) -> JoinPredicate {
    let hop = universe
        .id_by_names((0, "dst"), (1, "src"))
        .expect("dst/src atom exists on the self-join");
    JoinPredicate::of(universe.clone(), [hop])
}

/// `r1.dst ≍ r2.src ∧ r1.src ≍ r2.dst`: the cyclic goal — mutual-follow
/// pairs, i.e. 2-cycles of the graph.
pub fn mutual_goal(universe: &Arc<AtomUniverse>) -> JoinPredicate {
    let hop = universe
        .id_by_names((0, "dst"), (1, "src"))
        .expect("dst/src atom exists on the self-join");
    let back = universe
        .id_by_names((0, "src"), (1, "dst"))
        .expect("src/dst atom exists on the self-join");
    JoinPredicate::of(universe.clone(), [hop, back])
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::session::run_most_informative;
    use jim_core::{Engine, EngineOptions, GoalOracle, StrategyKind};
    use jim_relation::{IntoSharedRelation, Product};

    fn self_join() -> Product {
        let shared = default_follows().into_shared();
        Product::new(vec![shared.clone(), shared]).unwrap()
    }

    #[test]
    fn generation_is_deterministic_and_forced_edges_present() {
        let a = follows(12, 8, 7);
        let b = follows(12, 8, 7);
        assert_eq!(a.len(), b.len());
        let rows: Vec<String> = a.rows().iter().map(|t| t.to_string()).collect();
        for forced in ["(0, 1)", "(1, 2)", "(3, 4)", "(4, 3)"] {
            assert!(rows.contains(&forced.to_string()), "missing {forced}");
        }
        assert!(a.len() >= 4 && a.len() <= 12);
    }

    #[test]
    fn follows_log_is_deterministic_duplicate_heavy_and_inferable() {
        let a = follows_log(8, 5_000, 3);
        let b = follows_log(8, 5_000, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        let rows: Vec<String> = a.rows().iter().map(|t| t.to_string()).collect();
        for forced in ["(0, 1)", "(1, 2)", "(3, 4)", "(4, 3)"] {
            assert!(rows.contains(&forced.to_string()), "missing {forced}");
        }
        // 8 nodes admit at most 56 distinct non-self edges, so a 5000-event
        // log necessarily repeats rows — the shape the generator exists for.
        let distinct: std::collections::HashSet<&String> = rows.iter().collect();
        assert!(distinct.len() <= 56);

        // The log self-join factorizes, and both goals stay satisfiable.
        let shared = follows_log(8, 200, 3).into_shared();
        let p = Product::new(vec![shared.clone(), shared]).unwrap();
        let e = Engine::from_factorized(p, &EngineOptions::default()).unwrap();
        assert!(e.is_factorized());
        assert!(!two_hop_goal(e.universe())
            .eval(e.product())
            .unwrap()
            .is_empty());
        assert!(!mutual_goal(e.universe())
            .eval(e.product())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn both_goals_are_satisfiable_and_non_trivial() {
        let p = self_join();
        let size = p.size();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let two_hop = two_hop_goal(e.universe()).eval(e.product()).unwrap();
        let mutual = mutual_goal(e.universe()).eval(e.product()).unwrap();
        assert!(!two_hop.is_empty(), "0→1→2 is a two-hop witness");
        assert!(!mutual.is_empty(), "3⇄4 is a mutual witness");
        assert!((two_hop.len() as u64) < size, "not everything is two-hop");
        assert!(mutual.len() < two_hop.len(), "the cycle is strictly rarer");
    }

    #[test]
    fn mutual_goal_selects_exactly_the_two_cycles() {
        let p = self_join();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let selected = mutual_goal(e.universe()).eval(e.product()).unwrap();
        for &id in &selected {
            let t = e.product().tuple(id).unwrap();
            let (s1, d1, s2, d2) = match (&t[0], &t[1], &t[2], &t[3]) {
                (Value::Int(a), Value::Int(b), Value::Int(c), Value::Int(d)) => (a, b, c, d),
                other => panic!("int columns expected, got {other:?}"),
            };
            assert_eq!((s1, d1), (d2, s2), "selected pair must be a 2-cycle");
        }
        // 3⇄4 appears in both orders, and every self-paired mutual edge
        // (r1 = r2 reversed or identical loops) satisfies the predicate.
        assert!(selected.len() >= 2);
    }

    #[test]
    fn sessions_over_both_goals_resolve_to_them() {
        for goal_of in [two_hop_goal, mutual_goal] as [fn(&Arc<AtomUniverse>) -> JoinPredicate; 2] {
            let e = Engine::new(self_join(), &EngineOptions::default()).unwrap();
            let goal = goal_of(e.universe());
            let mut oracle = GoalOracle::new(goal.clone());
            let mut strategy = StrategyKind::LookaheadMinPrune.build();
            let outcome = run_most_informative(e, strategy.as_mut(), &mut oracle).unwrap();
            assert!(outcome.engine.is_resolved());
            // Extensional equivalence is the honest check: distinct atom
            // sets can select the same rows on this instance.
            assert_eq!(
                outcome
                    .engine
                    .result()
                    .eval(outcome.engine.product())
                    .unwrap(),
                goal.eval(outcome.engine.product()).unwrap(),
                "inferred predicate must select the goal's rows"
            );
        }
    }
}
