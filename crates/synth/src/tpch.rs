//! A TPC-H-shaped data generator.
//!
//! The companion paper's experiments run on TPC-H; `dbgen` and its data are
//! not available offline, so this generator reproduces the *shape* that
//! matters for join inference: the TPC-H schema core (region / nation /
//! customer / orders / lineitem / supplier / part), its key→foreign-key
//! structure, and uniform value distributions. Interaction counts depend on
//! the signature structure induced by key overlaps, not on the exact TPC-H
//! strings — see DESIGN.md §5 for the substitution argument.

use jim_relation::{DataType, Database, Relation, RelationSchema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor: row counts are `base × scale` (scale 1.0 ≈ a few
    /// hundred rows — sized for interactive-inference experiments, where
    /// the *product* of 2–3 relations is the working set).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 1.0,
            seed: 42,
        }
    }
}

/// Base row counts at scale 1.0.
const BASE_REGION: usize = 5;
const BASE_NATION: usize = 25;
const BASE_SUPPLIER: usize = 10;
const BASE_CUSTOMER: usize = 30;
const BASE_ORDERS: usize = 45;
const BASE_LINEITEM: usize = 120;
const BASE_PART: usize = 20;

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const STATUSES: [&str; 3] = ["O", "F", "P"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 4] = ["ECONOMY", "STANDARD", "PROMO", "LARGE"];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Generate the database.
pub fn generate(config: TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = |base: usize| ((base as f64 * config.scale).round() as usize).max(1);

    let n_region = n(BASE_REGION).min(REGIONS.len());
    let n_nation = n(BASE_NATION);
    let n_supplier = n(BASE_SUPPLIER);
    let n_customer = n(BASE_CUSTOMER);
    let n_orders = n(BASE_ORDERS);
    let n_lineitem = n(BASE_LINEITEM);
    let n_part = n(BASE_PART);

    let region = build(
        RelationSchema::of(
            "region",
            &[("r_regionkey", DataType::Int), ("r_name", DataType::Text)],
        ),
        (0..n_region).map(|i| vec![Value::Int(i as i64), Value::text(REGIONS[i])]),
    );

    let nation = build(
        RelationSchema::of(
            "nation",
            &[
                ("n_nationkey", DataType::Int),
                ("n_regionkey", DataType::Int),
                ("n_name", DataType::Text),
            ],
        ),
        (0..n_nation).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_region as i64)),
                Value::text(format!("NATION_{i:02}")),
            ]
        }),
    );

    let supplier = build(
        RelationSchema::of(
            "supplier",
            &[
                ("s_suppkey", DataType::Int),
                ("s_nationkey", DataType::Int),
                ("s_name", DataType::Text),
            ],
        ),
        (0..n_supplier).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_nation as i64)),
                Value::text(format!("Supplier#{i:03}")),
            ]
        }),
    );

    let customer = build(
        RelationSchema::of(
            "customer",
            &[
                ("c_custkey", DataType::Int),
                ("c_nationkey", DataType::Int),
                ("c_name", DataType::Text),
                ("c_mktsegment", DataType::Text),
            ],
        ),
        (0..n_customer).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_nation as i64)),
                Value::text(format!("Customer#{i:03}")),
                Value::text(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ]
        }),
    );

    let orders = build(
        RelationSchema::of(
            "orders",
            &[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderstatus", DataType::Text),
                ("o_orderpriority", DataType::Text),
            ],
        ),
        (0..n_orders).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_customer as i64)),
                Value::text(STATUSES[rng.gen_range(0..STATUSES.len())]),
                Value::text(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            ]
        }),
    );

    let part = build(
        RelationSchema::of(
            "part",
            &[
                ("p_partkey", DataType::Int),
                ("p_brand", DataType::Text),
                ("p_type", DataType::Text),
            ],
        ),
        (0..n_part).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::text(BRANDS[rng.gen_range(0..BRANDS.len())]),
                Value::text(TYPES[rng.gen_range(0..TYPES.len())]),
            ]
        }),
    );

    let lineitem = build(
        RelationSchema::of(
            "lineitem",
            &[
                ("l_orderkey", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_suppkey", DataType::Int),
                ("l_quantity", DataType::Int),
            ],
        ),
        (0..n_lineitem).map(|_| {
            vec![
                Value::Int(rng.gen_range(0..n_orders as i64)),
                Value::Int(rng.gen_range(0..n_part as i64)),
                Value::Int(rng.gen_range(0..n_supplier as i64)),
                Value::Int(rng.gen_range(1..=50)),
            ]
        }),
    );

    Database::from_relations(vec![
        region, nation, supplier, customer, orders, part, lineitem,
    ])
    .expect("distinct relation names")
}

fn build(
    schema: jim_relation::Result<RelationSchema>,
    rows: impl Iterator<Item = Vec<Value>>,
) -> Relation {
    Relation::new(
        schema.expect("static schema"),
        rows.map(Tuple::new).collect(),
    )
    .expect("generated rows match schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::session::run_most_informative;
    use jim_core::strategy::StrategyKind;
    use jim_core::{Engine, EngineOptions, GoalOracle, JoinPredicate};
    use jim_relation::Product;

    #[test]
    fn default_scale_row_counts() {
        let db = generate(TpchConfig::default());
        assert_eq!(db.get("region").unwrap().len(), 5);
        assert_eq!(db.get("nation").unwrap().len(), 25);
        assert_eq!(db.get("customer").unwrap().len(), 30);
        assert_eq!(db.get("orders").unwrap().len(), 45);
        assert_eq!(db.get("lineitem").unwrap().len(), 120);
    }

    #[test]
    fn scaling_changes_row_counts() {
        let db = generate(TpchConfig {
            scale: 2.0,
            seed: 1,
        });
        assert_eq!(db.get("customer").unwrap().len(), 60);
        assert_eq!(db.get("lineitem").unwrap().len(), 240);
        // Region is capped by the name pool.
        assert_eq!(db.get("region").unwrap().len(), 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(TpchConfig {
            scale: 1.0,
            seed: 9,
        });
        let b = generate(TpchConfig {
            scale: 1.0,
            seed: 9,
        });
        assert_eq!(a, b);
        let c = generate(TpchConfig {
            scale: 1.0,
            seed: 10,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn foreign_keys_resolve() {
        let db = generate(TpchConfig::default());
        let orders = db.get("orders").unwrap();
        let n_customers = db.get("customer").unwrap().len() as i64;
        for row in orders.rows() {
            if let jim_relation::Value::Int(ck) = row[1] {
                assert!((0..n_customers).contains(&ck));
            } else {
                panic!("o_custkey must be an int");
            }
        }
    }

    #[test]
    fn customer_orders_join_is_inferable() {
        let db = generate(TpchConfig::default());
        let (rels, _) = db.join_view(&["customer", "orders"]).unwrap();
        let p = Product::new(rels).unwrap();
        let engine = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = engine.universe().clone();
        let fk = u.id_by_names((0, "c_custkey"), (1, "o_custkey")).unwrap();
        let goal = JoinPredicate::of(u, [fk]);
        let mut oracle = GoalOracle::new(goal.clone());
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        let out = run_most_informative(engine, strategy.as_mut(), &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(out
            .inferred
            .instance_equivalent(&goal, out.engine.product())
            .unwrap());
        // 30 × 45 = 1350 candidate tuples; a handful of questions suffice.
        assert!(out.interactions <= 30, "{} interactions", out.interactions);
    }
}
