//! # `jim-synth` — workloads for the JIM reproduction
//!
//! Every dataset the paper's demonstration and experiments touch:
//!
//! * [`flights`] — the motivating example of Figure 1, verbatim: four
//!   flights, three hotels, queries `Q1`/`Q2`, and the §2 walkthrough
//!   labels.
//! * [`setgame`] — the 81-card Set deck of Figure 5 ("joining sets of
//!   pictures"), modeled as tag tuples, with "same features" goals.
//! * [`tpch`] — a TPC-H-shaped generator standing in for the benchmark
//!   data of the companion paper's experiments (see DESIGN.md §5).
//! * [`random_db`] — parameterized random instances whose domain size
//!   controls signature-lattice richness (the complexity knob of
//!   experiment E3).
//! * [`goals`] — satisfiable goal queries of controlled complexity.
//! * [`social`] — a `follows(src, dst)` social graph for multi-hop
//!   self-joins: a follows-of-follows goal and a cyclic (mutual-follow)
//!   goal over `follows × follows`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flights;
pub mod goals;
pub mod random_db;
pub mod setgame;
pub mod social;
pub mod tpch;
