//! The paper's motivating example (Figure 1): a travel agency building
//! flight&hotel packages from a denormalized table with no metadata.
//!
//! Everything here is verbatim from the paper: four flights, three hotels,
//! the twelve product tuples, the queries `Q1`/`Q2`, and the labels of the
//! §2 walkthrough.

use jim_core::{AtomUniverse, JoinPredicate, Label};
use jim_relation::{tup, DataType, Database, ProductId, Relation, RelationSchema, Tuple, Value};
use std::sync::Arc;

/// The flights relation: `(From, To, Airline)`, four rows.
pub fn flights() -> Relation {
    Relation::new(
        RelationSchema::of(
            "flights",
            &[
                ("From", DataType::Text),
                ("To", DataType::Text),
                ("Airline", DataType::Text),
            ],
        )
        .expect("static schema"),
        vec![
            tup!["Paris", "Lille", "AF"],
            tup!["Lille", "NYC", "AA"],
            tup!["NYC", "Paris", "AA"],
            tup!["Paris", "NYC", "AF"],
        ],
    )
    .expect("static rows")
}

/// The hotels relation: `(City, Discount)`, three rows. The Paris hotel's
/// `None` discount is a literal string in the paper's Figure 1 — here it is
/// an SQL NULL, which no airline code ever equals (same semantics).
pub fn hotels() -> Relation {
    let paris_no_discount = Tuple::new(vec![Value::text("Paris"), Value::Null]);
    Relation::new(
        RelationSchema::of(
            "hotels",
            &[("City", DataType::Text), ("Discount", DataType::Text)],
        )
        .expect("static schema"),
        vec![tup!["NYC", "AA"], paris_no_discount, tup!["Lille", "AF"]],
    )
    .expect("static rows")
}

/// Both relations as a database.
pub fn database() -> Database {
    Database::from_relations(vec![flights(), hotels()]).expect("distinct names")
}

/// Convert the paper's 1-based tuple number (Figure 1 rows (1)–(12)) to a
/// product id (rank). The product enumerates the last relation fastest,
/// matching the figure's layout exactly.
pub fn paper_tuple(k: u64) -> ProductId {
    assert!((1..=12).contains(&k), "Figure 1 has tuples (1)..(12)");
    ProductId(k - 1)
}

/// `Q1: To ≍ City` — packages with a flight and a stay in the destination.
pub fn q1(universe: &Arc<AtomUniverse>) -> JoinPredicate {
    let tc = universe
        .id_by_names((0, "To"), (1, "City"))
        .expect("atom exists");
    JoinPredicate::of(universe.clone(), [tc])
}

/// `Q2: To ≍ City ∧ Airline ≍ Discount` — packages combined in a way
/// allowing a discount.
pub fn q2(universe: &Arc<AtomUniverse>) -> JoinPredicate {
    let tc = universe
        .id_by_names((0, "To"), (1, "City"))
        .expect("atom exists");
    let ad = universe
        .id_by_names((0, "Airline"), (1, "Discount"))
        .expect("atom exists");
    JoinPredicate::of(universe.clone(), [tc, ad])
}

/// The labels of the paper's walkthrough: (3) is positive, (7) and (8) are
/// negative — after which `Q2` is the unique consistent predicate.
pub fn walkthrough_labels() -> Vec<(ProductId, Label)> {
    vec![
        (paper_tuple(3), Label::Positive),
        (paper_tuple(7), Label::Negative),
        (paper_tuple(8), Label::Negative),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::{Engine, EngineOptions};
    use jim_relation::Product;

    #[test]
    fn figure1_has_twelve_product_tuples() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        assert_eq!(p.size(), 12);
    }

    #[test]
    fn paper_tuple_3_is_paris_lille_af_lille_af() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let t = p.tuple(paper_tuple(3)).unwrap();
        assert_eq!(t.to_string(), "(Paris, Lille, AF, Lille, AF)");
    }

    #[test]
    #[should_panic(expected = "Figure 1")]
    fn paper_tuple_out_of_range() {
        paper_tuple(13);
    }

    #[test]
    fn q1_and_q2_select_figure1_rows() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe();
        let sel1: Vec<u64> = q1(u)
            .eval(e.product())
            .unwrap()
            .iter()
            .map(|i| i.0)
            .collect();
        let sel2: Vec<u64> = q2(u)
            .eval(e.product())
            .unwrap()
            .iter()
            .map(|i| i.0)
            .collect();
        assert_eq!(sel1, vec![2, 3, 7, 9]); // paper tuples (3),(4),(8),(10)
        assert_eq!(sel2, vec![2, 3]); // paper tuples (3),(4)
    }

    #[test]
    fn walkthrough_labels_determine_q2() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        for (id, label) in walkthrough_labels() {
            e.label(id, label).unwrap();
        }
        assert!(e.is_resolved());
        assert_eq!(e.result(), q2(e.universe()));
    }

    #[test]
    fn database_catalogs_both() {
        let db = database();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get("flights").unwrap().len(), 4);
        assert_eq!(db.get("hotels").unwrap().len(), 3);
    }

    #[test]
    fn null_discount_not_equal_to_any_airline() {
        // The NULL Paris discount must never satisfy Airline ≍ Discount.
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        for (_, t) in e.product().iter() {
            if t[4].is_null() {
                assert!(!u.signature(&t).contains(ad.index()));
            }
        }
    }
}
