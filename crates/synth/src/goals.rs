//! Goal-query generation with controlled complexity.
//!
//! The companion paper's experiments vary the *complexity of the goal
//! query* (its number of equality atoms). A random atom set is usually
//! unsatisfiable on the instance (it would be inferred through negatives
//! only); the experiments instead want goals with at least one positive
//! witness, so the generator samples goals **from the signatures actually
//! present** in the product.

use jim_core::{AtomId, JoinPredicate};
use jim_core::{Engine, EngineOptions};
use jim_relation::Product;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Draw up to `count` distinct goal predicates with exactly `atoms` atoms,
/// each satisfiable on the instance (some product tuple witnesses it).
///
/// Returns fewer than `count` when the instance does not carry enough
/// distinct satisfiable atom combinations.
pub fn satisfiable_goals(
    product: &Product,
    atoms: usize,
    count: usize,
    seed: u64,
) -> Vec<JoinPredicate> {
    let engine = match Engine::new(product.clone(), &EngineOptions::default()) {
        Ok(e) => e,
        Err(_) => return Vec::new(),
    };
    let universe = engine.universe().clone();
    let mut rng = StdRng::seed_from_u64(seed);

    // Candidate signatures with at least `atoms` atoms.
    let mut witnesses: Vec<Vec<usize>> = engine
        .candidates()
        .iter()
        .map(|c| c.restricted_sig.iter().collect::<Vec<usize>>())
        .filter(|s| s.len() >= atoms)
        .collect();
    // Also the certain-positive signatures (full ones) qualify as witnesses.
    witnesses.shuffle(&mut rng);

    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 50 && !witnesses.is_empty() {
        attempts += 1;
        let w = witnesses[attempts % witnesses.len()].clone();
        let mut picked = w;
        picked.shuffle(&mut rng);
        picked.truncate(atoms);
        picked.sort_unstable();
        if !seen.insert(picked.clone()) {
            continue;
        }
        let goal = JoinPredicate::of(
            universe.clone(),
            picked.into_iter().map(|i| AtomId(i as u32)),
        );
        out.push(goal);
    }
    out
}

/// A single satisfiable goal (convenience): the first of
/// [`satisfiable_goals`], if any.
pub fn satisfiable_goal(product: &Product, atoms: usize, seed: u64) -> Option<JoinPredicate> {
    satisfiable_goals(product, atoms, 1, seed)
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_db::{generate, RandomDbConfig};

    #[test]
    fn goals_have_requested_arity_and_witnesses() {
        let db = generate(&RandomDbConfig::uniform(2, 3, 15, 3, 11));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        for arity in 1..=3 {
            let goals = satisfiable_goals(&p, arity, 5, 1);
            assert!(!goals.is_empty(), "no goals of arity {arity}");
            for g in &goals {
                assert_eq!(g.arity(), arity);
                // Witness: at least one product tuple is selected.
                assert!(
                    !g.eval(&p).unwrap().is_empty(),
                    "goal {g} has no positive witness"
                );
            }
        }
    }

    #[test]
    fn goals_are_distinct() {
        let db = generate(&RandomDbConfig::uniform(2, 3, 15, 2, 5));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        let goals = satisfiable_goals(&p, 2, 8, 3);
        let set: std::collections::HashSet<String> = goals.iter().map(|g| g.to_string()).collect();
        assert_eq!(set.len(), goals.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let db = generate(&RandomDbConfig::uniform(2, 2, 10, 3, 8));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        let a = satisfiable_goals(&p, 1, 4, 9);
        let b = satisfiable_goals(&p, 1, 4, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn impossible_arity_returns_empty() {
        let db = generate(&RandomDbConfig::uniform(2, 1, 4, 1000, 2));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        // One atom exists at most; arity 5 is impossible.
        assert!(satisfiable_goals(&p, 5, 3, 1).is_empty());
    }

    #[test]
    fn single_goal_convenience() {
        let db = generate(&RandomDbConfig::uniform(2, 3, 15, 3, 11));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        assert!(satisfiable_goal(&p, 1, 0).is_some());
    }
}
