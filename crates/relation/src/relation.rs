//! Relations: a schema plus a bag of tuples, with schema-checked insertion.

use crate::error::{RelationError, Result};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A relation instance.
///
/// Stored as a `Vec<Tuple>` (bag semantics; [`Relation::dedup`] converts to
/// set semantics). Insertion checks arity and — unless the value is `Null` —
/// the declared attribute types, so every downstream consumer can trust the
/// shape of the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: RelationSchema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn empty(schema: RelationSchema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation and insert all `rows`, validating each.
    pub fn new(schema: RelationSchema, rows: Vec<Tuple>) -> Result<Self> {
        let mut rel = Relation::empty(schema);
        rel.reserve(rows.len());
        for row in rows {
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Pre-allocate room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// Validate a tuple against the schema without inserting it.
    pub fn check(&self, row: &Tuple) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.schema.arity(),
                actual: row.arity(),
            });
        }
        for (attr, value) in self.schema.attributes().iter().zip(row.values()) {
            if let Some(t) = value.data_type() {
                if t != attr.dtype {
                    return Err(RelationError::TypeMismatch {
                        relation: self.name().to_string(),
                        attribute: attr.name.clone(),
                        expected: attr.dtype.name(),
                        actual: value.type_name(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Insert a row after validating it.
    pub fn push(&mut self, row: Tuple) -> Result<()> {
        self.check(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Row at index `i`, if any.
    pub fn row(&self, i: usize) -> Option<&Tuple> {
        self.rows.get(i)
    }

    /// Remove duplicate rows (order-preserving; keeps first occurrence).
    pub fn dedup(&mut self) {
        let mut seen: HashSet<Tuple> = HashSet::with_capacity(self.rows.len());
        self.rows.retain(|t| seen.insert(t.clone()));
    }

    /// Sort rows lexicographically (deterministic output for printing and
    /// comparison in tests).
    pub fn sort(&mut self) {
        self.rows.sort();
    }

    /// Project onto the named attributes, returning a new relation called
    /// `name`. Attribute order in the output follows `attributes`.
    pub fn project(&self, name: impl Into<String>, attributes: &[&str]) -> Result<Relation> {
        let positions: Vec<usize> = attributes
            .iter()
            .map(|a| self.schema.index_of(a))
            .collect::<Result<_>>()?;
        let out_schema = RelationSchema::new(
            name,
            positions
                .iter()
                .map(|&i| self.schema.attributes()[i].clone())
                .collect(),
        )?;
        let rows = self.rows.iter().map(|t| t.project(&positions)).collect();
        Relation::new(out_schema, rows)
    }

    /// Keep only rows satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&Tuple) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Distinct values appearing in the named attribute.
    pub fn active_domain(&self, attribute: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(attribute)?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            if seen.insert(row[idx].clone()) {
                out.push(row[idx].clone());
            }
        }
        Ok(out)
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::DataType;

    fn flights_schema() -> RelationSchema {
        RelationSchema::of(
            "flights",
            &[
                ("From", DataType::Text),
                ("To", DataType::Text),
                ("Airline", DataType::Text),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::empty(flights_schema());
        assert!(r.push(tup!["Paris", "Lille", "AF"]).is_ok());
        let err = r.push(tup!["Paris", "Lille"]);
        assert!(matches!(err, Err(RelationError::ArityMismatch { .. })));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn push_validates_types() {
        let mut r = Relation::empty(flights_schema());
        let err = r.push(tup!["Paris", 42, "AF"]);
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn null_is_admitted_by_any_type() {
        let mut r = Relation::empty(flights_schema());
        assert!(r
            .push(Tuple::new(vec![Value::Null, Value::text("x"), Value::Null]))
            .is_ok());
    }

    #[test]
    fn dedup_removes_duplicates_keeping_order() {
        let mut r = Relation::new(
            flights_schema(),
            vec![
                tup!["a", "b", "c"],
                tup!["x", "y", "z"],
                tup!["a", "b", "c"],
            ],
        )
        .unwrap();
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0).unwrap(), &tup!["a", "b", "c"]);
        assert_eq!(r.row(1).unwrap(), &tup!["x", "y", "z"]);
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = Relation::new(flights_schema(), vec![tup!["Paris", "Lille", "AF"]]).unwrap();
        let p = r.project("routes", &["To", "From"]).unwrap();
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.row(0).unwrap(), &tup!["Lille", "Paris"]);
        assert!(r.project("x", &["Nope"]).is_err());
    }

    #[test]
    fn filter_keeps_matching() {
        let r = Relation::new(
            flights_schema(),
            vec![tup!["Paris", "Lille", "AF"], tup!["NYC", "Paris", "AA"]],
        )
        .unwrap();
        let f = r.filter(|t| t[2] == Value::text("AF"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn active_domain_distinct_in_order() {
        let r = Relation::new(
            flights_schema(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Paris", "NYC", "AF"],
                tup!["Lille", "NYC", "AA"],
            ],
        )
        .unwrap();
        let dom = r.active_domain("From").unwrap();
        assert_eq!(dom, vec![Value::text("Paris"), Value::text("Lille")]);
    }

    #[test]
    fn sort_orders_rows() {
        let mut r = Relation::new(
            flights_schema(),
            vec![tup!["b", "b", "b"], tup!["a", "a", "a"]],
        )
        .unwrap();
        r.sort();
        assert_eq!(r.row(0).unwrap(), &tup!["a", "a", "a"]);
    }

    #[test]
    fn iteration() {
        let r = Relation::new(flights_schema(), vec![tup!["a", "b", "c"]]).unwrap();
        assert_eq!(r.iter().count(), 1);
        assert_eq!((&r).into_iter().count(), 1);
    }
}
