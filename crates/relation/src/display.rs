//! ASCII table rendering for terminal sessions, mirroring the tabular UI of
//! the paper's Figures 1 and 3.

use crate::product::{Product, ProductId};
use crate::relation::Relation;

/// Render a table with a header row and unicode-free ASCII rules.
///
/// Column widths fit the widest cell. `marks`, when provided, prefixes each
/// row (used by sessions to show `+` / `-` / grayed-out markers).
pub fn ascii_table(headers: &[String], rows: &[Vec<String>], marks: Option<&[String]>) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mark_width = marks
        .map(|ms| ms.iter().map(|m| m.chars().count()).max().unwrap_or(0))
        .unwrap_or(0);

    let mut out = String::new();
    let rule = |out: &mut String| {
        if mark_width > 0 {
            out.push_str(&"-".repeat(mark_width + 1));
        }
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };

    rule(&mut out);
    if mark_width > 0 {
        out.push_str(&" ".repeat(mark_width + 1));
    }
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {:<width$} |", h, width = w));
    }
    out.push('\n');
    rule(&mut out);
    for (r, row) in rows.iter().enumerate() {
        if let Some(ms) = marks {
            let m = ms.get(r).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{:<width$} ", m, width = mark_width));
        }
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {:<width$} |", cell, width = w));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

/// Render a relation as an ASCII table.
pub fn relation_table(rel: &Relation) -> String {
    let headers: Vec<String> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let rows: Vec<Vec<String>> = rel
        .rows()
        .iter()
        .map(|t| t.values().iter().map(|v| v.to_string()).collect())
        .collect();
    ascii_table(&headers, &rows, None)
}

/// Render selected product tuples (by id) as an ASCII table with qualified
/// headers and per-row marks — the paper's Figure 1 layout.
pub fn product_table(product: &Product, ids: &[ProductId], marks: Option<&[String]>) -> String {
    let schema = product.schema();
    let headers: Vec<String> = schema
        .attrs()
        .map(|a| schema.qualified_name(a).expect("attr in range"))
        .collect();
    let rows: Vec<Vec<String>> = ids
        .iter()
        .map(|&id| {
            product
                .tuple(id)
                .expect("id in range")
                .values()
                .iter()
                .map(|v| v.to_string())
                .collect()
        })
        .collect();
    ascii_table(&headers, &rows, marks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::DataType;

    fn rel() -> Relation {
        Relation::new(
            RelationSchema::of("t", &[("city", DataType::Text), ("n", DataType::Int)]).unwrap(),
            vec![tup!["Paris", 1], tup!["Lille", 22]],
        )
        .unwrap()
    }

    #[test]
    fn table_has_ruled_header_and_rows() {
        let s = relation_table(&rel());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6); // rule, header, rule, 2 rows, rule
        assert!(lines[1].contains("city"));
        assert!(lines[3].contains("Paris"));
        assert!(lines[4].contains("22"));
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn marks_column_prefixes_rows() {
        let headers = vec!["a".to_string()];
        let rows = vec![vec!["x".to_string()], vec!["y".to_string()]];
        let marks = vec!["+".to_string(), "-".to_string()];
        let s = ascii_table(&headers, &rows, Some(&marks));
        assert!(s.lines().any(|l| l.starts_with("+ |")));
        assert!(s.lines().any(|l| l.starts_with("- |")));
    }

    #[test]
    fn product_table_uses_qualified_headers() {
        let r = rel();
        let r2 = rel();
        let p = Product::new(vec![&r, &r2]).unwrap();
        let ids: Vec<ProductId> = p.iter().map(|(id, _)| id).collect();
        let s = product_table(&p, &ids, None);
        assert!(s.contains("t#1.city"));
        assert!(s.contains("t#2.n"));
    }

    #[test]
    fn empty_rows_ok() {
        let s = ascii_table(&["h".to_string()], &[], None);
        assert!(s.contains("h"));
    }
}
