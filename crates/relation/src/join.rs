//! Equi-join evaluation.
//!
//! A [`JoinSpec`] is a conjunction of equality pairs over the global
//! attributes of a [`Product`]. Two evaluators are provided:
//!
//! * [`JoinSpec::eval_nested_loop`] — the obviously-correct reference
//!   (scan the whole product, test every atom);
//! * [`JoinSpec::eval_hash`] — a left-deep fold that hash-partitions each
//!   relation on the atoms connecting it to the prefix, the evaluator a real
//!   system would use.
//!
//! Tests (and a proptest in the workspace root) cross-check the two.

use crate::error::{RelationError, Result};
use crate::product::{Product, ProductId};
use crate::relation::Relation;
use crate::schema::{Attribute, GlobalAttr, JoinSchema, RelationSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A conjunction of equality atoms `aᵢ ≍ bᵢ` over global attributes.
///
/// Pairs are kept normalized: each pair ordered `(min, max)`, the list sorted
/// and deduplicated, and reflexive pairs (`a ≍ a`) dropped — they are
/// tautologies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JoinSpec {
    pairs: Vec<(GlobalAttr, GlobalAttr)>,
}

impl JoinSpec {
    /// The always-true predicate (selects the whole product).
    pub fn always() -> Self {
        JoinSpec::default()
    }

    /// Build a normalized spec from arbitrary pairs.
    pub fn new(pairs: impl IntoIterator<Item = (GlobalAttr, GlobalAttr)>) -> Self {
        let mut pairs: Vec<(GlobalAttr, GlobalAttr)> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        pairs.sort();
        pairs.dedup();
        JoinSpec { pairs }
    }

    /// The normalized equality pairs.
    pub fn pairs(&self) -> &[(GlobalAttr, GlobalAttr)] {
        &self.pairs
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff the spec has no atoms (alias of [`JoinSpec::is_always`],
    /// provided for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True iff the spec has no atoms (selects everything).
    pub fn is_always(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Validate that every attribute is in range for `schema`.
    pub fn check(&self, schema: &JoinSchema) -> Result<()> {
        for &(a, b) in &self.pairs {
            schema.locate(a)?;
            schema.locate(b)?;
        }
        Ok(())
    }

    /// Does the concatenated tuple `t` satisfy every atom?
    pub fn holds(&self, t: &Tuple) -> bool {
        self.pairs
            .iter()
            .all(|&(a, b)| t[a.index()] == t[b.index()])
    }

    /// Reference evaluator: scan the product, test every tuple.
    pub fn eval_nested_loop(&self, product: &Product) -> Result<Vec<ProductId>> {
        self.check(product.schema())?;
        Ok(product
            .iter()
            .filter(|(_, t)| self.holds(t))
            .map(|(id, _)| id)
            .collect())
    }

    /// Hash evaluator: fold relations left to right; at each step, hash the
    /// incoming relation on the atoms that connect it to the accumulated
    /// prefix and probe with the prefix keys. Atoms internal to one relation
    /// become row filters. Returns ids in rank order.
    pub fn eval_hash(&self, product: &Product) -> Result<Vec<ProductId>> {
        let schema = product.schema();
        self.check(schema)?;
        let relations = product.relations();

        // Classify each atom by the relation occurrences of its endpoints.
        // An atom is "resolved" at step max(rel(a), rel(b)).
        struct StepAtom {
            /// Local attribute in the relation being added at this step.
            local: usize,
            /// Where the other side lives: `Err(local)` = same relation
            /// (intra filter), `Ok((rel, local))` = earlier relation.
            other: std::result::Result<(usize, usize), usize>,
        }
        let mut per_step: Vec<Vec<StepAtom>> = (0..relations.len()).map(|_| Vec::new()).collect();
        for &(a, b) in &self.pairs {
            let (ra, la) = schema.locate(a)?;
            let (rb, lb) = schema.locate(b)?;
            if ra == rb {
                per_step[ra].push(StepAtom {
                    local: la,
                    other: Err(lb),
                });
            } else {
                let ((r_hi, l_hi), (r_lo, l_lo)) = if ra > rb {
                    ((ra, la), (rb, lb))
                } else {
                    ((rb, lb), (ra, la))
                };
                per_step[r_hi].push(StepAtom {
                    local: l_hi,
                    other: Ok((r_lo, l_lo)),
                });
            }
        }

        // Partial assignments: per-relation row indices of the prefix.
        let mut partials: Vec<Vec<usize>> = vec![Vec::new()];
        for (step, rel) in relations.iter().enumerate() {
            let atoms = &per_step[step];
            let intra: Vec<(usize, usize)> = atoms
                .iter()
                .filter_map(|a| a.other.err().map(|o| (a.local, o)))
                .collect();
            let cross: Vec<(usize, (usize, usize))> = atoms
                .iter()
                .filter_map(|a| a.other.ok().map(|o| (a.local, o)))
                .collect();

            // Hash the new relation's rows surviving the intra filters,
            // keyed by their cross-atom values.
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, row) in rel.rows().iter().enumerate() {
                if !intra.iter().all(|&(x, y)| row[x] == row[y]) {
                    continue;
                }
                let key: Vec<Value> = cross.iter().map(|&(local, _)| row[local].clone()).collect();
                table.entry(key).or_default().push(i);
            }

            let mut next = Vec::new();
            for prefix in &partials {
                let key: Vec<Value> = cross
                    .iter()
                    .map(|&(_, (rel_idx, local))| {
                        relations[rel_idx].rows()[prefix[rel_idx]][local].clone()
                    })
                    .collect();
                if let Some(rows) = table.get(&key) {
                    next.reserve(rows.len());
                    for &i in rows {
                        let mut ext = Vec::with_capacity(prefix.len() + 1);
                        ext.extend_from_slice(prefix);
                        ext.push(i);
                        next.push(ext);
                    }
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }

        let mut ids: Vec<ProductId> = partials
            .iter()
            .filter(|p| p.len() == relations.len())
            .map(|p| product.encode(p).expect("indices from rows are in range"))
            .collect();
        ids.sort();
        Ok(ids)
    }

    /// Sort-merge evaluator for **binary** joins: both relations are
    /// sorted on the vector of their cross-atom key attributes and merged.
    /// Intra-relation atoms act as pre-filters, exactly as in
    /// [`JoinSpec::eval_hash`]. Returns ids in rank order.
    ///
    /// Fails with [`RelationError::InvalidJoin`] for other arities — the
    /// hash fold is the general evaluator; sort-merge exists as the
    /// classic alternative for the two-relation case (and as a third
    /// independent implementation to cross-check in tests).
    pub fn eval_sort_merge(&self, product: &Product) -> Result<Vec<ProductId>> {
        let schema = product.schema();
        self.check(schema)?;
        let relations = product.relations();
        if relations.len() != 2 {
            return Err(RelationError::InvalidJoin {
                message: format!(
                    "sort-merge join supports exactly 2 relations, got {}",
                    relations.len()
                ),
            });
        }

        // Split atoms: key pairs (one side per relation) and intra filters.
        let mut keys: Vec<(usize, usize)> = Vec::new(); // (local left, local right)
        let mut intra: Vec<(usize, (usize, usize))> = Vec::new(); // (rel, (la, lb))
        for &(a, b) in &self.pairs {
            let (ra, la) = schema.locate(a)?;
            let (rb, lb) = schema.locate(b)?;
            if ra == rb {
                intra.push((ra, (la, lb)));
            } else if ra == 0 {
                keys.push((la, lb));
            } else {
                keys.push((lb, la));
            }
        }

        let passes_intra = |rel: usize, row: &Tuple| {
            intra
                .iter()
                .filter(|(r, _)| *r == rel)
                .all(|(_, (x, y))| row[*x] == row[*y])
        };

        // Sort row indices of each side by their key vector.
        let key_of = |row: &Tuple, locals: &dyn Fn(usize) -> usize| -> Vec<Value> {
            (0..keys.len()).map(|k| row[locals(k)].clone()).collect()
        };
        let left_key = |row: &Tuple| key_of(row, &|k| keys[k].0);
        let right_key = |row: &Tuple| key_of(row, &|k| keys[k].1);

        let mut left: Vec<usize> = (0..relations[0].len())
            .filter(|&i| passes_intra(0, &relations[0].rows()[i]))
            .collect();
        let mut right: Vec<usize> = (0..relations[1].len())
            .filter(|&i| passes_intra(1, &relations[1].rows()[i]))
            .collect();
        left.sort_by_key(|&i| left_key(&relations[0].rows()[i]));
        right.sort_by_key(|&i| right_key(&relations[1].rows()[i]));

        // Merge equal-key runs.
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            let lk = left_key(&relations[0].rows()[left[i]]);
            let rk = right_key(&relations[1].rows()[right[j]]);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let i_end = (i..left.len())
                        .find(|&x| left_key(&relations[0].rows()[left[x]]) != lk)
                        .unwrap_or(left.len());
                    let j_end = (j..right.len())
                        .find(|&x| right_key(&relations[1].rows()[right[x]]) != rk)
                        .unwrap_or(right.len());
                    for &li in &left[i..i_end] {
                        for &rj in &right[j..j_end] {
                            out.push(product.encode(&[li, rj])?);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Materialize the selected tuples as a relation named `name`, with
    /// qualified attribute names so that the output schema is well-formed
    /// even for self-joins.
    pub fn materialize(
        &self,
        product: &Product,
        ids: &[ProductId],
        name: impl Into<String>,
    ) -> Result<Relation> {
        let schema = product.schema();
        let attrs: Vec<Attribute> = schema
            .attrs()
            .map(|ga| {
                Ok(Attribute::new(
                    schema.qualified_name(ga)?,
                    // Preserve the declared type.
                    schema.dtype(ga)?,
                ))
            })
            .collect::<Result<_>>()?;
        let out_schema = RelationSchema::new(name, attrs)?;
        let rows: Vec<Tuple> = ids
            .iter()
            .map(|&id| product.tuple(id))
            .collect::<Result<_>>()?;
        Relation::new(out_schema, rows)
    }
}

impl std::fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pairs.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{a} ≍ {b}")?;
        }
        Ok(())
    }
}

/// One side of a named equality: `(relation occurrence, attribute name)`.
pub type NamedAttr<'a> = (usize, &'a str);

/// Build a [`JoinSpec`] by resolving `(occurrence, attr_name)` pairs against
/// a schema; convenience for tests and examples.
pub fn spec_by_names(
    schema: &JoinSchema,
    pairs: &[(NamedAttr<'_>, NamedAttr<'_>)],
) -> Result<JoinSpec> {
    let resolved: Vec<(GlobalAttr, GlobalAttr)> = pairs
        .iter()
        .map(|&((ra, na), (rb, nb))| {
            Ok((
                schema.global_by_name(ra, na)?,
                schema.global_by_name(rb, nb)?,
            ))
        })
        .collect::<Result<_>>()?;
    Ok(JoinSpec::new(resolved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::DataType;

    fn flights() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn normalization_orders_dedups_and_drops_reflexive() {
        let s = JoinSpec::new(vec![
            (GlobalAttr(3), GlobalAttr(1)),
            (GlobalAttr(1), GlobalAttr(3)),
            (GlobalAttr(2), GlobalAttr(2)),
        ]);
        assert_eq!(s.pairs(), &[(GlobalAttr(1), GlobalAttr(3))]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn q1_selects_paper_tuples() {
        // Q1: To = City — the paper says it selects tuples (3),(4),(8),(10)
        // and (12)... actually exactly those product tuples where the flight
        // destination equals the hotel city.
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let q1 = spec_by_names(p.schema(), &[((0, "To"), (1, "City"))]).unwrap();
        let ids = q1.eval_nested_loop(&p).unwrap();
        // Ranks are 0-based: paper tuple (k) = rank k-1.
        let ranks: Vec<u64> = ids.iter().map(|id| id.0).collect();
        assert_eq!(ranks, vec![2, 3, 7, 9]);
    }

    #[test]
    fn q2_selects_paper_tuples() {
        // Q2: To = City AND Airline = Discount — tuples (3) and (4).
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let q2 = spec_by_names(
            p.schema(),
            &[((0, "To"), (1, "City")), ((0, "Airline"), (1, "Discount"))],
        )
        .unwrap();
        let ids = q2.eval_nested_loop(&p).unwrap();
        let ranks: Vec<u64> = ids.iter().map(|id| id.0).collect();
        assert_eq!(ranks, vec![2, 3]);
    }

    #[test]
    fn all_three_evaluators_agree() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        for pairs in [
            vec![],
            vec![((0, "To"), (1, "City"))],
            vec![((0, "To"), (1, "City")), ((0, "Airline"), (1, "Discount"))],
            vec![((0, "From"), (1, "City"))],
            vec![((0, "From"), (0, "To"))], // intra-relation (selection)
            vec![((0, "From"), (0, "To")), ((0, "To"), (1, "City"))],
        ] {
            let spec = spec_by_names(p.schema(), &pairs).unwrap();
            let reference = spec.eval_nested_loop(&p).unwrap();
            assert_eq!(spec.eval_hash(&p).unwrap(), reference, "hash, spec {spec}");
            assert_eq!(
                spec.eval_sort_merge(&p).unwrap(),
                reference,
                "sort-merge, spec {spec}"
            );
        }
    }

    #[test]
    fn sort_merge_rejects_non_binary() {
        let f = flights();
        let h = hotels();
        let h2 = hotels();
        let p = Product::new(vec![&f, &h, &h2]).unwrap();
        let spec = spec_by_names(p.schema(), &[((0, "To"), (1, "City"))]).unwrap();
        assert!(matches!(
            spec.eval_sort_merge(&p),
            Err(RelationError::InvalidJoin { .. })
        ));
        let single = Product::new(vec![&f]).unwrap();
        assert!(JoinSpec::always().eval_sort_merge(&single).is_err());
    }

    #[test]
    fn sort_merge_cross_product_when_keyless() {
        // With no cross atoms the key vectors are empty: every pair merges.
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        assert_eq!(JoinSpec::always().eval_sort_merge(&p).unwrap().len(), 12);
    }

    #[test]
    fn three_way_join() {
        let f = flights();
        let h = hotels();
        let h2 = hotels();
        let p = Product::new(vec![&f, &h, &h2]).unwrap();
        // flight.To = hotel1.City and hotel1.City = hotel2.City
        let spec = spec_by_names(
            p.schema(),
            &[((0, "To"), (1, "City")), ((1, "City"), (2, "City"))],
        )
        .unwrap();
        let hash = spec.eval_hash(&p).unwrap();
        let nl = spec.eval_nested_loop(&p).unwrap();
        assert_eq!(hash, nl);
        assert!(!hash.is_empty());
    }

    #[test]
    fn always_spec_selects_everything() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let all = JoinSpec::always().eval_hash(&p).unwrap();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn check_rejects_out_of_range() {
        let f = flights();
        let p = Product::new(vec![&f]).unwrap();
        let bad = JoinSpec::new(vec![(GlobalAttr(0), GlobalAttr(9))]);
        assert!(bad.eval_nested_loop(&p).is_err());
        assert!(bad.eval_hash(&p).is_err());
    }

    #[test]
    fn materialize_produces_qualified_schema() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let q1 = spec_by_names(p.schema(), &[((0, "To"), (1, "City"))]).unwrap();
        let ids = q1.eval_hash(&p).unwrap();
        let rel = q1.materialize(&p, &ids, "packages").unwrap();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.schema().attributes()[0].name, "flights.From");
        assert_eq!(rel.schema().attributes()[3].name, "hotels.City");
    }

    #[test]
    fn self_join_materializes() {
        let h = hotels();
        let h2 = hotels();
        let p = Product::new(vec![&h, &h2]).unwrap();
        let spec = spec_by_names(p.schema(), &[((0, "Discount"), (1, "Discount"))]).unwrap();
        let ids = spec.eval_hash(&p).unwrap();
        let rel = spec.materialize(&p, &ids, "pairs").unwrap();
        assert_eq!(rel.schema().attributes()[0].name, "hotels#1.City");
        assert_eq!(rel.schema().attributes()[2].name, "hotels#2.City");
        // Each hotel pairs at least with itself on equal discount.
        assert!(rel.len() >= 3);
    }

    #[test]
    fn display_spec() {
        let s = JoinSpec::new(vec![(GlobalAttr(1), GlobalAttr(3))]);
        assert_eq!(s.to_string(), "#1 ≍ #3");
        assert_eq!(JoinSpec::always().to_string(), "TRUE");
    }

    #[test]
    fn empty_relation_join_is_empty() {
        let f = flights();
        let empty = Relation::empty(RelationSchema::of("e", &[("x", DataType::Text)]).unwrap());
        let p = Product::new(vec![&f, &empty]).unwrap();
        let spec = JoinSpec::always();
        assert!(spec.eval_hash(&p).unwrap().is_empty());
        assert!(spec.eval_nested_loop(&p).unwrap().is_empty());
    }
}
