//! Rendering inferred join predicates as SQL and as GAV schema mappings.
//!
//! The paper (§1) observes that JIM's output "can be eventually seen as
//! simple GAV mappings"; this module produces both a `SELECT` statement a
//! user could paste into a database and a datalog-style GAV rule.

use crate::error::Result;
use crate::join::JoinSpec;
use crate::schema::JoinSchema;

/// Render `spec` as `SELECT * FROM … WHERE …` over `schema`.
///
/// Relation occurrences get aliases `r1, r2, …` so self-joins are valid SQL.
pub fn to_select(schema: &JoinSchema, spec: &JoinSpec) -> Result<String> {
    spec.check(schema)?;
    let mut sql = String::from("SELECT *\nFROM ");
    for (i, rel) in schema.relations().iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(rel.name());
        sql.push_str(" AS ");
        sql.push_str(&schema.sql_alias(i));
    }
    if !spec.is_always() {
        sql.push_str("\nWHERE ");
        for (i, &(a, b)) in spec.pairs().iter().enumerate() {
            if i > 0 {
                sql.push_str("\n  AND ");
            }
            let (ra, la) = schema.locate(a)?;
            let (rb, lb) = schema.locate(b)?;
            let an = &schema.relations()[ra].attributes()[la].name;
            let bn = &schema.relations()[rb].attributes()[lb].name;
            sql.push_str(&format!(
                "{}.{} = {}.{}",
                schema.sql_alias(ra),
                an,
                schema.sql_alias(rb),
                bn
            ));
        }
    }
    sql.push(';');
    Ok(sql)
}

/// Render `spec` as a GAV (global-as-view) mapping rule:
/// `Target(x1, …, xk) :- R1(…), R2(…).` where join variables are shared.
///
/// Each equivalence class of attributes connected by atoms shares one
/// variable; remaining attributes get fresh variables.
pub fn to_gav_rule(schema: &JoinSchema, spec: &JoinSpec, target: &str) -> Result<String> {
    spec.check(schema)?;
    let n = schema.num_attrs();

    // Union-find over global attributes to name shared variables.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for &(a, b) in spec.pairs() {
        let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }

    // Assign variable names x1, x2, … by first occurrence of each class.
    let mut names: Vec<Option<String>> = vec![None; n];
    let mut next = 0usize;
    let mut var_of = |parent: &mut Vec<usize>, g: usize, names: &mut Vec<Option<String>>| {
        let root = find(parent, g);
        if names[root].is_none() {
            next += 1;
            names[root] = Some(format!("x{next}"));
        }
        names[root].clone().expect("just set")
    };

    let mut body = String::new();
    let mut head_vars: Vec<String> = Vec::new();
    let mut global = 0usize;
    for (i, rel) in schema.relations().iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(rel.name());
        body.push('(');
        for (j, _) in rel.attributes().iter().enumerate() {
            if j > 0 {
                body.push_str(", ");
            }
            let v = var_of(&mut parent, global, &mut names);
            if !head_vars.contains(&v) {
                head_vars.push(v.clone());
            }
            body.push_str(&v);
            global += 1;
        }
        body.push(')');
    }
    Ok(format!("{}({}) :- {}.", target, head_vars.join(", "), body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::spec_by_names;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn schema() -> JoinSchema {
        JoinSchema::new(vec![
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn select_with_predicate() {
        let s = schema();
        let spec = spec_by_names(
            &s,
            &[((0, "To"), (1, "City")), ((0, "Airline"), (1, "Discount"))],
        )
        .unwrap();
        let sql = to_select(&s, &spec).unwrap();
        assert_eq!(
            sql,
            "SELECT *\nFROM flights AS r1, hotels AS r2\nWHERE r1.To = r2.City\n  AND r1.Airline = r2.Discount;"
        );
    }

    #[test]
    fn select_without_predicate_is_cross_product() {
        let s = schema();
        let sql = to_select(&s, &JoinSpec::always()).unwrap();
        assert_eq!(sql, "SELECT *\nFROM flights AS r1, hotels AS r2;");
    }

    #[test]
    fn gav_rule_shares_join_variables() {
        let s = schema();
        let spec = spec_by_names(&s, &[((0, "To"), (1, "City"))]).unwrap();
        let rule = to_gav_rule(&s, &spec, "Package").unwrap();
        assert_eq!(
            rule,
            "Package(x1, x2, x3, x4) :- flights(x1, x2, x3), hotels(x2, x4)."
        );
    }

    #[test]
    fn gav_rule_transitive_classes() {
        // To = City and City = Discount puts three attributes in one class.
        let s = schema();
        let spec = spec_by_names(
            &s,
            &[((0, "To"), (1, "City")), ((1, "City"), (1, "Discount"))],
        )
        .unwrap();
        let rule = to_gav_rule(&s, &spec, "T").unwrap();
        assert_eq!(
            rule,
            "T(x1, x2, x3) :- flights(x1, x2, x3), hotels(x2, x2)."
        );
    }

    #[test]
    fn gav_rule_no_atoms() {
        let s = schema();
        let rule = to_gav_rule(&s, &JoinSpec::always(), "All").unwrap();
        assert_eq!(
            rule,
            "All(x1, x2, x3, x4, x5) :- flights(x1, x2, x3), hotels(x4, x5)."
        );
    }

    #[test]
    fn self_join_aliases() {
        let h = RelationSchema::of("h", &[("a", DataType::Int)]).unwrap();
        let s = JoinSchema::new(vec![h.clone(), h]).unwrap();
        let spec = spec_by_names(&s, &[((0, "a"), (1, "a"))]).unwrap();
        let sql = to_select(&s, &spec).unwrap();
        assert_eq!(sql, "SELECT *\nFROM h AS r1, h AS r2\nWHERE r1.a = r2.a;");
    }
}
