//! Error types for the relational substrate.

use std::fmt;

/// Errors produced by the relational substrate.
///
/// Every fallible operation in `jim-relation` returns this type so callers
/// (the inference engine, the workload generators, the examples) can handle
/// schema violations uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple's arity did not match its relation schema.
    ArityMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Attribute whose type was violated.
        attribute: String,
        /// Type declared by the schema.
        expected: &'static str,
        /// Type of the offending value.
        actual: &'static str,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// Relation that was searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// A relation name was not found in a database.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// Two attribute names in the same relation collide.
    DuplicateAttribute {
        /// Relation in which the collision occurred.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// Two relation names in the same database collide.
    DuplicateRelation {
        /// The duplicated relation name.
        relation: String,
    },
    /// A global attribute index was out of range for a join schema.
    AttrOutOfRange {
        /// The offending index.
        index: usize,
        /// Total number of attributes in the join schema.
        len: usize,
    },
    /// CSV text could not be parsed.
    Csv {
        /// 1-based line on which parsing failed.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A join predicate referenced an empty set of relations or was
    /// otherwise unevaluable.
    InvalidJoin {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "arity mismatch for relation `{relation}`: schema has {expected} attributes, tuple has {actual}"
            ),
            RelationError::TypeMismatch { relation, attribute, expected, actual } => write!(
                f,
                "type mismatch for `{relation}.{attribute}`: expected {expected}, got {actual}"
            ),
            RelationError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            RelationError::UnknownRelation { relation } => {
                write!(f, "database has no relation `{relation}`")
            }
            RelationError::DuplicateAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` declares attribute `{attribute}` twice")
            }
            RelationError::DuplicateRelation { relation } => {
                write!(f, "database declares relation `{relation}` twice")
            }
            RelationError::AttrOutOfRange { index, len } => {
                write!(f, "global attribute index {index} out of range (join schema has {len})")
            }
            RelationError::Csv { line, message } => write!(f, "CSV parse error on line {line}: {message}"),
            RelationError::InvalidJoin { message } => write!(f, "invalid join: {message}"),
        }
    }
}

impl std::error::Error for RelationError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::ArityMismatch {
            relation: "flights".into(),
            expected: 3,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains("flights"));
        assert!(s.contains('3'));
        assert!(s.contains('2'));
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationError::UnknownRelation {
            relation: "r".into(),
        };
        let b = RelationError::UnknownRelation {
            relation: "r".into(),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelationError::InvalidJoin {
            message: "no relations".into(),
        });
        assert!(e.to_string().contains("invalid join"));
    }
}
