//! # `jim-relation` — the relational substrate under JIM
//!
//! The JIM demo (Bonifati, Ciucanu & Staworko, PVLDB 7(13), 2014) infers
//! equi-join predicates over the cartesian product of several relations.
//! This crate provides everything *below* the inference algorithms:
//!
//! * typed [`Value`]s with a lawful total order,
//! * relation and join schemas with global attribute indexing,
//! * [`Tuple`]s, schema-checked [`Relation`]s and [`Database`] catalogs,
//! * lazy n-ary cartesian [`Product`]s with a linear tuple-id space,
//! * equi-join evaluation ([`JoinSpec`]: hash fold + nested-loop reference),
//! * [`csv`] import/export and [`sql`]/GAV rendering of inferred queries,
//! * ASCII [`display`] tables mirroring the paper's UI figures.
//!
//! The crate is deliberately free of inference logic: `jim-core` builds the
//! version space and strategies on top of these types.
//!
//! ## Example
//!
//! ```
//! use jim_relation::{csv, Product, spec_by_names};
//!
//! let flights = csv::read_relation(
//!     "flights",
//!     "From,To,Airline\nParis,Lille,AF\nLille,NYC,AA\n",
//! )?;
//! let hotels = csv::read_relation("hotels", "City,Discount\nLille,AF\nNYC,AA\n")?;
//! let product = Product::new(vec![&flights, &hotels])?;
//! let q1 = spec_by_names(product.schema(), &[((0, "To"), (1, "City"))])?;
//! assert_eq!(q1.eval_hash(&product)?.len(), 2);
//! # Ok::<(), jim_relation::RelationError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
mod database;
pub mod display;
mod error;
pub mod factorize;
mod join;
mod product;
mod relation;
mod schema;
pub mod sql;
pub mod stats;
mod tuple;
mod value;

pub use database::Database;
pub use error::{RelationError, Result};
pub use factorize::{factorize, FactorizeError, FactorizeOptions, Factorized, SigGroup};
pub use join::{spec_by_names, JoinSpec};
pub use product::{IntoSharedRelation, Product, ProductId, ProductIter};
pub use relation::Relation;
pub use schema::{Attribute, GlobalAttr, JoinSchema, RelationSchema};
pub use tuple::Tuple;
pub use value::{DataType, Value};

/// The commonly used names, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        Attribute, DataType, Database, GlobalAttr, JoinSchema, JoinSpec, Product, ProductId,
        Relation, RelationError, RelationSchema, Tuple, Value,
    };
}
