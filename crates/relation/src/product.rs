//! Lazy n-ary cartesian products.
//!
//! The set of *candidate tuples* JIM asks the user about is the cartesian
//! product `R1 × … × Rn`. Products are huge (the paper's motivation for
//! pruning), so they are never materialized: a [`Product`] exposes a linear
//! id space (mixed-radix encoding, **last relation varies fastest**, which
//! matches the row order of the paper's Figure 1) plus lazy decoding,
//! iteration and sampling.
//!
//! A product **owns** its relations behind [`Arc`] handles, so a product —
//! and everything built on top of it, like `jim-core`'s `Engine` — is a
//! self-contained `Send + 'static` value that can be stored in a session
//! map and served across requests. Self-joins share one allocation.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::JoinSchema;
use crate::tuple::Tuple;
use rand::Rng;
use std::sync::Arc;

/// Identifier of a tuple in a cartesian product (its mixed-radix rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProductId(pub u64);

impl ProductId {
    /// The raw rank.
    pub fn rank(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ProductId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Conversion into the shared relation handles a [`Product`] owns.
///
/// Implemented for `Arc<Relation>` (moved in), `Relation` (wrapped) and
/// `&Relation` / `&Arc<Relation>` (cloned), so existing call sites like
/// `Product::new(vec![&flights, &hotels])` keep working while services can
/// share relations across sessions at zero copy cost.
pub trait IntoSharedRelation {
    /// Produce the owned handle.
    fn into_shared(self) -> Arc<Relation>;
}

impl IntoSharedRelation for Arc<Relation> {
    fn into_shared(self) -> Arc<Relation> {
        self
    }
}

impl IntoSharedRelation for Relation {
    fn into_shared(self) -> Arc<Relation> {
        Arc::new(self)
    }
}

impl IntoSharedRelation for &Relation {
    fn into_shared(self) -> Arc<Relation> {
        Arc::new(self.clone())
    }
}

impl IntoSharedRelation for &Arc<Relation> {
    fn into_shared(self) -> Arc<Relation> {
        Arc::clone(self)
    }
}

/// The cartesian product of owned (shared) relations.
#[derive(Debug, Clone)]
pub struct Product {
    relations: Vec<Arc<Relation>>,
    schema: JoinSchema,
    size: u64,
}

impl Product {
    /// Build the product view. Fails on an empty relation list or if the
    /// product size overflows `u64`.
    pub fn new<R: IntoSharedRelation>(relations: Vec<R>) -> Result<Self> {
        let relations: Vec<Arc<Relation>> = relations
            .into_iter()
            .map(IntoSharedRelation::into_shared)
            .collect();
        if relations.is_empty() {
            return Err(RelationError::InvalidJoin {
                message: "cartesian product of zero relations".into(),
            });
        }
        let schema = JoinSchema::new(relations.iter().map(|r| r.schema().clone()).collect())?;
        let mut size: u64 = 1;
        for r in &relations {
            size = size
                .checked_mul(r.len() as u64)
                .ok_or_else(|| RelationError::InvalidJoin {
                    message: "cartesian product size overflows u64".into(),
                })?;
        }
        Ok(Product {
            relations,
            schema,
            size,
        })
    }

    /// The join schema of the product.
    pub fn schema(&self) -> &JoinSchema {
        &self.schema
    }

    /// The participating relations (shared handles).
    pub fn relations(&self) -> &[Arc<Relation>] {
        &self.relations
    }

    /// Number of tuples in the product.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// True iff any participating relation is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Decode a product id into per-relation row indices.
    pub fn decode(&self, id: ProductId) -> Result<Vec<usize>> {
        if id.0 >= self.size {
            return Err(RelationError::InvalidJoin {
                message: format!("product id {} out of range ({} tuples)", id.0, self.size),
            });
        }
        let mut rest = id.0;
        let mut idx = vec![0usize; self.relations.len()];
        for (slot, rel) in idx.iter_mut().zip(&self.relations).rev() {
            let n = rel.len() as u64;
            *slot = (rest % n) as usize;
            rest /= n;
        }
        Ok(idx)
    }

    /// Encode per-relation row indices into a product id.
    pub fn encode(&self, indices: &[usize]) -> Result<ProductId> {
        if indices.len() != self.relations.len() {
            return Err(RelationError::InvalidJoin {
                message: format!(
                    "expected {} row indices, got {}",
                    self.relations.len(),
                    indices.len()
                ),
            });
        }
        let mut rank: u64 = 0;
        for (&i, rel) in indices.iter().zip(&self.relations) {
            if i >= rel.len() {
                return Err(RelationError::InvalidJoin {
                    message: format!("row index {i} out of range for `{}`", rel.name()),
                });
            }
            rank = rank * rel.len() as u64 + i as u64;
        }
        Ok(ProductId(rank))
    }

    /// Materialize the product tuple behind `id` (concatenation of the
    /// component rows).
    pub fn tuple(&self, id: ProductId) -> Result<Tuple> {
        let idx = self.decode(id)?;
        Ok(Tuple::concat(
            idx.iter()
                .zip(&self.relations)
                .map(|(&i, r)| r.row(i).expect("decoded index in range")),
        ))
    }

    /// Borrow the component rows behind `id` without concatenating them.
    pub fn component_rows(&self, id: ProductId) -> Result<Vec<&Tuple>> {
        let idx = self.decode(id)?;
        Ok(idx
            .iter()
            .zip(&self.relations)
            .map(|(&i, r)| r.row(i).expect("decoded index in range"))
            .collect())
    }

    /// Iterate over all `(id, tuple)` pairs in rank order.
    pub fn iter(&self) -> ProductIter<'_> {
        ProductIter {
            product: self,
            next: 0,
        }
    }

    /// Draw `k` *distinct* product ids uniformly at random (all of them if
    /// `k >= size`). Used to subsample gigantic products before inference.
    pub fn sample(&self, rng: &mut impl Rng, k: usize) -> Vec<ProductId> {
        let n = self.size;
        if n == 0 {
            return Vec::new();
        }
        if (k as u64) >= n {
            return (0..n).map(ProductId).collect();
        }
        // Floyd's algorithm: k distinct values from [0, n).
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = rng.gen_range(0..=j);
            let pick = if chosen.insert(t) { t } else { j };
            if pick != t {
                chosen.insert(pick);
            }
            out.push(ProductId(pick));
        }
        out
    }
}

/// Iterator over all tuples of a [`Product`] in rank order.
#[derive(Debug)]
pub struct ProductIter<'p> {
    product: &'p Product,
    next: u64,
}

impl Iterator for ProductIter<'_> {
    type Item = (ProductId, Tuple);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.product.size {
            return None;
        }
        let id = ProductId(self.next);
        self.next += 1;
        Some((id, self.product.tuple(id).expect("rank in range")))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.product.size - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ProductIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::{DataType, Value};

    fn rel(name: &str, attr: &str, vals: &[i64]) -> Relation {
        Relation::new(
            RelationSchema::of(name, &[(attr, DataType::Int)]).unwrap(),
            vals.iter().map(|&v| tup![v]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn size_and_schema() {
        let a = rel("a", "x", &[1, 2, 3]);
        let b = rel("b", "y", &[10, 20]);
        let p = Product::new(vec![&a, &b]).unwrap();
        assert_eq!(p.size(), 6);
        assert_eq!(p.schema().num_attrs(), 2);
    }

    #[test]
    fn last_relation_varies_fastest() {
        let a = rel("a", "x", &[1, 2]);
        let b = rel("b", "y", &[10, 20, 30]);
        let p = Product::new(vec![&a, &b]).unwrap();
        let tuples: Vec<Tuple> = p.iter().map(|(_, t)| t).collect();
        assert_eq!(tuples[0], tup![1, 10]);
        assert_eq!(tuples[1], tup![1, 20]);
        assert_eq!(tuples[2], tup![1, 30]);
        assert_eq!(tuples[3], tup![2, 10]);
        assert_eq!(tuples.len(), 6);
    }

    #[test]
    fn encode_decode_round_trip() {
        let a = rel("a", "x", &[1, 2, 3]);
        let b = rel("b", "y", &[10, 20]);
        let c = rel("c", "z", &[5, 6, 7, 8]);
        let p = Product::new(vec![&a, &b, &c]).unwrap();
        for (id, _) in p.iter() {
            let idx = p.decode(id).unwrap();
            assert_eq!(p.encode(&idx).unwrap(), id);
        }
    }

    #[test]
    fn decode_out_of_range() {
        let a = rel("a", "x", &[1]);
        let p = Product::new(vec![&a]).unwrap();
        assert!(p.decode(ProductId(1)).is_err());
        assert!(p.encode(&[1]).is_err());
        assert!(p.encode(&[0, 0]).is_err());
    }

    #[test]
    fn empty_relation_gives_empty_product() {
        let a = rel("a", "x", &[]);
        let b = rel("b", "y", &[1]);
        let p = Product::new(vec![&a, &b]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn component_rows_borrow() {
        let a = rel("a", "x", &[7]);
        let b = rel("b", "y", &[9]);
        let p = Product::new(vec![&a, &b]).unwrap();
        let rows = p.component_rows(ProductId(0)).unwrap();
        assert_eq!(rows[0][0], Value::Int(7));
        assert_eq!(rows[1][0], Value::Int(9));
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        use rand::SeedableRng;
        let a = rel("a", "x", &[1, 2, 3, 4, 5]);
        let b = rel("b", "y", &[1, 2, 3, 4, 5]);
        let p = Product::new(vec![&a, &b]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let s = p.sample(&mut rng, 10);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|id| id.0 < 25));
    }

    #[test]
    fn sample_more_than_size_returns_all() {
        use rand::SeedableRng;
        let a = rel("a", "x", &[1, 2]);
        let p = Product::new(vec![&a]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = p.sample(&mut rng, 100);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn figure1_rank_order() {
        // Two relations of sizes 4 and 3 -> 12 tuples; tuple (3) of the paper
        // (1-based) is rank 2: first flight, third hotel.
        let flights = rel("f", "x", &[1, 2, 3, 4]);
        let hotels = rel("h", "y", &[1, 2, 3]);
        let p = Product::new(vec![&flights, &hotels]).unwrap();
        assert_eq!(p.decode(ProductId(2)).unwrap(), vec![0, 2]);
        assert_eq!(p.decode(ProductId(11)).unwrap(), vec![3, 2]);
    }
}
