//! Typed attribute values.
//!
//! JIM compares values for *equality only* (equi-join atoms), but the
//! substrate also gives them a total order so relations can be sorted,
//! deduplicated and printed deterministically. Floats are ordered with
//! [`f64::total_cmp`], which makes `Value` a lawful `Ord`/`Hash` key.

use std::fmt;
use std::sync::Arc;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (totally ordered via `total_cmp`).
    Float,
    /// UTF-8 text (cheaply clonable, `Arc<str>`).
    Text,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Lower-case SQL-ish name of the type.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single attribute value.
///
/// `Null` is included because denormalized real-world inputs (the setting the
/// paper motivates) routinely contain missing values; equality atoms treat
/// `Null` as equal only to `Null`, mirroring the paper's purely syntactic
/// value matching (a goal query that must never match a column can be probed
/// with nulls).
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value, or `None` for `Null` (null is typeless
    /// and admitted by every attribute type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Name of this value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            None => "null",
            Some(t) => t.name(),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a raw CSV field into the "narrowest" value: empty string becomes
    /// `Null`, then `Int`, `Float`, `Bool` (case-insensitive `true`/`false`)
    /// are tried in that order, falling back to `Text`.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(x) = trimmed.parse::<f64>() {
            return Value::Float(x);
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::text(trimmed),
        }
    }

    /// Parse a raw field *as a specific declared type*. Empty fields are
    /// `Null` regardless of the type.
    pub fn parse_as(raw: &str, dtype: DataType) -> Option<Value> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Some(Value::Null);
        }
        Some(match dtype {
            DataType::Int => Value::Int(trimmed.parse().ok()?),
            DataType::Float => Value::Float(trimmed.parse().ok()?),
            DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
                "true" | "1" => Value::Bool(true),
                "false" | "0" => Value::Bool(false),
                _ => return None,
            },
            DataType::Text => Value::text(trimmed),
        })
    }

    /// Render the value as it appears in SQL text (strings quoted with
    /// single quotes, embedded quotes doubled).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => {
                // Always keep a decimal point so the literal round-trips as a float.
                let s = x.to_string();
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == std::cmp::Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_is_type_strict() {
        assert_eq!(Value::Int(1), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::text("1"), Value::Int(1));
        assert_ne!(Value::Null, Value::Int(0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn nan_equals_itself_under_total_order() {
        // Join semantics need a lawful Eq; total_cmp gives NaN == NaN.
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
    }

    #[test]
    fn negative_zero_and_positive_zero_differ() {
        // total_cmp distinguishes -0.0 from 0.0; hashing must agree with Eq.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
        assert_ne!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Float(1.5));
        assert_eq!(vals[5], Value::text("b"));
    }

    #[test]
    fn infer_narrowest_type() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("FALSE"), Value::Bool(false));
        assert_eq!(Value::infer("Paris"), Value::text("Paris"));
        assert_eq!(Value::infer("  "), Value::Null);
    }

    #[test]
    fn parse_as_declared_type() {
        assert_eq!(Value::parse_as("5", DataType::Int), Some(Value::Int(5)));
        assert_eq!(Value::parse_as("5", DataType::Text), Some(Value::text("5")));
        assert_eq!(Value::parse_as("x", DataType::Int), None);
        assert_eq!(
            Value::parse_as("1", DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::parse_as("", DataType::Int), Some(Value::Null));
    }

    #[test]
    fn sql_literals() {
        assert_eq!(Value::Int(3).to_sql_literal(), "3");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
        assert_eq!(Value::text("O'Hare").to_sql_literal(), "'O''Hare'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Bool(false).to_sql_literal(), "FALSE");
    }

    #[test]
    fn display_round_trip_for_text() {
        let v = Value::text("Lille");
        assert_eq!(v.to_string(), "Lille");
        assert_eq!(Value::infer(&v.to_string()), v);
    }

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Int.to_string(), "int");
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
    }

    #[test]
    fn text_values_share_storage_on_clone() {
        let a = Value::text("shared");
        let b = a.clone();
        if let (Value::Text(x), Value::Text(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            panic!("expected text values");
        }
    }
}
