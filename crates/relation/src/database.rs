//! A database: a catalog of named relations.

use crate::error::{RelationError, Result};
use crate::product::IntoSharedRelation;
use crate::relation::Relation;
use crate::schema::JoinSchema;
use std::fmt;
use std::sync::Arc;

/// A set of named relation instances.
///
/// JIM assumes *no* knowledge of integrity constraints — a `Database` here is
/// purely a catalog; keys/foreign keys exist only implicitly in the data the
/// workload generators produce. Relations are held behind [`Arc`] so a
/// [`Database::join_view`] (and the products built from it) shares the
/// catalog's storage instead of copying it per session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: Vec<Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a relation; names must be unique.
    pub fn add(&mut self, relation: impl IntoSharedRelation) -> Result<()> {
        let relation = relation.into_shared();
        if self.relations.iter().any(|r| r.name() == relation.name()) {
            return Err(RelationError::DuplicateRelation {
                relation: relation.name().to_string(),
            });
        }
        self.relations.push(relation);
        Ok(())
    }

    /// Build from a list of relations.
    pub fn from_relations(relations: Vec<Relation>) -> Result<Self> {
        let mut db = Database::new();
        for r in relations {
            db.add(r)?;
        }
        Ok(db)
    }

    /// All relations, in insertion order.
    pub fn relations(&self) -> &[Arc<Relation>] {
        &self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.get_shared(name).map(|r| &**r)
    }

    /// Look up a relation by name, returning the shared handle.
    pub fn get_shared(&self, name: &str) -> Result<&Arc<Relation>> {
        self.relations
            .iter()
            .find(|r| r.name() == name)
            .ok_or_else(|| RelationError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// The relation occurrences to join, by name (names may repeat for
    /// self-joins), together with the resulting [`JoinSchema`]. The returned
    /// handles share the catalog's storage — cloning them is free.
    pub fn join_view(&self, names: &[&str]) -> Result<(Vec<Arc<Relation>>, JoinSchema)> {
        let rels: Vec<Arc<Relation>> = names
            .iter()
            .map(|n| self.get_shared(n).map(Arc::clone))
            .collect::<Result<_>>()?;
        let schema = JoinSchema::new(rels.iter().map(|r| r.schema().clone()).collect())?;
        Ok((rels, schema))
    }

    /// Total number of tuples across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(f, "{} [{} rows]", r.schema(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::DataType;

    fn db() -> Database {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![tup!["Paris", "Lille", "AF"]],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![tup!["Lille", "AF"], tup!["Paris", ""]],
        )
        .unwrap();
        Database::from_relations(vec![flights, hotels]).unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let db = db();
        assert_eq!(db.get("hotels").unwrap().len(), 2);
        assert!(db.get("cars").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = db();
        let dup = d.get("flights").unwrap().clone();
        assert!(matches!(
            d.add(dup),
            Err(RelationError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn join_view_builds_schema() {
        let db = db();
        let (rels, schema) = db.join_view(&["flights", "hotels"]).unwrap();
        assert_eq!(rels.len(), 2);
        assert_eq!(schema.num_attrs(), 5);
    }

    #[test]
    fn join_view_supports_self_join() {
        let db = db();
        let (rels, schema) = db.join_view(&["hotels", "hotels"]).unwrap();
        assert_eq!(rels.len(), 2);
        assert_eq!(schema.num_attrs(), 4);
    }

    #[test]
    fn totals() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_rows(), 3);
        assert!(!db.is_empty());
    }
}
