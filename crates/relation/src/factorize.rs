//! Factorized signature-group construction.
//!
//! JIM's engine treats product tuples with equal equality-atom signatures as
//! indistinguishable, yet naive construction enumerates the whole cartesian
//! product just to discover those groups. This module computes the
//! signature-group partition **directly from the base relations**:
//!
//! 1. Rows of each component relation are partitioned into
//!    **value-equivalence blocks**: two rows land in one block iff they agree
//!    on every attribute that participates in a joinable pair — after
//!    *collapsing* values that appear in no partner attribute (such values
//!    can never satisfy a cross atom, so only their within-row equality
//!    pattern matters, captured by per-row sentinels).
//! 2. Every product tuple's signature is a function of its block vector
//!    alone, so the distinct signatures of the product are exactly the
//!    distinct patterns over block combinations. The sweep enumerates block
//!    combinations — densely (mixed-radix, any arity) or sparsely for binary
//!    products (an inverted value index yields only block pairs that share a
//!    value; all remaining pairs take the no-cross-atom default pattern) —
//!    and aggregates per pattern a **count**, the **minimum** [`ProductId`]
//!    and a bounded sample of witness ids.
//!
//! The sweep never materializes the product: cost scales with the number of
//! blocks and their value overlap (for event-log-shaped data, the number of
//! *distinct* rows), not with `Product::size()`. A [`FactorizeOptions::max_sweep`]
//! guard rejects instances whose block structure is no smaller than the
//! product, so callers can fall back to sampling.

use crate::product::{Product, ProductId};
use crate::schema::{GlobalAttr, JoinSchema};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Tuning knobs for [`factorize`].
#[derive(Debug, Clone, Copy)]
pub struct FactorizeOptions {
    /// Only consider atoms between *different* relation occurrences
    /// (mirrors the engine's default atom scope).
    pub cross_only: bool,
    /// Upper bound on sweep work (dense: number of block combinations;
    /// sparse: candidate block pairs sharing a value). Exceeding it returns
    /// [`FactorizeError::SweepTooLarge`] so the caller can fall back.
    pub max_sweep: u64,
    /// Maximum number of witness ids carried per signature group (at least
    /// one — the minimum id is always a witness).
    pub max_witnesses: usize,
    /// Force the dense mixed-radix sweep even for binary products (used by
    /// tests to pin both sweeps against each other).
    pub force_dense: bool,
}

impl Default for FactorizeOptions {
    fn default() -> Self {
        FactorizeOptions {
            cross_only: true,
            max_sweep: 4_000_000,
            max_witnesses: 8,
            force_dense: false,
        }
    }
}

/// Failure modes of [`factorize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorizeError {
    /// No pair of attributes is joinable under the requested scope, so there
    /// is no signature structure to factorize.
    NoJoinablePairs,
    /// The block structure is too rich: sweeping it would cost more than
    /// `max_sweep`. Callers should fall back to sampling.
    SweepTooLarge {
        /// The estimated sweep cost.
        cost: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorizeError::NoJoinablePairs => {
                write!(f, "factorization failed: no joinable attribute pairs")
            }
            FactorizeError::SweepTooLarge { cost, limit } => write!(
                f,
                "factorization too large: sweep cost {cost} exceeds limit {limit}"
            ),
        }
    }
}

impl std::error::Error for FactorizeError {}

/// One signature group of the product, represented without its members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigGroup {
    /// The joinable attribute pairs that hold (with equal values) in every
    /// member of the group, as `(a, b)` with `a < b` in global-attr order.
    pub pattern: Vec<(GlobalAttr, GlobalAttr)>,
    /// Exact number of product tuples in the group.
    pub count: u64,
    /// The smallest member id (the group's canonical representative).
    pub min_id: ProductId,
    /// Up to `max_witnesses` member ids, ascending; `witnesses[0] == min_id`.
    pub witnesses: Vec<ProductId>,
}

/// The result of [`factorize`]: the full signature-group partition plus
/// sweep statistics.
#[derive(Debug, Clone)]
pub struct Factorized {
    /// Signature groups sorted by `min_id` (i.e. first-seen rank order).
    pub groups: Vec<SigGroup>,
    /// Number of value-equivalence blocks per relation occurrence.
    pub blocks_per_occurrence: Vec<usize>,
    /// Block combinations (dense) or candidate block pairs (sparse) visited.
    pub swept: u64,
}

/// A collapsed block-key entry: either a value that can participate in some
/// joinable pair, or a per-row sentinel for values that cannot (numbered by
/// first appearance within the row so within-row equality is preserved).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyVal {
    Val(Value),
    Bot(u32),
}

/// One value-equivalence block of a relation occurrence.
struct Block {
    key: Vec<KeyVal>,
    count: u64,
    min_row: usize,
    witness_rows: Vec<usize>,
}

/// A joinable attribute pair resolved to occurrence + key positions.
struct PairInfo {
    a: GlobalAttr,
    b: GlobalAttr,
    occ_a: usize,
    occ_b: usize,
    pos_a: usize,
    pos_b: usize,
}

/// Per-pattern aggregation during the sweep.
#[derive(Default)]
struct Acc {
    count: u64,
    /// The `max_witnesses` smallest block combinations, as
    /// `(combo minimum id, block index per occurrence)`, ascending.
    entries: Vec<(u64, Vec<u32>)>,
}

impl Acc {
    fn add(&mut self, count: u64, min_id: u64, combo: &[u32], cap: usize) {
        self.count += count;
        let pos = self.entries.partition_point(|(id, _)| *id < min_id);
        if pos < cap {
            self.entries.insert(pos, (min_id, combo.to_vec()));
            self.entries.truncate(cap);
        }
    }
}

/// Enumerate the joinable attribute pairs of `schema`, mirroring the atom
/// universe's enumeration: `a < b`, equal declared types, and (under
/// `cross_only`) different relation occurrences.
pub fn joinable_pairs(schema: &JoinSchema, cross_only: bool) -> Vec<(GlobalAttr, GlobalAttr)> {
    let attrs: Vec<GlobalAttr> = schema.attrs().collect();
    let mut out = Vec::new();
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            let cross = schema.cross_relation(a, b).expect("attrs in range");
            if cross_only && !cross {
                continue;
            }
            let ta = schema.dtype(a).expect("attr in range");
            let tb = schema.dtype(b).expect("attr in range");
            if ta == tb {
                out.push((a, b));
            }
        }
    }
    out
}

/// Compute the signature-group partition of `product` without materializing
/// it. See the module docs for the algorithm.
pub fn factorize(
    product: &Product,
    options: &FactorizeOptions,
) -> Result<Factorized, FactorizeError> {
    let schema = product.schema();
    let n = schema.num_relations();
    let pair_attrs = joinable_pairs(schema, options.cross_only);
    if pair_attrs.is_empty() {
        return Err(FactorizeError::NoJoinablePairs);
    }
    let cap = options.max_witnesses.max(1);

    // Distinguishing attributes per occurrence: locals that appear in some
    // joinable pair, with their position in the block key.
    let mut distinguishing: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pos_of: HashMap<GlobalAttr, (usize, usize)> = HashMap::new();
    for &(a, b) in &pair_attrs {
        for attr in [a, b] {
            let (occ, local) = schema.locate(attr).expect("attr in range");
            if !distinguishing[occ].contains(&local) {
                distinguishing[occ].push(local);
            }
        }
    }
    for (occ, locals) in distinguishing.iter_mut().enumerate() {
        locals.sort_unstable();
        for (pos, &local) in locals.iter().enumerate() {
            let attr = schema.global(occ, local).expect("local in range");
            pos_of.insert(attr, (occ, pos));
        }
    }
    let pairs: Vec<PairInfo> = pair_attrs
        .iter()
        .map(|&(a, b)| {
            let (occ_a, pos_a) = pos_of[&a];
            let (occ_b, pos_b) = pos_of[&b];
            PairInfo {
                a,
                b,
                occ_a,
                occ_b,
                pos_a,
                pos_b,
            }
        })
        .collect();

    // Value sets per distinguishing attribute, then partner attrs per attr:
    // a value collapses iff no joinable partner attribute ever holds it.
    let mut value_sets: HashMap<GlobalAttr, HashSet<Value>> = HashMap::new();
    for (occ, locals) in distinguishing.iter().enumerate() {
        let rel = &product.relations()[occ];
        for &local in locals {
            let attr = schema.global(occ, local).expect("local in range");
            let set = value_sets.entry(attr).or_default();
            for row in rel.rows() {
                set.insert(row[local].clone());
            }
        }
    }
    let mut partners: HashMap<GlobalAttr, Vec<GlobalAttr>> = HashMap::new();
    for &(a, b) in &pair_attrs {
        partners.entry(a).or_default().push(b);
        partners.entry(b).or_default().push(a);
    }

    // Block partition per occurrence.
    let mut blocks: Vec<Vec<Block>> = Vec::with_capacity(n);
    for (occ, locals) in distinguishing.iter().enumerate() {
        let rel = &product.relations()[occ];
        let mut by_key: HashMap<Vec<KeyVal>, u32> = HashMap::new();
        let mut occ_blocks: Vec<Block> = Vec::new();
        let mut bots: Vec<&Value> = Vec::new();
        for (row_idx, row) in rel.rows().iter().enumerate() {
            bots.clear();
            let mut key = Vec::with_capacity(locals.len());
            for &local in locals {
                let attr = schema.global(occ, local).expect("local in range");
                let v = &row[local];
                let joins = partners[&attr].iter().any(|p| value_sets[p].contains(v));
                if joins {
                    key.push(KeyVal::Val(v.clone()));
                } else {
                    let j = bots.iter().position(|w| *w == v).unwrap_or_else(|| {
                        bots.push(v);
                        bots.len() - 1
                    });
                    key.push(KeyVal::Bot(j as u32));
                }
            }
            if let Some(&i) = by_key.get(&key) {
                let b = &mut occ_blocks[i as usize];
                b.count += 1;
                if b.witness_rows.len() < cap {
                    b.witness_rows.push(row_idx);
                }
            } else {
                by_key.insert(key.clone(), occ_blocks.len() as u32);
                occ_blocks.push(Block {
                    key,
                    count: 1,
                    min_row: row_idx,
                    witness_rows: vec![row_idx],
                });
            }
        }
        blocks.push(occ_blocks);
    }
    let blocks_per_occurrence: Vec<usize> = blocks.iter().map(Vec::len).collect();

    let mut accs: HashMap<Vec<u32>, Acc> = HashMap::new();
    let swept = if n == 2 && !options.force_dense {
        sweep_sparse(product, &pairs, &blocks, options.max_sweep, cap, &mut accs)?
    } else {
        sweep_dense(product, &pairs, &blocks, options.max_sweep, cap, &mut accs)?
    };

    // Finalize: expand witness entries and sort groups by minimum id.
    let mut groups: Vec<SigGroup> = accs
        .into_iter()
        .map(|(pattern, acc)| {
            let mut witnesses: Vec<ProductId> = Vec::new();
            for (_, combo) in &acc.entries {
                witnesses.extend(expand_combo(product, &blocks, combo, cap));
            }
            witnesses.sort_unstable();
            witnesses.dedup();
            witnesses.truncate(cap);
            SigGroup {
                pattern: pattern
                    .iter()
                    .map(|&i| (pairs[i as usize].a, pairs[i as usize].b))
                    .collect(),
                count: acc.count,
                min_id: ProductId(acc.entries[0].0),
                witnesses,
            }
        })
        .collect();
    groups.sort_unstable_by_key(|g| g.min_id);
    debug_assert_eq!(
        groups.iter().map(|g| g.count).sum::<u64>(),
        product.size(),
        "groups must exactly cover the product"
    );
    Ok(Factorized {
        groups,
        blocks_per_occurrence,
        swept,
    })
}

/// The smallest member ids of one block combination: the per-block minimum
/// rows, then varying the last (fastest-varying) occurrence over its block's
/// witness rows — those are exactly the combination's smallest ranks.
fn expand_combo(
    product: &Product,
    blocks: &[Vec<Block>],
    combo: &[u32],
    cap: usize,
) -> Vec<ProductId> {
    let mut rows: Vec<usize> = combo
        .iter()
        .zip(blocks)
        .map(|(&i, occ)| occ[i as usize].min_row)
        .collect();
    let last_block = &blocks[blocks.len() - 1][combo[combo.len() - 1] as usize];
    let mut out = Vec::with_capacity(last_block.witness_rows.len().min(cap));
    for &w in last_block.witness_rows.iter().take(cap) {
        *rows.last_mut().expect("non-empty combo") = w;
        out.push(product.encode(&rows).expect("block rows in range"));
    }
    out
}

/// Does the joinable pair hold between the given block keys?
fn pair_holds(p: &PairInfo, keys: &[&Vec<KeyVal>]) -> bool {
    let ka = &keys[p.occ_a][p.pos_a];
    let kb = &keys[p.occ_b][p.pos_b];
    if p.occ_a == p.occ_b {
        // Within one row sentinels compare meaningfully.
        ka == kb
    } else {
        // Across occurrences only real (partner-domain) values can match.
        matches!((ka, kb), (KeyVal::Val(x), KeyVal::Val(y)) if x == y)
    }
}

/// Dense sweep: enumerate every block combination in mixed-radix order
/// (last occurrence fastest) and evaluate all pairs per combination.
fn sweep_dense(
    product: &Product,
    pairs: &[PairInfo],
    blocks: &[Vec<Block>],
    max_sweep: u64,
    cap: usize,
    accs: &mut HashMap<Vec<u32>, Acc>,
) -> Result<u64, FactorizeError> {
    let mut combos: u64 = 1;
    for occ in blocks {
        combos = combos
            .checked_mul(occ.len() as u64)
            .ok_or(FactorizeError::SweepTooLarge {
                cost: u64::MAX,
                limit: max_sweep,
            })?;
    }
    if combos == 0 {
        return Ok(0);
    }
    if combos > max_sweep {
        return Err(FactorizeError::SweepTooLarge {
            cost: combos,
            limit: max_sweep,
        });
    }
    let n = blocks.len();
    let mut sel = vec![0u32; n];
    let mut rows = vec![0usize; n];
    loop {
        let keys: Vec<&Vec<KeyVal>> = sel
            .iter()
            .zip(blocks)
            .map(|(&i, occ)| &occ[i as usize].key)
            .collect();
        let pattern: Vec<u32> = pairs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| pair_holds(p, &keys).then_some(i as u32))
            .collect();
        let mut count: u64 = 1;
        for (slot, (&i, occ)) in rows.iter_mut().zip(sel.iter().zip(blocks)) {
            let b = &occ[i as usize];
            count *= b.count;
            *slot = b.min_row;
        }
        let min_id = product.encode(&rows).expect("block rows in range");
        accs.entry(pattern)
            .or_default()
            .add(count, min_id.rank(), &sel, cap);
        // Mixed-radix increment, last occurrence fastest.
        let mut k = n;
        loop {
            if k == 0 {
                return Ok(combos);
            }
            k -= 1;
            sel[k] += 1;
            if (sel[k] as usize) < blocks[k].len() {
                break;
            }
            sel[k] = 0;
        }
    }
}

/// Sparse sweep for binary products: an inverted value index over the second
/// occurrence's blocks yields, per first-occurrence block, exactly the
/// partner blocks that share a value (the only ones where any cross atom can
/// hold); every remaining partner block contributes to the no-cross-atom
/// default pattern by subtraction, per intra-pattern class.
fn sweep_sparse(
    product: &Product,
    pairs: &[PairInfo],
    blocks: &[Vec<Block>],
    max_sweep: u64,
    cap: usize,
    accs: &mut HashMap<Vec<u32>, Acc>,
) -> Result<u64, FactorizeError> {
    debug_assert_eq!(blocks.len(), 2);
    let (a_blocks, b_blocks) = (&blocks[0], &blocks[1]);

    // Inverted index: real value -> B blocks containing it (dedup per block).
    let mut index: HashMap<&Value, Vec<u32>> = HashMap::new();
    for (i, b) in b_blocks.iter().enumerate() {
        let mut seen: Vec<&Value> = Vec::new();
        for kv in &b.key {
            if let KeyVal::Val(v) = kv {
                if !seen.contains(&v) {
                    seen.push(v);
                    index.entry(v).or_default().push(i as u32);
                }
            }
        }
    }

    // Intra-pattern classes of B blocks (a single class under cross-only
    // scope, where no intra pair exists).
    let intra_of = |occ: usize, key: &Vec<KeyVal>| -> Vec<u32> {
        pairs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                (p.occ_a == occ && p.occ_b == occ && pair_holds(p, &[key, key])).then_some(i as u32)
            })
            .collect()
    };
    let mut class_of: Vec<u32> = Vec::with_capacity(b_blocks.len());
    let mut class_index: HashMap<Vec<u32>, u32> = HashMap::new();
    // Per class: (intra pattern, total rows, member blocks ascending by min_row).
    let mut classes: Vec<(Vec<u32>, u64, Vec<u32>)> = Vec::new();
    for (i, b) in b_blocks.iter().enumerate() {
        let pattern = intra_of(1, &b.key);
        let c = *class_index.entry(pattern.clone()).or_insert_with(|| {
            classes.push((pattern, 0, Vec::new()));
            (classes.len() - 1) as u32
        });
        classes[c as usize].1 += b.count;
        classes[c as usize].2.push(i as u32);
        class_of.push(c);
    }

    // Cost guard: candidate pairs sharing a value, plus the per-A-block
    // class walks (one class under cross-only scope).
    let mut cost: u64 = 0;
    for a in a_blocks {
        let mut seen: Vec<&Value> = Vec::new();
        for kv in &a.key {
            if let KeyVal::Val(v) = kv {
                if !seen.contains(&v) {
                    seen.push(v);
                    cost = cost.saturating_add(index.get(v).map_or(0, |l| l.len() as u64));
                }
            }
        }
        cost = cost.saturating_add(classes.len() as u64);
    }
    if cost > max_sweep {
        return Err(FactorizeError::SweepTooLarge {
            cost,
            limit: max_sweep,
        });
    }

    let cross: Vec<(usize, &PairInfo)> = pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.occ_a != p.occ_b)
        .collect();
    let mut swept: u64 = 0;
    let mut candidates: Vec<u32> = Vec::new();
    let mut matched: HashSet<u32> = HashSet::new();
    let mut matched_rows: Vec<u64> = Vec::new();
    for (ai, a) in a_blocks.iter().enumerate() {
        let intra_a = intra_of(0, &a.key);
        candidates.clear();
        for kv in &a.key {
            if let KeyVal::Val(v) = kv {
                if let Some(l) = index.get(v) {
                    candidates.extend_from_slice(l);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        matched.clear();
        matched_rows.clear();
        matched_rows.resize(classes.len(), 0);
        for &bi in &candidates {
            let b = &b_blocks[bi as usize];
            let keys = [&a.key, &b.key];
            let mut pattern = intra_a.clone();
            pattern.extend(classes[class_of[bi as usize] as usize].0.iter().copied());
            for &(i, p) in &cross {
                if pair_holds(p, &keys) {
                    pattern.push(i as u32);
                }
            }
            pattern.sort_unstable();
            let min_id = product
                .encode(&[a.min_row, b.min_row])
                .expect("block rows in range");
            accs.entry(pattern).or_default().add(
                a.count * b.count,
                min_id.rank(),
                &[ai as u32, bi],
                cap,
            );
            matched.insert(bi);
            matched_rows[class_of[bi as usize] as usize] += b.count;
            swept += 1;
        }
        // Unmatched B blocks take the default (no cross atom) pattern.
        for (c, (intra_b, total, members)) in classes.iter().enumerate() {
            let unmatched = total - matched_rows[c];
            if unmatched == 0 {
                continue;
            }
            let mut pattern = intra_a.clone();
            pattern.extend(intra_b.iter().copied());
            pattern.sort_unstable();
            let acc = accs.entry(pattern).or_default();
            acc.count += a.count * unmatched;
            // Witness entries: the first `cap` unmatched blocks (ascending
            // min_row) under this A block. Earlier A blocks dominate the
            // rank order, so per-A candidates suffice for the global K-min.
            let mut offered = 0usize;
            for &bi in members {
                if matched.contains(&bi) {
                    continue;
                }
                let b = &b_blocks[bi as usize];
                let min_id = product
                    .encode(&[a.min_row, b.min_row])
                    .expect("block rows in range");
                let pos = acc.entries.partition_point(|(id, _)| *id < min_id.rank());
                if pos < cap {
                    acc.entries
                        .insert(pos, (min_id.rank(), vec![ai as u32, bi]));
                    acc.entries.truncate(cap);
                } else {
                    break;
                }
                offered += 1;
                if offered >= cap {
                    break;
                }
            }
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::DataType;
    use crate::IntoSharedRelation;

    /// Count and tuple ids of one brute-forced signature group.
    type PatternEntry = (u64, Vec<ProductId>);

    /// Brute force: group product tuples by their joinable-pair pattern.
    fn brute(product: &Product, cross_only: bool) -> Vec<SigGroup> {
        let pairs = joinable_pairs(product.schema(), cross_only);
        let mut by_pattern: HashMap<Vec<(GlobalAttr, GlobalAttr)>, PatternEntry> = HashMap::new();
        for (id, t) in product.iter() {
            let pattern: Vec<_> = pairs
                .iter()
                .copied()
                .filter(|&(a, b)| t[a.index()] == t[b.index()])
                .collect();
            let e = by_pattern.entry(pattern).or_insert((0, Vec::new()));
            e.0 += 1;
            e.1.push(id);
        }
        let mut out: Vec<SigGroup> = by_pattern
            .into_iter()
            .map(|(pattern, (count, ids))| SigGroup {
                pattern,
                count,
                min_id: ids[0],
                witnesses: ids,
            })
            .collect();
        out.sort_unstable_by_key(|g| g.min_id);
        out
    }

    fn check(product: &Product, options: &FactorizeOptions) {
        let expect = brute(product, options.cross_only);
        for force_dense in [false, true] {
            let opts = FactorizeOptions {
                force_dense,
                ..*options
            };
            let got = factorize(product, &opts).expect("factorize succeeds");
            assert_eq!(got.groups.len(), expect.len(), "group count");
            for (g, e) in got.groups.iter().zip(&expect) {
                let mut gp = g.pattern.clone();
                let mut ep = e.pattern.clone();
                gp.sort_unstable();
                ep.sort_unstable();
                assert_eq!(gp, ep, "pattern at {:?}", g.min_id);
                assert_eq!(g.count, e.count, "count at {:?}", g.min_id);
                assert_eq!(g.min_id, e.min_id, "min id");
                assert!(!g.witnesses.is_empty());
                assert_eq!(g.witnesses[0], g.min_id, "min id is first witness");
                let expected_len = (e.count as usize).min(opts.max_witnesses.max(1));
                assert!(
                    g.witnesses.len() <= opts.max_witnesses.max(1)
                        && !g.witnesses.is_empty()
                        && g.witnesses.len() <= expected_len,
                    "witness count {} vs count {}",
                    g.witnesses.len(),
                    e.count
                );
                let mut sorted = g.witnesses.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, g.witnesses, "witnesses ascending and distinct");
                for w in &g.witnesses {
                    assert!(e.witnesses.contains(w), "witness {w} is a member");
                }
            }
        }
    }

    fn flights() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Paris", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Lille", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![tup!["Lille", "AF"], tup!["NYC", "AA"], tup!["Paris", "SPG"]],
        )
        .unwrap()
    }

    #[test]
    fn matches_brute_force_on_the_paper_instance() {
        let p = Product::new(vec![&flights(), &hotels()]).unwrap();
        check(&p, &FactorizeOptions::default());
        check(
            &p,
            &FactorizeOptions {
                cross_only: false,
                ..Default::default()
            },
        );
    }

    #[test]
    fn self_join_with_duplicate_rows() {
        let rel = Relation::new(
            RelationSchema::of("e", &[("src", DataType::Int), ("dst", DataType::Int)]).unwrap(),
            vec![
                tup![1, 2],
                tup![2, 3],
                tup![1, 2],
                tup![3, 1],
                tup![2, 3],
                tup![2, 3],
            ],
        )
        .unwrap();
        let shared = rel.into_shared();
        let p = Product::new(vec![shared.clone(), shared]).unwrap();
        check(&p, &FactorizeOptions::default());
        check(
            &p,
            &FactorizeOptions {
                cross_only: false,
                ..Default::default()
            },
        );
    }

    #[test]
    fn empty_relation_yields_no_groups() {
        let empty = Relation::empty(RelationSchema::of("a", &[("x", DataType::Int)]).unwrap());
        let other = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2]],
        )
        .unwrap();
        let p = Product::new(vec![&empty, &other]).unwrap();
        let f = factorize(&p, &FactorizeOptions::default()).unwrap();
        assert!(f.groups.is_empty());
        let dense = factorize(
            &p,
            &FactorizeOptions {
                force_dense: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(dense.groups.is_empty());
    }

    #[test]
    fn all_rows_in_one_block_when_values_never_join() {
        // Every From/To value is disjoint from every City value, so all
        // flight rows collapse into one block per distinct sentinel layout.
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            vec![tup![100], tup![200], tup![300]],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2]],
        )
        .unwrap();
        let p = Product::new(vec![&a, &b]).unwrap();
        let f = factorize(&p, &FactorizeOptions::default()).unwrap();
        assert_eq!(f.blocks_per_occurrence, vec![1, 1]);
        assert_eq!(f.groups.len(), 1);
        assert_eq!(f.groups[0].count, 6);
        assert!(f.groups[0].pattern.is_empty());
        check(&p, &FactorizeOptions::default());
    }

    #[test]
    fn three_way_products_use_the_dense_sweep() {
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int)]).unwrap(),
            vec![tup![1], tup![3]],
        )
        .unwrap();
        let c = Relation::new(
            RelationSchema::of("c", &[("z", DataType::Int)]).unwrap(),
            vec![tup![2], tup![1], tup![3]],
        )
        .unwrap();
        let p = Product::new(vec![&a, &b, &c]).unwrap();
        check(&p, &FactorizeOptions::default());
        check(
            &p,
            &FactorizeOptions {
                cross_only: false,
                ..Default::default()
            },
        );
    }

    #[test]
    fn nulls_match_only_nulls_of_the_same_declared_type() {
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int), ("s", DataType::Text)]).unwrap(),
            vec![
                Tuple::new(vec![Value::Null, Value::text("k")]),
                Tuple::new(vec![Value::Int(7), Value::Null]),
            ],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int), ("t", DataType::Text)]).unwrap(),
            vec![
                Tuple::new(vec![Value::Null, Value::Null]),
                Tuple::new(vec![Value::Int(7), Value::text("k")]),
            ],
        )
        .unwrap();
        let p = Product::new(vec![&a, &b]).unwrap();
        check(&p, &FactorizeOptions::default());
        check(
            &p,
            &FactorizeOptions {
                cross_only: false,
                ..Default::default()
            },
        );
    }

    use crate::tuple::Tuple;

    #[test]
    fn sweep_guard_trips_and_reports_cost() {
        let p = Product::new(vec![&flights(), &hotels()]).unwrap();
        let err = factorize(
            &p,
            &FactorizeOptions {
                max_sweep: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FactorizeError::SweepTooLarge { .. }));
        assert!(err.to_string().contains("factorization too large"));
    }

    #[test]
    fn no_joinable_pairs_is_an_error() {
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            vec![tup![1]],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Text)]).unwrap(),
            vec![tup!["z"]],
        )
        .unwrap();
        let p = Product::new(vec![&a, &b]).unwrap();
        assert_eq!(
            factorize(&p, &FactorizeOptions::default()).unwrap_err(),
            FactorizeError::NoJoinablePairs
        );
    }

    #[test]
    fn duplicate_heavy_log_compresses_to_few_blocks() {
        // An event-log-shaped relation: many duplicate edges over a tiny
        // domain. Blocks (and sweep cost) depend on distinct rows only.
        let rows: Vec<Tuple> = (0..500)
            .map(|i| tup![(i % 4) as i64, ((i / 4) % 3) as i64])
            .collect();
        let rel = Relation::new(
            RelationSchema::of("e", &[("src", DataType::Int), ("dst", DataType::Int)]).unwrap(),
            rows,
        )
        .unwrap();
        let shared = rel.into_shared();
        let p = Product::new(vec![shared.clone(), shared]).unwrap();
        assert_eq!(p.size(), 250_000);
        let f = factorize(&p, &FactorizeOptions::default()).unwrap();
        assert!(f.blocks_per_occurrence[0] <= 12);
        assert_eq!(f.groups.iter().map(|g| g.count).sum::<u64>(), 250_000);
        check(&p, &FactorizeOptions::default());
    }
}
