//! Per-attribute statistics and equality selectivity estimation.
//!
//! JIM assumes *no* metadata, but a real deployment sitting on raw CSVs
//! can cheaply collect value histograms and use them to (a) show the user
//! how selective each candidate atom is, and (b) size join outputs. The
//! estimates here are exact for the collected sample (full histograms, no
//! sketches — instances are interactive-scale by construction).

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::{GlobalAttr, JoinSchema};
use crate::value::Value;
use std::collections::HashMap;

/// Histogram-backed statistics of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStats {
    /// Total rows observed.
    pub rows: u64,
    /// Rows with a NULL in this attribute.
    pub nulls: u64,
    /// Value frequencies (excluding NULLs).
    pub histogram: HashMap<Value, u64>,
}

impl AttributeStats {
    /// Collect statistics for attribute `index` of `relation`.
    pub fn collect(relation: &Relation, index: usize) -> AttributeStats {
        let mut histogram: HashMap<Value, u64> = HashMap::new();
        let mut nulls = 0u64;
        for row in relation.rows() {
            let v = &row[index];
            if v.is_null() {
                nulls += 1;
            } else {
                *histogram.entry(v.clone()).or_insert(0) += 1;
            }
        }
        AttributeStats {
            rows: relation.len() as u64,
            nulls,
            histogram,
        }
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> u64 {
        self.histogram.len() as u64
    }

    /// Is the attribute a key of its relation (all values distinct and
    /// non-NULL)?
    pub fn is_key(&self) -> bool {
        self.nulls == 0 && self.distinct() == self.rows
    }

    /// Exact number of value matches against another attribute's
    /// histogram: `Σ_v freq_self(v) · freq_other(v)`. NULLs never match
    /// (SQL semantics; JIM's signature computation treats NULL = NULL as
    /// equal only within one column pair — see `Value` docs).
    pub fn equality_matches(&self, other: &AttributeStats) -> u64 {
        // Iterate the smaller histogram.
        let (small, large) = if self.histogram.len() <= other.histogram.len() {
            (&self.histogram, &other.histogram)
        } else {
            (&other.histogram, &self.histogram)
        };
        small
            .iter()
            .map(|(v, &c)| c * large.get(v).copied().unwrap_or(0))
            .sum()
    }
}

/// Statistics for every attribute of a join view, plus atom selectivity.
#[derive(Debug, Clone)]
pub struct JoinStats {
    per_attr: Vec<AttributeStats>,
    schema: JoinSchema,
    product_size: u64,
}

impl JoinStats {
    /// Collect statistics for the given relation occurrences (must match
    /// the join schema's occurrence order). Accepts any slice of
    /// relation handles (`&Relation`, `Arc<Relation>`, …).
    pub fn collect<R: std::ops::Deref<Target = Relation>>(
        relations: &[R],
        schema: &JoinSchema,
    ) -> Result<JoinStats> {
        let mut per_attr = Vec::with_capacity(schema.num_attrs());
        for ga in schema.attrs() {
            let (rel, local) = schema.locate(ga)?;
            per_attr.push(AttributeStats::collect(&relations[rel], local));
        }
        let product_size = relations.iter().map(|r| r.len() as u64).product();
        Ok(JoinStats {
            per_attr,
            schema: schema.clone(),
            product_size,
        })
    }

    /// Statistics of one attribute.
    pub fn attr(&self, ga: GlobalAttr) -> &AttributeStats {
        &self.per_attr[ga.index()]
    }

    /// Exact selectivity of the atom `a ≍ b` over the cartesian product:
    /// fraction of product tuples in which the two attributes are equal.
    /// (Exact because histograms are full, not sampled.)
    pub fn atom_selectivity(&self, a: GlobalAttr, b: GlobalAttr) -> Result<f64> {
        let (ra, _) = self.schema.locate(a)?;
        let (rb, _) = self.schema.locate(b)?;
        if self.product_size == 0 {
            return Ok(0.0);
        }
        let matches = self.per_attr[a.index()].equality_matches(&self.per_attr[b.index()]);
        // For cross-relation atoms the pairing is free in the product:
        // matches × (product of the remaining relations' sizes).
        let rows_a = self.per_attr[a.index()].rows.max(1);
        let rows_b = self.per_attr[b.index()].rows.max(1);
        if ra != rb {
            Ok(matches as f64 / (rows_a as f64 * rows_b as f64))
        } else {
            // Intra-relation atom: matches within one row, i.e. count rows
            // where both positions are equal.
            // `equality_matches` over the same relation counts row pairs;
            // intra selectivity needs a row scan instead, so signal it.
            Err(crate::error::RelationError::InvalidJoin {
                message: "intra-relation atom selectivity needs a row scan; use Relation::filter"
                    .into(),
            })
        }
    }

    /// Estimated join output size for a single cross-relation atom.
    pub fn atom_output_rows(&self, a: GlobalAttr, b: GlobalAttr) -> Result<f64> {
        Ok(self.atom_selectivity(a, b)? * self.product_size as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::DataType;

    fn customers() -> Relation {
        Relation::new(
            RelationSchema::of("c", &[("id", DataType::Int), ("city", DataType::Text)]).unwrap(),
            vec![tup![1, "Lille"], tup![2, "Paris"], tup![3, "Paris"]],
        )
        .unwrap()
    }

    fn orders() -> Relation {
        Relation::new(
            RelationSchema::of("o", &[("cust", DataType::Int), ("dest", DataType::Text)]).unwrap(),
            vec![
                tup![1, "Paris"],
                tup![1, "Lille"],
                tup![2, "Paris"],
                tup![9, "Rome"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn attribute_stats_basics() {
        let c = customers();
        let s = AttributeStats::collect(&c, 1);
        assert_eq!(s.rows, 3);
        assert_eq!(s.nulls, 0);
        assert_eq!(s.distinct(), 2);
        assert!(!s.is_key());
        let id = AttributeStats::collect(&c, 0);
        assert!(id.is_key());
    }

    #[test]
    fn nulls_are_counted_not_histogrammed() {
        let r = Relation::new(
            RelationSchema::of("r", &[("x", DataType::Int)]).unwrap(),
            vec![
                tup![1],
                crate::Tuple::new(vec![Value::Null]),
                crate::Tuple::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let s = AttributeStats::collect(&r, 0);
        assert_eq!(s.nulls, 2);
        assert_eq!(s.distinct(), 1);
        assert!(!s.is_key());
    }

    #[test]
    fn equality_matches_counts_pairs() {
        let c = customers();
        let o = orders();
        let cid = AttributeStats::collect(&c, 0);
        let ocust = AttributeStats::collect(&o, 0);
        // id=1 matches 2 orders, id=2 matches 1, id=3 matches 0 -> 3.
        assert_eq!(cid.equality_matches(&ocust), 3);
        assert_eq!(ocust.equality_matches(&cid), 3); // symmetric
    }

    #[test]
    fn atom_selectivity_is_exact() {
        let c = customers();
        let o = orders();
        let schema = JoinSchema::new(vec![c.schema().clone(), o.schema().clone()]).unwrap();
        let stats = JoinStats::collect(&[&c, &o], &schema).unwrap();
        let a = schema.global_by_name(0, "id").unwrap();
        let b = schema.global_by_name(1, "cust").unwrap();
        // 3 matching pairs over 12 product tuples.
        let sel = stats.atom_selectivity(a, b).unwrap();
        assert!((sel - 0.25).abs() < 1e-12);
        assert!((stats.atom_output_rows(a, b).unwrap() - 3.0).abs() < 1e-12);

        // Verify against a real join.
        let p = crate::Product::new(vec![&c, &o]).unwrap();
        let spec = crate::spec_by_names(p.schema(), &[((0, "id"), (1, "cust"))]).unwrap();
        assert_eq!(spec.eval_hash(&p).unwrap().len(), 3);
    }

    #[test]
    fn intra_relation_selectivity_is_rejected() {
        let c = customers();
        let schema = JoinSchema::new(vec![c.schema().clone(), c.schema().clone()]).unwrap();
        let stats = JoinStats::collect(&[&c, &c], &schema).unwrap();
        let a = schema.global(0, 0).unwrap();
        let b = schema.global(0, 1).unwrap();
        assert!(stats.atom_selectivity(a, b).is_err());
    }

    #[test]
    fn empty_product_selectivity_zero() {
        let empty = Relation::empty(RelationSchema::of("e", &[("x", DataType::Int)]).unwrap());
        let c = customers();
        let schema = JoinSchema::new(vec![c.schema().clone(), empty.schema().clone()]).unwrap();
        let stats = JoinStats::collect(&[&c, &empty], &schema).unwrap();
        let a = schema.global_by_name(0, "id").unwrap();
        let b = schema.global_by_name(1, "x").unwrap();
        assert_eq!(stats.atom_selectivity(a, b).unwrap(), 0.0);
    }
}
