//! Relation schemas and the *join schema* over several relations.
//!
//! JIM operates on the cartesian product of `n ≥ 2` relations. The
//! [`JoinSchema`] concatenates their attribute lists and gives every
//! attribute a **global index** ([`GlobalAttr`]) used by equality atoms.

use crate::error::{RelationError, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.dtype)
    }
}

/// Schema of a single relation: a name plus an ordered attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Result<Self> {
        let name = name.into();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        Ok(RelationSchema { name, attributes })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(name: impl Into<String>, attrs: &[(&str, DataType)]) -> Result<Self> {
        RelationSchema::new(
            name,
            attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        )
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered attribute list.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the attribute with the given name.
    pub fn index_of(&self, attribute: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == attribute)
            .ok_or_else(|| RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attribute.to_string(),
            })
    }

    /// Attribute at `idx`, if any.
    pub fn attribute(&self, idx: usize) -> Option<&Attribute> {
        self.attributes.get(idx)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// Index of an attribute in the *concatenated* schema of a join
/// (`0 ..` over all relations in order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAttr(pub u32);

impl GlobalAttr {
    /// The raw index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The concatenated schema of `n` relations participating in a join.
///
/// The same relation may appear several times (self-joins — the Set-cards
/// demo of Figure 5 joins the deck with itself); occurrences are
/// distinguished by their position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSchema {
    relations: Arc<[RelationSchema]>,
    /// `offsets[i]` = global index of the first attribute of relation `i`.
    offsets: Vec<u32>,
    total_attrs: u32,
}

impl JoinSchema {
    /// Build a join schema over the given relation occurrences.
    pub fn new(relations: Vec<RelationSchema>) -> Result<Self> {
        if relations.is_empty() {
            return Err(RelationError::InvalidJoin {
                message: "a join schema needs at least one relation".into(),
            });
        }
        let mut offsets = Vec::with_capacity(relations.len());
        let mut total: u32 = 0;
        for r in &relations {
            offsets.push(total);
            total += r.arity() as u32;
        }
        Ok(JoinSchema {
            relations: relations.into(),
            offsets,
            total_attrs: total,
        })
    }

    /// The participating relation schemas, in order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Number of relation occurrences.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of attributes across all occurrences.
    pub fn num_attrs(&self) -> usize {
        self.total_attrs as usize
    }

    /// Map a global attribute to `(relation occurrence, local index)`.
    pub fn locate(&self, attr: GlobalAttr) -> Result<(usize, usize)> {
        if attr.0 >= self.total_attrs {
            return Err(RelationError::AttrOutOfRange {
                index: attr.index(),
                len: self.num_attrs(),
            });
        }
        // offsets is sorted; find the last offset <= attr.
        let rel = match self.offsets.binary_search(&attr.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Ok((rel, (attr.0 - self.offsets[rel]) as usize))
    }

    /// Map `(relation occurrence, local index)` to a global attribute.
    pub fn global(&self, rel: usize, local: usize) -> Result<GlobalAttr> {
        let schema = self
            .relations
            .get(rel)
            .ok_or_else(|| RelationError::InvalidJoin {
                message: format!("relation occurrence {rel} out of range"),
            })?;
        if local >= schema.arity() {
            return Err(RelationError::UnknownAttribute {
                relation: schema.name().to_string(),
                attribute: format!("<local index {local}>"),
            });
        }
        Ok(GlobalAttr(self.offsets[rel] + local as u32))
    }

    /// Resolve `occurrence.attribute_name` to a global attribute.
    pub fn global_by_name(&self, rel: usize, attribute: &str) -> Result<GlobalAttr> {
        let schema = self
            .relations
            .get(rel)
            .ok_or_else(|| RelationError::InvalidJoin {
                message: format!("relation occurrence {rel} out of range"),
            })?;
        let local = schema.index_of(attribute)?;
        self.global(rel, local)
    }

    /// The attribute metadata behind a global index.
    pub fn attribute(&self, attr: GlobalAttr) -> Result<&Attribute> {
        let (rel, local) = self.locate(attr)?;
        Ok(&self.relations[rel].attributes()[local])
    }

    /// Declared type of a global attribute.
    pub fn dtype(&self, attr: GlobalAttr) -> Result<DataType> {
        Ok(self.attribute(attr)?.dtype)
    }

    /// A unique, human-readable name for a global attribute.
    ///
    /// Uses `rel.attr` when the relation occurs once, `rel#k.attr` for the
    /// k-th occurrence in a self-join.
    pub fn qualified_name(&self, attr: GlobalAttr) -> Result<String> {
        let (rel, local) = self.locate(attr)?;
        let schema = &self.relations[rel];
        let occurrences = self
            .relations
            .iter()
            .filter(|r| r.name() == schema.name())
            .count();
        let attr_name = &schema.attributes()[local].name;
        if occurrences > 1 {
            let occurrence_idx = self.relations[..rel]
                .iter()
                .filter(|r| r.name() == schema.name())
                .count();
            Ok(format!(
                "{}#{}.{}",
                schema.name(),
                occurrence_idx + 1,
                attr_name
            ))
        } else {
            Ok(format!("{}.{}", schema.name(), attr_name))
        }
    }

    /// SQL alias for a relation occurrence (`r1`, `r2`, …); stable and short,
    /// used by the SQL renderer.
    pub fn sql_alias(&self, rel: usize) -> String {
        format!("r{}", rel + 1)
    }

    /// Iterate over all global attributes.
    pub fn attrs(&self) -> impl Iterator<Item = GlobalAttr> + '_ {
        (0..self.total_attrs).map(GlobalAttr)
    }

    /// True iff the two attributes live in different relation occurrences.
    pub fn cross_relation(&self, a: GlobalAttr, b: GlobalAttr) -> Result<bool> {
        Ok(self.locate(a)?.0 != self.locate(b)?.0)
    }
}

impl fmt::Display for JoinSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                f.write_str(" × ")?;
            }
            write!(f, "{}", r.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> RelationSchema {
        RelationSchema::of(
            "flights",
            &[
                ("From", DataType::Text),
                ("To", DataType::Text),
                ("Airline", DataType::Text),
            ],
        )
        .unwrap()
    }

    fn hotels() -> RelationSchema {
        RelationSchema::of(
            "hotels",
            &[("City", DataType::Text), ("Discount", DataType::Text)],
        )
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = RelationSchema::of("r", &[("a", DataType::Int), ("a", DataType::Text)]);
        assert!(matches!(err, Err(RelationError::DuplicateAttribute { .. })));
    }

    #[test]
    fn index_of_finds_attributes() {
        let f = flights();
        assert_eq!(f.index_of("To").unwrap(), 1);
        assert!(f.index_of("Nope").is_err());
    }

    #[test]
    fn join_schema_global_indexing() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert_eq!(js.num_attrs(), 5);
        assert_eq!(js.global(0, 1).unwrap(), GlobalAttr(1));
        assert_eq!(js.global(1, 0).unwrap(), GlobalAttr(3));
        assert_eq!(js.locate(GlobalAttr(3)).unwrap(), (1, 0));
        assert_eq!(js.locate(GlobalAttr(2)).unwrap(), (0, 2));
        assert!(js.locate(GlobalAttr(5)).is_err());
        assert!(js.global(2, 0).is_err());
        assert!(js.global(0, 3).is_err());
    }

    #[test]
    fn join_schema_round_trip_all_attrs() {
        let js = JoinSchema::new(vec![flights(), hotels(), flights()]).unwrap();
        for attr in js.attrs() {
            let (rel, local) = js.locate(attr).unwrap();
            assert_eq!(js.global(rel, local).unwrap(), attr);
        }
    }

    #[test]
    fn qualified_names_disambiguate_self_joins() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert_eq!(js.qualified_name(GlobalAttr(1)).unwrap(), "flights.To");
        assert_eq!(js.qualified_name(GlobalAttr(3)).unwrap(), "hotels.City");

        let selfjoin = JoinSchema::new(vec![flights(), flights()]).unwrap();
        assert_eq!(
            selfjoin.qualified_name(GlobalAttr(0)).unwrap(),
            "flights#1.From"
        );
        assert_eq!(
            selfjoin.qualified_name(GlobalAttr(3)).unwrap(),
            "flights#2.From"
        );
    }

    #[test]
    fn global_by_name() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert_eq!(js.global_by_name(1, "Discount").unwrap(), GlobalAttr(4));
        assert!(js.global_by_name(1, "From").is_err());
    }

    #[test]
    fn cross_relation_test() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert!(js.cross_relation(GlobalAttr(1), GlobalAttr(3)).unwrap());
        assert!(!js.cross_relation(GlobalAttr(0), GlobalAttr(2)).unwrap());
    }

    #[test]
    fn empty_join_schema_rejected() {
        assert!(JoinSchema::new(vec![]).is_err());
    }

    #[test]
    fn display_formats() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert_eq!(js.to_string(), "flights × hotels");
        assert_eq!(
            flights().to_string(),
            "flights(From text, To text, Airline text)"
        );
    }

    #[test]
    fn dtype_lookup() {
        let js = JoinSchema::new(vec![flights(), hotels()]).unwrap();
        assert_eq!(js.dtype(GlobalAttr(4)).unwrap(), DataType::Text);
    }
}
