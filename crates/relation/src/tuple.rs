//! Tuples: fixed-arity rows of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A row of values. Cheap to clone only via its values (text values are
/// `Arc<str>`); the container itself is a boxed slice to keep the type at
/// two words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple from owned values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Concatenate several tuples into one (the product-tuple constructor).
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Tuple>) -> Tuple {
        let parts: Vec<&Tuple> = parts.into_iter().collect();
        let total = parts.iter().map(|t| t.arity()).sum();
        let mut values = Vec::with_capacity(total);
        for part in parts {
            values.extend_from_slice(part.values());
        }
        Tuple::new(values)
    }

    /// Project the tuple onto the given positions (positions may repeat).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Build a [`Tuple`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use jim_relation::tup;
/// let t = tup!["Paris", 42, true];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tup!["Paris", "Lille", "AF"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], Value::text("Lille"));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn concat_is_product_tuple() {
        let flight = tup!["Paris", "Lille", "AF"];
        let hotel = tup!["Lille", "AF"];
        let joined = Tuple::concat([&flight, &hotel]);
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined[3], Value::text("Lille"));
        assert_eq!(joined[4], Value::text("AF"));
    }

    #[test]
    fn concat_empty_is_empty() {
        let t = Tuple::concat([]);
        assert_eq!(t.arity(), 0);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = tup![1, 2, 3];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tup![3, 1, 1]);
    }

    #[test]
    fn display() {
        let t = tup!["a", 1];
        assert_eq!(t.to_string(), "(a, 1)");
    }

    #[test]
    fn tuples_order_lexicographically() {
        let a = tup![1, 2];
        let b = tup![1, 3];
        assert!(a < b);
    }
}
