//! Minimal CSV reading/writing (RFC-4180 subset, hand-rolled — no external
//! dependency is available offline for this).
//!
//! Supports quoted fields with embedded commas, doubled quotes, and both
//! `\n` and `\r\n` line endings. The first record is the header; column
//! types are inferred (or supplied explicitly via [`read_relation_typed`]).

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Attribute, RelationSchema};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Split CSV text into records of raw string fields.
///
/// Returns an error for an unterminated quoted field or stray quote.
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(RelationError::Csv {
                            line,
                            message: "quote in the middle of an unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the following '\n' terminates the record.
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Read a relation from CSV text, inferring a column type from the observed
/// values: a column is `Int` if every non-empty field parses as an integer,
/// else `Float` if every non-empty field parses as a number, else `Bool` if
/// every non-empty field is `true`/`false`, else `Text`.
pub fn read_relation(name: impl Into<String>, text: &str) -> Result<Relation> {
    let records = parse_records(text)?;
    let name = name.into();
    let mut it = records.into_iter();
    let header = it.next().ok_or(RelationError::Csv {
        line: 1,
        message: "missing header record".into(),
    })?;
    let body: Vec<Vec<String>> = it.collect();

    let mut types = vec![DataType::Text; header.len()];
    for (col, ty) in types.iter_mut().enumerate() {
        let mut current: Option<DataType> = None;
        for rec in &body {
            let raw = rec.get(col).map(String::as_str).unwrap_or("");
            if raw.trim().is_empty() {
                continue;
            }
            let observed = Value::infer(raw)
                .data_type()
                .expect("non-empty field infers to a typed value");
            current = Some(match current {
                None => observed,
                Some(c) => widen(c, observed),
            });
        }
        *ty = current.unwrap_or(DataType::Text);
    }

    let schema = RelationSchema::new(
        name.clone(),
        header
            .iter()
            .zip(&types)
            .map(|(h, &t)| Attribute::new(h.trim(), t))
            .collect(),
    )?;

    let mut rel = Relation::empty(schema);
    rel.reserve(body.len());
    for (i, rec) in body.iter().enumerate() {
        if rec.len() != header.len() {
            return Err(RelationError::Csv {
                line: i + 2,
                message: format!("expected {} fields, found {}", header.len(), rec.len()),
            });
        }
        let values: Vec<Value> = rec
            .iter()
            .zip(&types)
            .map(|(raw, &t)| {
                Value::parse_as(raw, t).ok_or_else(|| RelationError::Csv {
                    line: i + 2,
                    message: format!("field `{raw}` does not parse as {t}"),
                })
            })
            .collect::<Result<_>>()?;
        rel.push(Tuple::new(values))?;
    }
    Ok(rel)
}

/// Read a relation from CSV text against an explicitly declared schema
/// (header names must match the schema's attribute names, in order).
pub fn read_relation_typed(schema: RelationSchema, text: &str) -> Result<Relation> {
    let records = parse_records(text)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(RelationError::Csv {
        line: 1,
        message: "missing header record".into(),
    })?;
    if header.len() != schema.arity()
        || header
            .iter()
            .zip(schema.attributes())
            .any(|(h, a)| h.trim() != a.name)
    {
        return Err(RelationError::Csv {
            line: 1,
            message: format!("header does not match schema `{schema}`"),
        });
    }
    let mut rel = Relation::empty(schema);
    for (i, rec) in it.enumerate() {
        if rec.len() != rel.schema().arity() {
            return Err(RelationError::Csv {
                line: i + 2,
                message: format!(
                    "expected {} fields, found {}",
                    rel.schema().arity(),
                    rec.len()
                ),
            });
        }
        let values: Vec<Value> = rec
            .iter()
            .zip(rel.schema().attributes().to_vec())
            .map(|(raw, attr)| {
                Value::parse_as(raw, attr.dtype).ok_or_else(|| RelationError::Csv {
                    line: i + 2,
                    message: format!("field `{raw}` does not parse as {}", attr.dtype),
                })
            })
            .collect::<Result<_>>()?;
        rel.push(Tuple::new(values))?;
    }
    Ok(rel)
}

/// Serialize a relation to CSV text (header + records, quoting only when
/// needed).
pub fn write_relation(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    push_record(&mut out, header.iter().map(|s| s.to_string()));
    for row in rel.rows() {
        push_record(&mut out, row.values().iter().map(|v| v.to_string()));
    }
    out
}

fn push_record(out: &mut String, fields: impl Iterator<Item = String>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(&f);
        }
    }
    out.push('\n');
}

/// The widest of the current column type and a newly observed value's type.
fn widen(current: DataType, observed: DataType) -> DataType {
    use DataType::*;
    match (current, observed) {
        (Int, Float) | (Float, Int) => Float,
        _ if current == observed => current,
        _ => Text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn round_trip_simple() {
        let text = "From,To,Airline\nParis,Lille,AF\nNYC,Paris,AA\n";
        let rel = read_relation("flights", text).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().attributes()[0].dtype, DataType::Text);
        assert_eq!(write_relation(&rel), text);
    }

    #[test]
    fn infers_int_float_bool() {
        let text = "a,b,c,d\n1,1.5,true,x\n2,2,false,y\n";
        let rel = read_relation("t", text).unwrap();
        let types: Vec<DataType> = rel.schema().attributes().iter().map(|a| a.dtype).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Bool,
                DataType::Text
            ]
        );
        assert_eq!(rel.row(0).unwrap()[0], Value::Int(1));
        assert_eq!(rel.row(1).unwrap()[1], Value::Float(2.0));
    }

    #[test]
    fn quoted_fields() {
        let text = "name,notes\n\"Lille, FR\",\"said \"\"hi\"\"\"\n";
        let rel = read_relation("t", text).unwrap();
        assert_eq!(rel.row(0).unwrap()[0], Value::text("Lille, FR"));
        assert_eq!(rel.row(0).unwrap()[1], Value::text("said \"hi\""));
    }

    #[test]
    fn quoted_round_trip() {
        let text = "name\n\"a,b\"\n";
        let rel = read_relation("t", text).unwrap();
        assert_eq!(write_relation(&rel), text);
    }

    #[test]
    fn empty_fields_become_null() {
        let text = "a,b\n1,\n,x\n";
        let rel = read_relation("t", text).unwrap();
        assert!(rel.row(0).unwrap()[1].is_null());
        assert!(rel.row(1).unwrap()[0].is_null());
        // Column a still inferred Int from the non-empty field.
        assert_eq!(rel.schema().attributes()[0].dtype, DataType::Int);
    }

    #[test]
    fn crlf_line_endings() {
        let text = "a,b\r\n1,2\r\n";
        let rel = read_relation("t", text).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0).unwrap()[1], Value::Int(2));
    }

    #[test]
    fn missing_trailing_newline() {
        let text = "a\n1\n2";
        let rel = read_relation("t", text).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn ragged_record_is_error() {
        let text = "a,b\n1\n";
        assert!(matches!(
            read_relation("t", text),
            Err(RelationError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse_records("a\n\"oops").is_err());
    }

    #[test]
    fn stray_quote_is_error() {
        assert!(parse_records("a\nb\"c\n").is_err());
    }

    #[test]
    fn typed_read_checks_header() {
        let schema = RelationSchema::of("t", &[("a", DataType::Int)]).unwrap();
        assert!(read_relation_typed(schema.clone(), "a\n7\n").is_ok());
        assert!(read_relation_typed(schema.clone(), "b\n7\n").is_err());
        assert!(read_relation_typed(schema, "a\nxyz\n").is_err());
    }

    #[test]
    fn typed_read_values() {
        let schema =
            RelationSchema::of("t", &[("a", DataType::Int), ("b", DataType::Text)]).unwrap();
        let rel = read_relation_typed(schema, "a,b\n7,7\n").unwrap();
        assert_eq!(rel.row(0).unwrap(), &tup![7i64, "7"]);
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_relation("t", "").is_err());
    }

    #[test]
    fn header_only_gives_empty_relation() {
        let rel = read_relation("t", "a,b\n").unwrap();
        assert!(rel.is_empty());
        // Columns with no observed values default to Text.
        assert_eq!(rel.schema().attributes()[0].dtype, DataType::Text);
    }
}
