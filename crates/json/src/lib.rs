//! # `jim-json` — the JSON substrate of the JIM service layer
//!
//! A small, zero-dependency JSON implementation: a [`Json`] value tree, a
//! recursive-descent [`parse`] and a compact [`Json::render`]. The build
//! container has no crates.io access, so `serde`/`serde_json` cannot be
//! used; `jim-server`'s wire protocol and `jim-core`'s transcript
//! serialization are built on this instead. Objects preserve insertion
//! order (deterministic wire output, friendly diffs in tests).
//!
//! ## Example
//!
//! ```
//! use jim_json::Json;
//!
//! let v = Json::parse(r#"{"op":"Answer","label":"+","session":3}"#)?;
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("Answer"));
//! assert_eq!(v.get("session").and_then(Json::as_u64), Some(3));
//! let round = Json::parse(&v.render())?;
//! assert_eq!(round, v);
//! # Ok::<(), jim_json::JsonError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value. Numbers are kept as `f64` (JSON's own model); use
/// [`Json::as_u64`]/[`Json::as_i64`] for integral reads.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace), with full string escaping.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) if !n.is_finite() => out.push_str("null"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    // Integral numbers render without the ".0" so ids and
                    // counts survive a parse→render round trip textually.
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral number view (rejects fractional and out-of-range values).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && n.abs() <= 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Non-negative integral number view.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Recursive descent uses
/// one stack frame per level, so unbounded depth would let one hostile
/// input (e.g. 200k `[`s on a wire line) overflow the stack and abort the
/// process; 128 levels is far beyond any legitimate document here.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            Ok(_) => Err(self.err(format!("number `{text}` overflows f64"))),
            Err(_) => Err(self.err(format!("bad number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Number(-125.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("line\nquote\"slash\\tab\tunicode\u{1F600}\u{7}".into());
        let rendered = original.render();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-3i64).render(), "-3");
        assert_eq!(Json::Number(1.5).render(), "1.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[,]",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unescaped_control_characters_rejected() {
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn object_helpers() {
        let v = Json::object([("x", Json::from(1u64)), ("y", Json::from("z"))]);
        assert_eq!(v.get("x").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("y").unwrap().as_str(), Some("z"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn as_i64_rejects_fractional() {
        assert_eq!(Json::Number(1.5).as_i64(), None);
        assert_eq!(Json::Number(-2.0).as_i64(), Some(-2));
        assert_eq!(Json::Number(-2.0).as_u64(), None);
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        let deep_array = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = Json::parse(&deep_array).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let deep_object = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&deep_object).is_err());
        // 127 levels is fine.
        let ok = "[".repeat(127) + "1" + &"]".repeat(127);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_are_rejected_or_nulled() {
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        // A non-finite value constructed programmatically still renders
        // valid JSON.
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn wire_round_trip() {
        let text = r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"lookahead-minprune","k":3,"ok":true,"ratio":0.25}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
