//! Packed bitsets over an atom universe.
//!
//! Everything JIM computes — signatures `Θ(t)`, the upper bound `U`, negative
//! antichains, predicates — is a subset of one fixed, small atom universe, so
//! a packed `u64` bitset with subset/intersection kernels is the workhorse
//! data structure. All binary operations require both operands to come from
//! the same universe (equal capacity); this is enforced with assertions.

use std::fmt;

/// A set of atom indices within a fixed-capacity universe.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomSet {
    /// Number of valid bits.
    nbits: u32,
    /// Packed storage, little-endian blocks; trailing bits beyond `nbits`
    /// are always zero (the invariant every mutator maintains).
    blocks: Box<[u64]>,
}

impl AtomSet {
    /// The empty set in a universe of `nbits` atoms.
    pub fn empty(nbits: usize) -> Self {
        let words = nbits.div_ceil(64).max(1);
        AtomSet {
            nbits: nbits as u32,
            blocks: vec![0u64; words].into_boxed_slice(),
        }
    }

    /// The full set (all `nbits` atoms present).
    pub fn full(nbits: usize) -> Self {
        let mut s = AtomSet::empty(nbits);
        for b in s.blocks.iter_mut() {
            *b = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Build from explicit indices.
    pub fn from_indices(nbits: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = AtomSet::empty(nbits);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Zero out the bits beyond `nbits` in the last block.
    fn clear_tail(&mut self) {
        let tail = self.nbits as usize % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.nbits == 0 {
            for b in self.blocks.iter_mut() {
                *b = 0;
            }
        }
    }

    /// Universe capacity in bits.
    pub fn capacity(&self) -> usize {
        self.nbits as usize
    }

    /// Number of atoms present.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff no atom is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// True iff atom `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Add atom `i`. Panics (debug) if out of capacity.
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove atom `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    fn check_same_universe(&self, other: &AtomSet) {
        assert_eq!(
            self.nbits, other.nbits,
            "bitset operands come from different universes ({} vs {} bits)",
            self.nbits, other.nbits
        );
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &AtomSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &AtomSet) -> bool {
        other.is_subset(self)
    }

    /// Strict subset.
    pub fn is_proper_subset(&self, other: &AtomSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// New set `self ∩ other`.
    pub fn intersection(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Write `self ∩ other` into `out` without allocating — the kernel the
    /// lookahead simulation loop runs once per candidate, so it reuses one
    /// scratch set instead of allocating a fresh `AtomSet` each time.
    pub fn intersection_into(&self, other: &AtomSet, out: &mut AtomSet) {
        self.check_same_universe(other);
        self.check_same_universe(out);
        for ((o, &a), &b) in out
            .blocks
            .iter_mut()
            .zip(self.blocks.iter())
            .zip(other.blocks.iter())
        {
            *o = a & b;
        }
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &AtomSet) {
        self.check_same_universe(other);
        for (a, &b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= b;
        }
    }

    /// New set `self ∪ other`.
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = self.clone();
        for (a, &b) in out.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
        out
    }

    /// New set `self \ other`.
    pub fn difference(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = self.clone();
        for (a, &b) in out.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= !b;
        }
        out
    }

    /// True iff the sets share at least one atom.
    pub fn intersects(&self, other: &AtomSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(&self, other: &AtomSet) -> usize {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate over present atom indices in increasing order.
    pub fn iter(&self) -> AtomSetIter<'_> {
        AtomSetIter {
            set: self,
            word: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AtomSet{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                f.write_str(",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}/{}", self.nbits)
    }
}

/// Iterator over the indices present in an [`AtomSet`].
pub struct AtomSetIter<'a> {
    set: &'a AtomSet,
    word: usize,
    bits: u64,
}

impl Iterator for AtomSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a AtomSet {
    type Item = usize;
    type IntoIter = AtomSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Keep only the maximal elements (under `⊆`) of a list of sets — the
/// antichain reduction the version space applies to negative signatures.
/// Preserves first-seen order among survivors and drops duplicates.
pub fn maximal_antichain(mut sets: Vec<AtomSet>) -> Vec<AtomSet> {
    let mut out: Vec<AtomSet> = Vec::with_capacity(sets.len());
    // Sort descending by popcount so any dominator precedes its dominated.
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for s in sets {
        if !out.iter().any(|kept| s.is_subset(kept)) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = AtomSet::empty(70);
        let f = AtomSet::full(70);
        assert_eq!(e.len(), 0);
        assert_eq!(f.len(), 70);
        assert!(e.is_empty());
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
        assert_eq!(f.capacity(), 70);
    }

    #[test]
    fn full_clears_tail_bits() {
        // Capacity not a multiple of 64: trailing bits must be zero so that
        // equality and popcount are exact.
        let f = AtomSet::full(65);
        assert_eq!(f.len(), 65);
        let mut g = AtomSet::empty(65);
        for i in 0..65 {
            g.insert(i);
        }
        assert_eq!(f, g);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AtomSet::empty(10);
        s.insert(3);
        s.insert(9);
        assert!(s.contains(3));
        assert!(s.contains(9));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        AtomSet::empty(4).insert(4);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn cross_universe_ops_panic() {
        let a = AtomSet::empty(4);
        let b = AtomSet::empty(5);
        let _ = a.is_subset(&b);
    }

    #[test]
    fn subset_relations() {
        let a = AtomSet::from_indices(130, [1, 64, 129]);
        let b = AtomSet::from_indices(130, [1, 5, 64, 129]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn set_algebra() {
        let a = AtomSet::from_indices(100, [1, 2, 70]);
        let b = AtomSet::from_indices(100, [2, 70, 99]);
        assert_eq!(a.intersection(&b), AtomSet::from_indices(100, [2, 70]));
        assert_eq!(a.union(&b), AtomSet::from_indices(100, [1, 2, 70, 99]));
        assert_eq!(a.difference(&b), AtomSet::from_indices(100, [1]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&AtomSet::from_indices(100, [50])));
    }

    #[test]
    fn intersect_with_in_place() {
        let mut a = AtomSet::from_indices(10, [1, 2, 3]);
        a.intersect_with(&AtomSet::from_indices(10, [2, 3, 4]));
        assert_eq!(a, AtomSet::from_indices(10, [2, 3]));
    }

    #[test]
    fn iteration_in_order() {
        let s = AtomSet::from_indices(200, [199, 0, 64, 63, 128]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
        assert_eq!((&s).into_iter().count(), 5);
    }

    #[test]
    fn zero_capacity_set() {
        let s = AtomSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = AtomSet::full(0);
        assert!(f.is_empty());
        assert_eq!(s, f);
    }

    #[test]
    fn debug_format() {
        let s = AtomSet::from_indices(8, [1, 3]);
        assert_eq!(format!("{s:?}"), "AtomSet{1,3}/8");
    }

    #[test]
    fn antichain_keeps_maximal_only() {
        let u = 8;
        let sets = vec![
            AtomSet::from_indices(u, [1]),
            AtomSet::from_indices(u, [1, 2]),
            AtomSet::from_indices(u, [3]),
            AtomSet::from_indices(u, [1, 2]),
            AtomSet::from_indices(u, [2, 3, 4]),
        ];
        let m = maximal_antichain(sets);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&AtomSet::from_indices(u, [1, 2])));
        assert!(m.contains(&AtomSet::from_indices(u, [2, 3, 4])));
    }

    #[test]
    fn antichain_of_identical_sets() {
        let u = 4;
        let m = maximal_antichain(vec![
            AtomSet::from_indices(u, [0, 1]),
            AtomSet::from_indices(u, [0, 1]),
        ]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ordering_is_consistent_for_btree_use() {
        let a = AtomSet::from_indices(8, [0]);
        let b = AtomSet::from_indices(8, [1]);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
