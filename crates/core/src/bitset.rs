//! Packed bitsets over an atom universe.
//!
//! Everything JIM computes — signatures `Θ(t)`, the upper bound `U`, negative
//! antichains, predicates — is a subset of one fixed, small atom universe, so
//! a packed `u64` bitset with subset/intersection kernels is the workhorse
//! data structure. The word-level loops live in `jim-simd` (runtime-dispatched
//! AVX2 / portable / scalar backends, selectable via `JIM_SIMD`); this module
//! owns the bit-level semantics on top of them:
//!
//! * the **tail invariant** — bits at positions `>= nbits` in the last block
//!   are always zero, so popcount, equality and hashing are exact; every
//!   mutator maintains it (pinned by property tests below);
//! * the **universe invariant** — all binary operations require both operands
//!   to come from the same universe (equal capacity). This is enforced with
//!   `debug_assert`s, consistently on every operator: release builds trust
//!   the engine (all sets descend from one `AtomUniverse`), debug builds and
//!   the test suite catch any cross-universe mix-up.
//!
//! For the antichain sweeps that dominate label propagation,
//! [`PackedAtomSets`] lays equal-capacity sets out contiguously (row-major)
//! so `jim-simd`'s batch entry points can run a whole sweep behind a single
//! backend dispatch instead of re-dispatching per pair.

use std::fmt;

/// A set of atom indices within a fixed-capacity universe.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomSet {
    /// Number of valid bits.
    nbits: u32,
    /// Packed storage, little-endian blocks; trailing bits beyond `nbits`
    /// are always zero (the invariant every mutator maintains).
    blocks: Box<[u64]>,
}

impl AtomSet {
    /// The empty set in a universe of `nbits` atoms.
    pub fn empty(nbits: usize) -> Self {
        let words = nbits.div_ceil(64).max(1);
        AtomSet {
            nbits: nbits as u32,
            blocks: vec![0u64; words].into_boxed_slice(),
        }
    }

    /// The full set (all `nbits` atoms present).
    pub fn full(nbits: usize) -> Self {
        let mut s = AtomSet::empty(nbits);
        for b in s.blocks.iter_mut() {
            *b = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Build from explicit indices.
    pub fn from_indices(nbits: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = AtomSet::empty(nbits);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Zero out the bits beyond `nbits` in the last block.
    fn clear_tail(&mut self) {
        let tail = self.nbits as usize % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.nbits == 0 {
            for b in self.blocks.iter_mut() {
                *b = 0;
            }
        }
    }

    /// Universe capacity in bits.
    pub fn capacity(&self) -> usize {
        self.nbits as usize
    }

    /// Number of blocks backing a capacity of `nbits` (≥ 1, even empty).
    fn words_for(nbits: usize) -> usize {
        nbits.div_ceil(64).max(1)
    }

    /// Number of atoms present.
    pub fn len(&self) -> usize {
        jim_simd::popcount(&self.blocks) as usize
    }

    /// True iff no atom is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// True iff atom `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Add atom `i`. Panics (debug) if out of capacity.
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove atom `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.nbits as usize,
            "index {i} out of capacity {}",
            self.nbits
        );
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Debug-build check that `other` lives in the same universe. Every
    /// binary operator calls this; release builds rely on the engine's
    /// invariant that all sets descend from one `AtomUniverse`.
    #[inline]
    fn check_same_universe(&self, other: &AtomSet) {
        debug_assert_eq!(
            self.nbits, other.nbits,
            "bitset operands come from different universes ({} vs {} bits)",
            self.nbits, other.nbits
        );
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &AtomSet) -> bool {
        self.check_same_universe(other);
        jim_simd::subset(&self.blocks, &other.blocks)
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &AtomSet) -> bool {
        other.is_subset(self)
    }

    /// Strict subset.
    pub fn is_proper_subset(&self, other: &AtomSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// New set `self ∩ other`.
    pub fn intersection(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = AtomSet::empty(self.nbits as usize);
        jim_simd::and_into(&self.blocks, &other.blocks, &mut out.blocks);
        out
    }

    /// Write `self ∩ other` into `out` without allocating — the kernel the
    /// lookahead simulation loop runs once per candidate, so it reuses one
    /// scratch set instead of allocating a fresh `AtomSet` each time.
    pub fn intersection_into(&self, other: &AtomSet, out: &mut AtomSet) {
        self.check_same_universe(other);
        self.check_same_universe(out);
        jim_simd::and_into(&self.blocks, &other.blocks, &mut out.blocks);
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &AtomSet) {
        self.check_same_universe(other);
        jim_simd::and_assign(&mut self.blocks, &other.blocks);
    }

    /// New set `self ∪ other`.
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = AtomSet::empty(self.nbits as usize);
        jim_simd::or_into(&self.blocks, &other.blocks, &mut out.blocks);
        out
    }

    /// New set `self \ other`.
    pub fn difference(&self, other: &AtomSet) -> AtomSet {
        self.check_same_universe(other);
        let mut out = AtomSet::empty(self.nbits as usize);
        jim_simd::and_not_into(&self.blocks, &other.blocks, &mut out.blocks);
        out
    }

    /// True iff the sets share at least one atom.
    pub fn intersects(&self, other: &AtomSet) -> bool {
        self.check_same_universe(other);
        jim_simd::intersects(&self.blocks, &other.blocks)
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(&self, other: &AtomSet) -> usize {
        self.check_same_universe(other);
        jim_simd::intersection_count(&self.blocks, &other.blocks) as usize
    }

    /// Iterate over present atom indices in increasing order.
    pub fn iter(&self) -> AtomSetIter<'_> {
        AtomSetIter {
            set: self,
            word: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AtomSet{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                f.write_str(",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}/{}", self.nbits)
    }
}

/// Iterator over the indices present in an [`AtomSet`].
pub struct AtomSetIter<'a> {
    set: &'a AtomSet,
    word: usize,
    bits: u64,
}

impl Iterator for AtomSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a AtomSet {
    type Item = usize;
    type IntoIter = AtomSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A contiguous, row-major packing of equal-capacity [`AtomSet`]s — the
/// layout the `jim-simd` batch kernels sweep with **one** backend dispatch
/// and linear loads, instead of chasing one heap allocation per set.
///
/// The candidate index packs its restricted signatures and the fresh
/// negative antichain into two of these per subsumption sweep; the version
/// space keeps its negative antichain permanently packed so every
/// classification runs one [`PackedAtomSets::contains_superset_of`] sweep.
#[derive(Debug, Clone)]
pub struct PackedAtomSets {
    nbits: u32,
    /// Words per row (≥ 1, matching `AtomSet`'s backing for this capacity).
    width: usize,
    /// Row-major packed rows, `width` words each.
    words: Vec<u64>,
}

impl PackedAtomSets {
    /// An empty packing for sets of the given capacity.
    pub fn new(nbits: usize) -> Self {
        PackedAtomSets {
            nbits: nbits as u32,
            width: AtomSet::words_for(nbits),
            words: Vec::new(),
        }
    }

    /// An empty packing with room for `rows` sets.
    pub fn with_capacity(nbits: usize, rows: usize) -> Self {
        let mut p = PackedAtomSets::new(nbits);
        p.words.reserve(rows * p.width);
        p
    }

    /// Number of packed sets.
    pub fn len(&self) -> usize {
        self.words.len() / self.width
    }

    /// True iff nothing is packed.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Drop all rows, keeping the allocation (for reuse across sweeps).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Append one set. Debug-asserts the capacity matches.
    pub fn push(&mut self, s: &AtomSet) {
        debug_assert_eq!(
            s.nbits, self.nbits,
            "packed set from a different universe ({} vs {} bits)",
            s.nbits, self.nbits
        );
        self.words.extend_from_slice(&s.blocks);
    }

    /// Extend from an iterator of sets.
    pub fn extend<'a>(&mut self, sets: impl IntoIterator<Item = &'a AtomSet>) {
        for s in sets {
            self.push(s);
        }
    }

    /// True iff `x ⊆ r` for some packed row `r` — the negative-antichain
    /// membership test, one kernel dispatch for the whole sweep.
    pub fn contains_superset_of(&self, x: &AtomSet) -> bool {
        debug_assert_eq!(x.nbits, self.nbits, "query from a different universe");
        jim_simd::subset_any(&x.blocks, &self.words)
    }

    /// For every row, whether it is `⊆` some row of `negs` (the candidate
    /// subsumption sweep). `out` is overwritten with one flag per row,
    /// in packing order. One kernel dispatch for the whole sweep.
    pub fn subsumed_mask(&self, negs: &PackedAtomSets, out: &mut Vec<bool>) {
        debug_assert_eq!(self.nbits, negs.nbits, "packings from different universes");
        jim_simd::subsumed_mask(&self.words, &negs.words, self.width, out);
    }
}

/// Keep only the maximal elements (under `⊆`) of a list of sets — the
/// antichain reduction the version space applies to negative signatures.
/// Preserves first-seen order among survivors and drops duplicates.
pub fn maximal_antichain(mut sets: Vec<AtomSet>) -> Vec<AtomSet> {
    let mut out: Vec<AtomSet> = Vec::with_capacity(sets.len());
    // Sort descending by popcount so any dominator precedes its dominated.
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for s in sets {
        if !out.iter().any(|kept| s.is_subset(kept)) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = AtomSet::empty(70);
        let f = AtomSet::full(70);
        assert_eq!(e.len(), 0);
        assert_eq!(f.len(), 70);
        assert!(e.is_empty());
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
        assert_eq!(f.capacity(), 70);
    }

    #[test]
    fn full_clears_tail_bits() {
        // Capacity not a multiple of 64: trailing bits must be zero so that
        // equality and popcount are exact.
        let f = AtomSet::full(65);
        assert_eq!(f.len(), 65);
        let mut g = AtomSet::empty(65);
        for i in 0..65 {
            g.insert(i);
        }
        assert_eq!(f, g);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AtomSet::empty(10);
        s.insert(3);
        s.insert(9);
        assert!(s.contains(3));
        assert!(s.contains(9));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        AtomSet::empty(4).insert(4);
    }

    #[test]
    fn subset_relations() {
        let a = AtomSet::from_indices(130, [1, 64, 129]);
        let b = AtomSet::from_indices(130, [1, 5, 64, 129]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn set_algebra() {
        let a = AtomSet::from_indices(100, [1, 2, 70]);
        let b = AtomSet::from_indices(100, [2, 70, 99]);
        assert_eq!(a.intersection(&b), AtomSet::from_indices(100, [2, 70]));
        assert_eq!(a.union(&b), AtomSet::from_indices(100, [1, 2, 70, 99]));
        assert_eq!(a.difference(&b), AtomSet::from_indices(100, [1]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&AtomSet::from_indices(100, [50])));
    }

    #[test]
    fn intersect_with_in_place() {
        let mut a = AtomSet::from_indices(10, [1, 2, 3]);
        a.intersect_with(&AtomSet::from_indices(10, [2, 3, 4]));
        assert_eq!(a, AtomSet::from_indices(10, [2, 3]));
    }

    #[test]
    fn iteration_in_order() {
        let s = AtomSet::from_indices(200, [199, 0, 64, 63, 128]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
        assert_eq!((&s).into_iter().count(), 5);
    }

    #[test]
    fn zero_capacity_set() {
        let s = AtomSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = AtomSet::full(0);
        assert!(f.is_empty());
        assert_eq!(s, f);
    }

    #[test]
    fn debug_format() {
        let s = AtomSet::from_indices(8, [1, 3]);
        assert_eq!(format!("{s:?}"), "AtomSet{1,3}/8");
    }

    #[test]
    fn antichain_keeps_maximal_only() {
        let u = 8;
        let sets = vec![
            AtomSet::from_indices(u, [1]),
            AtomSet::from_indices(u, [1, 2]),
            AtomSet::from_indices(u, [3]),
            AtomSet::from_indices(u, [1, 2]),
            AtomSet::from_indices(u, [2, 3, 4]),
        ];
        let m = maximal_antichain(sets);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&AtomSet::from_indices(u, [1, 2])));
        assert!(m.contains(&AtomSet::from_indices(u, [2, 3, 4])));
    }

    #[test]
    fn antichain_of_identical_sets() {
        let u = 4;
        let m = maximal_antichain(vec![
            AtomSet::from_indices(u, [0, 1]),
            AtomSet::from_indices(u, [0, 1]),
        ]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ordering_is_consistent_for_btree_use() {
        let a = AtomSet::from_indices(8, [0]);
        let b = AtomSet::from_indices(8, [1]);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    // ------------------------------------------- packed sweeps

    #[test]
    fn packed_contains_superset_of() {
        let u = 70; // 2 words, 6-bit tail
        let negs = {
            let mut p = PackedAtomSets::with_capacity(u, 2);
            p.push(&AtomSet::from_indices(u, [0, 1, 65]));
            p.push(&AtomSet::from_indices(u, [3, 4]));
            p
        };
        assert_eq!(negs.len(), 2);
        assert!(!negs.is_empty());
        assert!(negs.contains_superset_of(&AtomSet::from_indices(u, [0, 65])));
        assert!(negs.contains_superset_of(&AtomSet::from_indices(u, [3])));
        assert!(negs.contains_superset_of(&AtomSet::empty(u)));
        assert!(!negs.contains_superset_of(&AtomSet::from_indices(u, [0, 3])));
        assert!(!negs.contains_superset_of(&AtomSet::from_indices(u, [69])));
    }

    #[test]
    fn packed_subsumed_mask_matches_pairwise() {
        let u = 130;
        let rows_src = [
            AtomSet::from_indices(u, [0, 1]),
            AtomSet::from_indices(u, [64, 129]),
            AtomSet::from_indices(u, [0, 64, 129]),
            AtomSet::empty(u),
        ];
        let negs_src = [
            AtomSet::from_indices(u, [0, 1, 2]),
            AtomSet::from_indices(u, [64, 65, 129]),
        ];
        let mut rows = PackedAtomSets::new(u);
        rows.extend(rows_src.iter());
        let mut negs = PackedAtomSets::new(u);
        negs.extend(negs_src.iter());
        let mut mask = vec![true; 1]; // stale content must be replaced
        rows.subsumed_mask(&negs, &mut mask);
        let want: Vec<bool> = rows_src
            .iter()
            .map(|r| negs_src.iter().any(|n| r.is_subset(n)))
            .collect();
        assert_eq!(mask, want);
        assert_eq!(mask, vec![true, true, false, true]);
    }

    #[test]
    fn packed_empty_antichain_subsumes_nothing() {
        let u = 10;
        let negs = PackedAtomSets::new(u);
        assert!(!negs.contains_superset_of(&AtomSet::empty(u)));
        let mut rows = PackedAtomSets::new(u);
        rows.push(&AtomSet::from_indices(u, [1]));
        let mut mask = Vec::new();
        rows.subsumed_mask(&negs, &mut mask);
        assert_eq!(mask, vec![false]);
    }

    #[test]
    fn packed_clear_reuses_allocation() {
        let u = 64;
        let mut p = PackedAtomSets::new(u);
        p.push(&AtomSet::full(u));
        p.clear();
        assert!(p.is_empty());
        assert!(!p.contains_superset_of(&AtomSet::empty(u)));
    }

    // ----------------------- capacity-mismatch checks (debug builds)

    /// One test per binary operator: every one must reject cross-universe
    /// operands in debug builds (release builds trust the engine).
    #[cfg(debug_assertions)]
    mod cross_universe {
        use super::super::*;

        fn a() -> AtomSet {
            AtomSet::from_indices(64, [1])
        }
        fn b() -> AtomSet {
            AtomSet::from_indices(65, [1])
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn is_subset() {
            let _ = a().is_subset(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn is_superset() {
            let _ = a().is_superset(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn is_proper_subset() {
            let _ = a().is_proper_subset(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersection() {
            let _ = a().intersection(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersection_into_other() {
            let mut out = AtomSet::empty(64);
            a().intersection_into(&b(), &mut out);
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersection_into_out() {
            let mut out = AtomSet::empty(65);
            a().intersection_into(&a(), &mut out);
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersect_with() {
            a().intersect_with(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn union() {
            let _ = a().union(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn difference() {
            let _ = a().difference(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersects() {
            let _ = a().intersects(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn intersection_len() {
            let _ = a().intersection_len(&b());
        }

        #[test]
        #[should_panic(expected = "different universe")]
        fn packed_push() {
            let mut p = PackedAtomSets::new(64);
            p.push(&b());
        }

        #[test]
        #[should_panic(expected = "different universe")]
        fn packed_contains_superset_of() {
            let mut p = PackedAtomSets::new(64);
            p.push(&a());
            let _ = p.contains_superset_of(&b());
        }

        #[test]
        #[should_panic(expected = "different universes")]
        fn packed_subsumed_mask() {
            let rows = PackedAtomSets::new(64);
            let negs = PackedAtomSets::new(65);
            let mut out = Vec::new();
            rows.subsumed_mask(&negs, &mut out);
        }
    }

    // ------------------------------- tail invariant (property tests)

    /// Every mutator — and every operation that builds a new set — must
    /// keep the bits beyond `nbits` zero, at capacities around every word
    /// boundary. The checks read the raw blocks, which only this module
    /// can see, so the properties live here rather than in the
    /// workspace-level proptest suite.
    mod tail_invariant {
        use super::super::*;
        use proptest::prelude::*;

        /// The capacities the satellite task pins: empty, sub-word, at and
        /// around one- and two-word boundaries.
        const CAPS: [usize; 7] = [0, 1, 63, 64, 65, 127, 128];

        fn assert_tail_zero(s: &AtomSet, context: &str) {
            let nbits = s.nbits as usize;
            for (w, &block) in s.blocks.iter().enumerate() {
                for bit in 0..64 {
                    let idx = w * 64 + bit;
                    if idx >= nbits {
                        assert_eq!(
                            block >> bit & 1,
                            0,
                            "{context}: stray bit {idx} beyond capacity {nbits}"
                        );
                    }
                }
            }
        }

        /// A random set of capacity `cap` built via `insert`s, checking the
        /// invariant as it goes.
        fn build(cap: usize, picks: &[usize]) -> AtomSet {
            let mut s = AtomSet::empty(cap);
            for &p in picks {
                if cap > 0 {
                    s.insert(p % cap);
                    assert_tail_zero(&s, "insert");
                }
            }
            s
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn every_mutator_keeps_tail_bits_zero(
                cap_ix in 0usize..7,
                picks_a in proptest::collection::vec(0usize..1 << 16, 0..24),
                picks_b in proptest::collection::vec(0usize..1 << 16, 0..24),
            ) {
                let cap = CAPS[cap_ix];
                // Constructors.
                assert_tail_zero(&AtomSet::empty(cap), "empty");
                assert_tail_zero(&AtomSet::full(cap), "full (clear_tail)");
                let a = build(cap, &picks_a);
                let b = build(cap, &picks_b);
                assert_tail_zero(
                    &AtomSet::from_indices(cap, a.iter()),
                    "from_indices",
                );
                // remove.
                let mut r = a.clone();
                for i in a.iter() {
                    r.remove(i);
                    assert_tail_zero(&r, "remove");
                }
                prop_assert!(r.is_empty());
                // Binary set ops, allocating and in-place.
                assert_tail_zero(&a.intersection(&b), "intersection");
                assert_tail_zero(&a.union(&b), "union");
                assert_tail_zero(&a.difference(&b), "difference");
                let mut out = AtomSet::full(cap);
                a.intersection_into(&b, &mut out);
                assert_tail_zero(&out, "intersection_into");
                let mut w = a.clone();
                w.intersect_with(&b);
                assert_tail_zero(&w, "intersect_with");
                // The invariant is what makes popcount/equality exact.
                prop_assert_eq!(a.len(), a.iter().count());
                prop_assert_eq!(
                    a.union(&b).len() + a.intersection_len(&b),
                    a.len() + b.len()
                );
            }
        }
    }
}
