//! Session transcripts: a durable, human-readable record of the labels a
//! user gave, replayable onto a fresh engine.
//!
//! The demo replays user sessions to show "how many interactions she would
//! have done" under other strategies (Figure 4); crowd platforms likewise
//! need an audit log of paid answers. The format is a plain text file —
//! one label per line — with a header binding it to the instance:
//!
//! ```text
//! #jim-transcript v1
//! #schema flights × hotels
//! #tuples 12
//! + 2
//! - 6
//! - 7
//! ```
//!
//! Tuples are identified by their product rank, which is stable for a
//! given database and join view (the product enumerates relations in
//! order, last fastest).

use crate::engine::Engine;
use crate::error::{InferenceError, Result};
use crate::label::Label;
use jim_json::Json;
use jim_relation::ProductId;
use std::fmt;

/// Where a session's relations came from, as data: either a named demo
/// scenario or the inline CSV text itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OriginSource {
    /// A named scenario (resolved by the service's scenario catalog).
    Scenario {
        /// The scenario name.
        name: String,
    },
    /// Relations carried verbatim as `(name, csv_text)` pairs, plus the
    /// optional join view (names, repeats allowed for self-joins).
    Inline {
        /// `(name, csv_text)` pairs.
        relations: Vec<(String, String)>,
        /// The join view, if it differs from "all relations once".
        view: Option<Vec<String>>,
    },
}

/// The provenance needed to rebuild a session's engine **from nothing**:
/// the data source, the strategy string, and the effective sampling knobs.
/// With an origin attached, a [`Transcript`] is a complete, durable
/// representation of a session — origin rebuilds the instance, the label
/// log replays the interaction, and the result is the exact version-space
/// state the session had when it was persisted.
///
/// `max_product` and `sample_seed` are recorded as the *effective* values
/// the engine was built with (after any server-side clamping), so a
/// resumed sampled session re-draws the identical uniform sample even if
/// the server's ceilings changed in between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOrigin {
    /// The data source.
    pub source: OriginSource,
    /// The strategy string exactly as the client supplied it (`None` =
    /// the server default). Kept verbatim so it re-parses on resume.
    pub strategy: Option<String>,
    /// The effective product-size limit the engine was built with.
    pub max_product: u64,
    /// The effective sample RNG seed (meaningful when `sampled`).
    pub sample_seed: u64,
    /// Whether the instance is a uniform sample of a larger product.
    pub sampled: bool,
    /// Whether the engine was built by factorized construction
    /// ([`crate::Engine::from_factorized`]) — the full product at exact
    /// fidelity, groups carried as counts plus witnesses. Recorded so a
    /// resume rebuilds bit-identical state through the same path.
    pub factorized: bool,
}

impl SessionOrigin {
    /// Serialize to the JSON shape embedded in transcripts and journal
    /// headers.
    pub fn to_json(&self) -> Json {
        let source = match &self.source {
            OriginSource::Scenario { name } => {
                Json::object([("scenario", Json::from(name.as_str()))])
            }
            OriginSource::Inline { relations, view } => {
                let rels: Vec<Json> = relations
                    .iter()
                    .map(|(name, csv)| {
                        Json::object([
                            ("name", Json::from(name.as_str())),
                            ("csv", Json::from(csv.as_str())),
                        ])
                    })
                    .collect();
                let mut fields = vec![("relations", Json::Array(rels))];
                if let Some(view) = view {
                    fields.push((
                        "view",
                        Json::Array(view.iter().map(|n| Json::from(n.as_str())).collect()),
                    ));
                }
                Json::object(fields)
            }
        };
        let mut fields = vec![("source", source)];
        if let Some(strategy) = &self.strategy {
            fields.push(("strategy", Json::from(strategy.as_str())));
        }
        fields.push(("max_product", Transcript::int_to_json(self.max_product)));
        fields.push(("sample_seed", Transcript::int_to_json(self.sample_seed)));
        fields.push(("sampled", Json::Bool(self.sampled)));
        fields.push(("factorized", Json::Bool(self.factorized)));
        Json::object(fields)
    }

    /// Decode the shape produced by [`SessionOrigin::to_json`].
    pub fn from_json(json: &Json) -> Result<SessionOrigin> {
        let bad = |message: String| InferenceError::Decode { message };
        let source = json
            .get("source")
            .ok_or_else(|| bad("origin: missing `source`".into()))?;
        let source = if let Some(name) = source.get("scenario").and_then(Json::as_str) {
            OriginSource::Scenario {
                name: name.to_string(),
            }
        } else if let Some(rels) = source.get("relations").and_then(Json::as_array) {
            let mut relations = Vec::with_capacity(rels.len());
            for (i, rel) in rels.iter().enumerate() {
                let name = rel
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(format!("origin relation {i}: missing `name`")))?;
                let csv = rel
                    .get("csv")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(format!("origin relation {i}: missing `csv`")))?;
                relations.push((name.to_string(), csv.to_string()));
            }
            let view = match source.get("view") {
                None => None,
                Some(v) => Some(
                    v.as_array()
                        .ok_or_else(|| bad("origin: `view` must be an array".into()))?
                        .iter()
                        .map(|n| {
                            n.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| bad("origin: `view` entries must be strings".into()))
                        })
                        .collect::<Result<Vec<_>>>()?,
                ),
            };
            OriginSource::Inline { relations, view }
        } else {
            return Err(bad(
                "origin: `source` needs either `scenario` or `relations`".into(),
            ));
        };
        Ok(SessionOrigin {
            source,
            strategy: json
                .get("strategy")
                .and_then(Json::as_str)
                .map(str::to_string),
            max_product: json
                .get("max_product")
                .and_then(Transcript::int_from_json)
                .ok_or_else(|| bad("origin: missing `max_product`".into()))?,
            sample_seed: json
                .get("sample_seed")
                .and_then(Transcript::int_from_json)
                .unwrap_or(0),
            sampled: json.get("sampled").and_then(Json::as_bool).unwrap_or(false),
            // Additive field: origins journaled before factorized
            // construction existed decode as enumerated/sampled.
            factorized: json
                .get("factorized")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

/// A recorded labeling session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    /// Human-readable schema description (checked on replay).
    pub schema: String,
    /// Instance size when recorded (checked on replay).
    pub tuples: u64,
    /// The labels, in the order they were given.
    pub labels: Vec<(ProductId, Label)>,
    /// Provenance for rebuilding the engine from nothing, when known.
    /// Transcripts captured from a bare engine carry `None`; the service
    /// layer attaches the origin it recorded at session creation.
    pub origin: Option<SessionOrigin>,
}

impl Transcript {
    /// Capture the session recorded inside an engine (its interaction
    /// log, in order).
    pub fn capture(engine: &Engine) -> Transcript {
        Transcript {
            schema: engine.product().schema().to_string(),
            tuples: engine.product().size(),
            labels: engine
                .stats()
                .log
                .iter()
                .map(|r| (r.tuple, r.label))
                .collect(),
            origin: None,
        }
    }

    /// Attach the provenance needed to rebuild the engine from nothing
    /// (builder style, used by the service layer when persisting).
    pub fn with_origin(mut self, origin: SessionOrigin) -> Transcript {
        self.origin = Some(origin);
        self
    }

    /// Verify `engine` is over the instance this transcript was recorded
    /// on (schema text and tuple count).
    fn check_instance(&self, engine: &Engine) -> Result<()> {
        if engine.product().schema().to_string() != self.schema
            || engine.product().size() != self.tuples
        {
            return Err(InferenceError::Relation(jim_relation::RelationError::InvalidJoin {
                message: format!(
                    "transcript was recorded over `{}` ({} tuples), engine is over `{}` ({} tuples)",
                    self.schema,
                    self.tuples,
                    engine.product().schema(),
                    engine.product().size()
                ),
            }));
        }
        Ok(())
    }

    /// Replay every label onto `engine` (which must be over the same
    /// instance: schema text and tuple count are verified). Returns the
    /// number of labels applied.
    pub fn replay(&self, engine: &mut Engine) -> Result<usize> {
        self.check_instance(engine)?;
        for &(id, label) in &self.labels {
            engine.label(id, label)?;
        }
        Ok(self.labels.len())
    }

    /// Replay the whole transcript as **one** [`Engine::label_batch`]
    /// call — one version-space update pass, one candidate-index
    /// maintenance pass and one generation bump instead of n, which is
    /// what makes rehydrating an evicted session cheap. The final version
    /// space, candidate set and progress counters are identical to
    /// sequential replay (batch-vs-sequential equivalence is
    /// proptest-pinned); only the interaction log's per-record attribution
    /// differs, exactly as for any other batch: informativeness is judged
    /// against the batch start and the shared prune count lands on the
    /// last record.
    pub fn replay_batched(&self, engine: &mut Engine) -> Result<usize> {
        self.check_instance(engine)?;
        if !self.labels.is_empty() {
            engine.label_batch(&self.labels)?;
        }
        Ok(self.labels.len())
    }

    /// Parse the text format. Unknown `#` header lines are ignored
    /// (forward compatibility); blank lines are allowed.
    pub fn parse(text: &str) -> Result<Transcript> {
        let bad = |line: usize, message: String| {
            InferenceError::Relation(jim_relation::RelationError::Csv { line, message })
        };
        let mut lines = text.lines().enumerate();
        let Some((_, first)) = lines.next() else {
            return Err(bad(1, "empty transcript".into()));
        };
        if first.trim() != "#jim-transcript v1" {
            return Err(bad(1, "missing `#jim-transcript v1` header".into()));
        }
        let mut t = Transcript::default();
        for (i, raw) in lines {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(s) = rest.strip_prefix("schema ") {
                    t.schema = s.trim().to_string();
                } else if let Some(n) = rest.strip_prefix("tuples ") {
                    t.tuples = n
                        .trim()
                        .parse()
                        .map_err(|_| bad(i + 1, format!("bad tuple count `{n}`")))?;
                } else if let Some(json) = rest.strip_prefix("origin ") {
                    let json = Json::parse(json.trim())
                        .map_err(|e| bad(i + 1, format!("bad origin JSON: {e}")))?;
                    t.origin = Some(
                        SessionOrigin::from_json(&json)
                            .map_err(|e| bad(i + 1, format!("bad origin: {e}")))?,
                    );
                }
                continue;
            }
            let (sign, rank) = line
                .split_once(' ')
                .ok_or_else(|| bad(i + 1, format!("expected `<+|-> <rank>`, got `{line}`")))?;
            let label = match sign {
                "+" => Label::Positive,
                "-" => Label::Negative,
                other => return Err(bad(i + 1, format!("bad label `{other}`"))),
            };
            let rank: u64 = rank
                .trim()
                .parse()
                .map_err(|_| bad(i + 1, format!("bad rank `{rank}`")))?;
            t.labels.push((ProductId(rank), label));
        }
        Ok(t)
    }

    /// Largest integer the wire's number type (`f64`) represents exactly.
    /// Ranks and counts above this are encoded as decimal strings so
    /// transcripts of sampled engines over astronomically large products
    /// survive the round trip bit-exactly.
    const MAX_EXACT_WIRE_INT: u64 = 1 << 53;

    fn int_to_json(value: u64) -> Json {
        if value <= Self::MAX_EXACT_WIRE_INT {
            Json::from(value)
        } else {
            Json::from(value.to_string())
        }
    }

    fn int_from_json(value: &Json) -> Option<u64> {
        value
            .as_u64()
            .or_else(|| value.as_str().and_then(|s| s.parse().ok()))
    }

    /// Encode a label list as the wire's `labels` array shape —
    /// `[{"tuple":2,"label":"+"},…]` — shared by [`Transcript::to_json`]
    /// and the server's journal batch lines. Ranks beyond the `f64`-exact
    /// range are encoded as decimal strings (see `MAX_EXACT_WIRE_INT`).
    pub fn labels_to_json(labels: &[(ProductId, Label)]) -> Json {
        Json::Array(
            labels
                .iter()
                .map(|(id, label)| {
                    Json::object([
                        ("tuple", Self::int_to_json(id.0)),
                        ("label", Json::from(label.to_string())),
                    ])
                })
                .collect(),
        )
    }

    /// Decode the shape produced by [`Transcript::labels_to_json`].
    pub fn labels_from_json(json: &Json) -> Result<Vec<(ProductId, Label)>> {
        let bad = |message: String| InferenceError::Decode { message };
        let mut labels = Vec::new();
        for (i, entry) in json
            .as_array()
            .ok_or_else(|| bad("expected a `labels` array".into()))?
            .iter()
            .enumerate()
        {
            let rank = entry
                .get("tuple")
                .and_then(Self::int_from_json)
                .ok_or_else(|| bad(format!("label {i}: missing `tuple` rank")))?;
            let label = match entry.get("label").and_then(Json::as_str) {
                Some("+") => Label::Positive,
                Some("-") => Label::Negative,
                other => return Err(bad(format!("label {i}: bad `label` {other:?}"))),
            };
            labels.push((ProductId(rank), label));
        }
        Ok(labels)
    }

    /// Serialize to the JSON wire shape the `jim-server` protocol speaks:
    ///
    /// ```json
    /// {"version":1,"schema":"flights × hotels","tuples":12,
    ///  "labels":[{"tuple":2,"label":"+"}, ...]}
    /// ```
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", Json::from(1u64)),
            ("schema", Json::from(self.schema.as_str())),
            ("tuples", Self::int_to_json(self.tuples)),
            ("labels", Self::labels_to_json(&self.labels)),
        ];
        if let Some(origin) = &self.origin {
            fields.push(("origin", origin.to_json()));
        }
        Json::object(fields)
    }

    /// Decode the JSON wire shape produced by [`Transcript::to_json`].
    pub fn from_json(json: &Json) -> Result<Transcript> {
        let bad = |message: String| InferenceError::Decode { message };
        match json.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            other => return Err(bad(format!("unsupported transcript version {other:?}"))),
        }
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `schema` string".into()))?
            .to_string();
        let tuples = json
            .get("tuples")
            .and_then(Self::int_from_json)
            .ok_or_else(|| bad("missing `tuples` count".into()))?;
        let labels = Self::labels_from_json(
            json.get("labels")
                .ok_or_else(|| bad("missing `labels` array".into()))?,
        )?;
        let origin = match json.get("origin") {
            None => None,
            Some(o) => Some(SessionOrigin::from_json(o)?),
        };
        Ok(Transcript {
            schema,
            tuples,
            labels,
            origin,
        })
    }

    /// Parse a JSON text document (convenience over [`Transcript::from_json`]).
    pub fn parse_json(text: &str) -> Result<Transcript> {
        let json = Json::parse(text).map_err(|e| InferenceError::Decode {
            message: e.to_string(),
        })?;
        Transcript::from_json(&json)
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "#jim-transcript v1")?;
        writeln!(f, "#schema {}", self.schema)?;
        writeln!(f, "#tuples {}", self.tuples)?;
        if let Some(origin) = &self.origin {
            // JSON renders on one line, so the origin fits a header line
            // (older parsers skip unknown `#` headers).
            writeln!(f, "#origin {}", origin.to_json().render())?;
        }
        for (id, label) in &self.labels {
            writeln!(f, "{label} {}", id.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    fn engine(f: &Relation, h: &Relation) -> Engine {
        let p = Product::new(vec![f, h]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    #[test]
    fn capture_replay_round_trip() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(2), Label::Positive).unwrap();
        e.label(ProductId(6), Label::Negative).unwrap();
        e.label(ProductId(7), Label::Negative).unwrap();
        let t = Transcript::capture(&e);

        let mut fresh = engine(&f, &h);
        assert_eq!(t.replay(&mut fresh).unwrap(), 3);
        assert!(fresh.is_resolved());
        assert_eq!(fresh.result(), e.result());
    }

    #[test]
    fn text_round_trip() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(11), Label::Positive).unwrap();
        let t = Transcript::capture(&e);
        let text = t.to_string();
        assert!(text.starts_with("#jim-transcript v1"));
        assert!(text.contains("+ 11"));
        let parsed = Transcript::parse(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn replay_rejects_wrong_instance() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(0), Label::Negative).unwrap();
        let t = Transcript::capture(&e);

        // Same relations but a self-join view: different schema string.
        let p = Product::new(vec![&h, &h]).unwrap();
        let mut wrong = Engine::new(p, &EngineOptions::default()).unwrap();
        assert!(t.replay(&mut wrong).is_err());
    }

    #[test]
    fn replay_surfaces_inconsistent_transcripts() {
        // A hand-forged transcript with contradictory labels must fail
        // replay with the inconsistency error, not corrupt the engine.
        let (f, h) = paper_instance();
        let e = engine(&f, &h);
        let text = format!(
            "#jim-transcript v1\n#schema {}\n#tuples 12\n+ 2\n- 3\n",
            e.product().schema()
        );
        let t = Transcript::parse(&text).unwrap();
        let mut fresh = engine(&f, &h);
        let err = t.replay(&mut fresh);
        assert!(matches!(err, Err(InferenceError::InconsistentLabel { .. })));
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(Transcript::parse("").is_err());
        assert!(Transcript::parse("#jim\n").is_err());
        let bad_label = "#jim-transcript v1\n#schema s\n#tuples 1\n? 0\n";
        assert!(Transcript::parse(bad_label).is_err());
        let bad_rank = "#jim-transcript v1\n+ x\n";
        assert!(Transcript::parse(bad_rank).is_err());
        let bad_count = "#jim-transcript v1\n#tuples many\n";
        assert!(Transcript::parse(bad_count).is_err());
    }

    #[test]
    fn json_round_trip_replays_to_same_version_space() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(2), Label::Positive).unwrap();
        e.label(ProductId(6), Label::Negative).unwrap();
        e.label(ProductId(7), Label::Negative).unwrap();
        let t = Transcript::capture(&e);

        // Serialize to JSON text and back.
        let text = t.to_json().render();
        assert!(text.contains("\"labels\""));
        let parsed = Transcript::parse_json(&text).unwrap();
        assert_eq!(parsed, t);

        // Replay into a fresh session: identical version space.
        let mut fresh = engine(&f, &h);
        assert_eq!(parsed.replay(&mut fresh).unwrap(), 3);
        assert!(fresh.is_resolved());
        assert_eq!(fresh.result(), e.result());
        assert_eq!(fresh.version_space().upper(), e.version_space().upper());
        assert_eq!(
            fresh.version_space().negatives(),
            e.version_space().negatives()
        );
    }

    #[test]
    fn json_round_trip_is_exact_beyond_f64_integers() {
        // Sampled engines over huge products carry full-u64 ranks; they
        // must survive JSON without rounding through f64.
        let t = Transcript {
            schema: "huge × huge".into(),
            tuples: u64::MAX,
            labels: vec![
                (ProductId((1 << 53) + 1), Label::Positive),
                (ProductId(u64::MAX - 1), Label::Negative),
                (ProductId(3), Label::Positive),
            ],
            origin: None,
        };
        let back = Transcript::parse_json(&t.to_json().render()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_decode_rejects_malformed_documents() {
        assert!(Transcript::parse_json("not json").is_err());
        assert!(Transcript::parse_json("{}").is_err());
        assert!(
            Transcript::parse_json(r#"{"version":2,"schema":"s","tuples":1,"labels":[]}"#).is_err()
        );
        assert!(Transcript::parse_json(r#"{"version":1,"tuples":1,"labels":[]}"#).is_err());
        assert!(Transcript::parse_json(r#"{"version":1,"schema":"s","labels":[]}"#).is_err());
        assert!(Transcript::parse_json(r#"{"version":1,"schema":"s","tuples":1}"#).is_err());
        assert!(Transcript::parse_json(
            r#"{"version":1,"schema":"s","tuples":1,"labels":[{"tuple":0,"label":"?"}]}"#
        )
        .is_err());
        assert!(Transcript::parse_json(
            r#"{"version":1,"schema":"s","tuples":1,"labels":[{"label":"+"}]}"#
        )
        .is_err());
    }

    fn sample_origin() -> SessionOrigin {
        SessionOrigin {
            source: OriginSource::Inline {
                relations: vec![
                    ("flights".into(), "From,To\nParis,Lille\n".into()),
                    ("hotels".into(), "City\nNYC\n".into()),
                ],
                view: Some(vec!["flights".into(), "hotels".into()]),
            },
            strategy: Some("lookahead-minprune".into()),
            max_product: 5_000_000,
            sample_seed: 7,
            sampled: false,
            factorized: false,
        }
    }

    #[test]
    fn origin_round_trips_through_json_and_text() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(2), Label::Positive).unwrap();
        let t = Transcript::capture(&e).with_origin(sample_origin());

        // JSON wire shape.
        let back = Transcript::parse_json(&t.to_json().render()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.origin, Some(sample_origin()));

        // Text shape: the origin rides a `#origin` header line (with the
        // inline CSV's newlines JSON-escaped, so it stays one line).
        let text = t.to_string();
        assert!(text.contains("#origin {"));
        let parsed = Transcript::parse(&text).unwrap();
        assert_eq!(parsed, t);

        // A scenario origin round-trips too.
        let scenario = SessionOrigin {
            source: OriginSource::Scenario {
                name: "flights".into(),
            },
            strategy: None,
            max_product: 100,
            sample_seed: 0,
            sampled: true,
            factorized: false,
        };
        let t = Transcript::capture(&e).with_origin(scenario.clone());
        let back = Transcript::parse_json(&t.to_json().render()).unwrap();
        assert_eq!(back.origin, Some(scenario.clone()));

        // A factorized origin round-trips, and its absence decodes false
        // (origins journaled before the field existed stay readable).
        let factorized = SessionOrigin {
            factorized: true,
            ..scenario
        };
        let back = SessionOrigin::from_json(&factorized.to_json()).unwrap();
        assert_eq!(back, factorized);
        assert!(!back.to_json().render().is_empty());
        let legacy = Json::parse(r#"{"source":{"scenario":"flights"},"max_product":100}"#).unwrap();
        assert!(!SessionOrigin::from_json(&legacy).unwrap().factorized);
    }

    #[test]
    fn origin_decode_rejects_malformed_documents() {
        assert!(SessionOrigin::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(SessionOrigin::from_json(
            &Json::parse(r#"{"source":{},"max_product":1}"#).unwrap()
        )
        .is_err());
        assert!(SessionOrigin::from_json(
            &Json::parse(r#"{"source":{"scenario":"flights"}}"#).unwrap()
        )
        .is_err());
        assert!(SessionOrigin::from_json(
            &Json::parse(r#"{"source":{"relations":[{"name":"a"}]},"max_product":1}"#).unwrap()
        )
        .is_err());
        // A transcript carrying a malformed origin fails whole.
        assert!(Transcript::parse_json(
            r#"{"version":1,"schema":"s","tuples":1,"labels":[],"origin":{}}"#
        )
        .is_err());
        assert!(Transcript::parse("#jim-transcript v1\n#origin not-json\n").is_err());
    }

    #[test]
    fn batched_replay_matches_sequential_replay() {
        let (f, h) = paper_instance();
        let mut e = engine(&f, &h);
        e.label(ProductId(2), Label::Positive).unwrap();
        e.label(ProductId(6), Label::Negative).unwrap();
        e.label(ProductId(7), Label::Negative).unwrap();
        let t = Transcript::capture(&e);

        let mut sequential = engine(&f, &h);
        t.replay(&mut sequential).unwrap();
        let mut batched = engine(&f, &h);
        assert_eq!(t.replay_batched(&mut batched).unwrap(), 3);

        // One propagation pass, same resulting state.
        assert_eq!(batched.generation(), 1);
        assert!(batched.is_resolved());
        assert_eq!(batched.result(), sequential.result());
        assert_eq!(
            batched.version_space().upper(),
            sequential.version_space().upper()
        );
        assert_eq!(batched.stats().pruned, sequential.stats().pruned);
        assert_eq!(
            batched.stats().labeled_positive,
            sequential.stats().labeled_positive
        );
        // Capture of the replayed engine reproduces the transcript.
        assert_eq!(Transcript::capture(&batched), t);

        // Instance checks still apply.
        let p = Product::new(vec![&h, &h]).unwrap();
        let mut wrong = Engine::new(p, &EngineOptions::default()).unwrap();
        assert!(t.replay_batched(&mut wrong).is_err());

        // An empty transcript replays onto an untouched engine.
        let empty = Transcript::capture(&engine(&f, &h));
        let mut fresh = engine(&f, &h);
        assert_eq!(empty.replay_batched(&mut fresh).unwrap(), 0);
        assert_eq!(fresh.generation(), 0);
    }

    #[test]
    fn unknown_headers_and_blanks_ignored() {
        let text = "#jim-transcript v1\n#schema s\n#tuples 1\n#future stuff\n\n+ 0\n";
        let t = Transcript::parse(text).unwrap();
        assert_eq!(t.labels.len(), 1);
        assert_eq!(t.schema, "s");
    }
}
