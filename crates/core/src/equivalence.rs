//! Instance-equivalence: the paper's termination notion.
//!
//! Inference stops when "there exists a unique (up to instance-equivalence
//! \[3\]) join predicate consistent with the user's labels". Two predicates
//! are instance-equivalent when they select the same tuples of the given
//! instance. This module verifies that property over the whole consistent
//! class (for small universes) — used by tests and by the `reproduce`
//! binary to certify results.

use crate::bitset::AtomSet;
use crate::engine::Engine;
use crate::predicate::JoinPredicate;

/// Enumerate the consistent predicates (up to `limit` subsets of `U`), or
/// `None` if the universe is too large to enumerate.
pub fn consistent_class(engine: &Engine, limit: usize) -> Option<Vec<JoinPredicate>> {
    let vs = engine.version_space();
    let sets = vs.enumerate_consistent(limit)?;
    let u = engine.universe().clone();
    Some(
        sets.into_iter()
            .map(|atoms| JoinPredicate::new(u.clone(), atoms))
            .collect(),
    )
}

/// Check that every consistent predicate selects exactly the same tuples of
/// the engine's instance — i.e. the consistent class is a single
/// instance-equivalence class. This is the correctness certificate for a
/// resolved engine; on an unresolved engine it returns `Some(false)`.
pub fn class_is_instance_equivalent(engine: &Engine, limit: usize) -> Option<bool> {
    let class = consistent_class(engine, limit)?;
    let Some((first, rest)) = class.split_first() else {
        // Empty class: cannot happen with consistent labels, but an empty
        // class is vacuously equivalent.
        return Some(true);
    };
    // Evaluate via signatures: θ selects t iff θ ⊆ Θ(t). Using the engine's
    // grouping avoids re-running joins per predicate.
    let groups = all_signatures(engine);
    for theta in rest {
        for sig in &groups {
            if first.selects_sig(sig) != theta.selects_sig(sig) {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// The distinct full signatures present in the instance.
fn all_signatures(engine: &Engine) -> Vec<AtomSet> {
    let u = engine.universe();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (_, tuple) in engine.product().iter() {
        let sig = u.signature(&tuple);
        if seen.insert(sig.clone()) {
            out.push(sig);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use jim_relation::{tup, DataType, Product, ProductId, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    #[test]
    fn unresolved_engine_class_not_equivalent() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        assert_eq!(class_is_instance_equivalent(&e, 1 << 10), Some(false));
        // 2^6 predicates are consistent initially.
        assert_eq!(consistent_class(&e, 1 << 10).unwrap().len(), 64);
    }

    #[test]
    fn resolved_engine_class_is_equivalent() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(2), Label::Positive).unwrap();
        e.label(ProductId(6), Label::Negative).unwrap();
        e.label(ProductId(7), Label::Negative).unwrap();
        assert!(e.is_resolved());
        assert_eq!(class_is_instance_equivalent(&e, 1 << 10), Some(true));
        // Here the class is even a singleton.
        assert_eq!(consistent_class(&e, 1 << 10).unwrap().len(), 1);
    }

    #[test]
    fn resolved_but_non_singleton_class() {
        // A one-row instance: labeling its only tuple positive resolves the
        // inference, yet many consistent predicates remain — all
        // instance-equivalent (they all select the single tuple).
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            vec![tup![1]],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int)]).unwrap(),
            vec![tup![1]],
        )
        .unwrap();
        let p = Product::new(vec![&a, &b]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(0), Label::Positive).unwrap();
        assert!(e.is_resolved());
        assert_eq!(class_is_instance_equivalent(&e, 1 << 10), Some(true));
        // θ = ∅ and θ = {x≍y} are both consistent.
        assert_eq!(consistent_class(&e, 1 << 10).unwrap().len(), 2);
    }
}
