//! The interactive inference engine — the loop of the paper's Figure 2.
//!
//! The engine groups the candidate tuples of a cartesian product by their
//! signature `Θ(t)` (tuples with equal signatures are indistinguishable to
//! every join predicate), maintains the [`VersionSpace`], absorbs labels,
//! propagates them (graying out newly-certain tuples) and reports progress.
//!
//! ## The candidate index
//!
//! Strategies rank *informative candidates*: one [`Candidate`] per
//! restricted signature `Θ(t) ∩ U`. An earlier revision rebuilt that list
//! from the full group table on every query, which made each question
//! O(groups × simulations) for the lookahead family. The engine now keeps
//! an **incrementally maintained candidate index**, updated in place by
//! [`Engine::label`] (and its propagation) and [`Engine::absorb_ids`]:
//!
//! * a **negative** label leaves `U` untouched, so restricted signatures
//!   are stable — candidates subsumed by the new negative are dropped
//!   whole, in O(candidates) subset tests;
//! * a **positive** label shrinks `U`, so the aggregation is re-keyed —
//!   but only over the groups that were still informative (certainty is
//!   monotone under consistent labels), once per label rather than once
//!   per strategy query.
//!
//! Strategies consume the index through the borrowed, allocation-free
//! [`CandidateView`] ([`Engine::candidates`]) and score hypothetical
//! labels with [`Engine::simulate_in`] against a reusable [`SimScratch`].
//! Every mutation bumps a generation counter ([`Engine::generation`]) so
//! callers (e.g. the server's per-session question cache) can detect
//! staleness cheaply. [`Engine::recompute_candidates`] keeps the old
//! from-scratch reclassification as the reference implementation the
//! property tests compare against.

use crate::atoms::{AtomScope, AtomUniverse};
use crate::bitset::{AtomSet, PackedAtomSets};
use crate::error::{InferenceError, Result};
use crate::label::Label;
use crate::predicate::JoinPredicate;
use crate::stats::{InteractionRecord, ProgressStats};
use crate::version_space::{TupleClass, VersionSpace};
use jim_relation::{Product, ProductId};
use std::collections::HashMap;
use std::sync::Arc;

/// Construction options for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Which attribute pairs are candidate atoms.
    pub scope: AtomScope,
    /// Refuse to enumerate products larger than this (callers should
    /// [`Product::sample`] first). Default: 5,000,000.
    pub max_product: u64,
    /// Sweep budget for [`Engine::from_factorized`]: the maximum number of
    /// block combinations (dense sweep) or candidate block pairs (sparse
    /// sweep) factorization may visit before giving up with
    /// [`InferenceError::FactorizationTooLarge`]. Default: 4,000,000.
    pub max_combos: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            scope: AtomScope::CrossRelation,
            max_product: 5_000_000,
            max_combos: 4_000_000,
        }
    }
}

/// How a signature group's member tuples are represented.
///
/// Enumerated and sampled construction ([`Engine::new`], [`Engine::from_ids`])
/// store every member id; factorized construction
/// ([`Engine::from_factorized`]) never materializes the product, so a group
/// carries only its exact cardinality plus a bounded sample of witness ids.
/// Strategies and stats only ever consume `count()` and `rep()`, so both
/// representations drive inference identically.
#[derive(Debug, Clone)]
enum GroupMembers {
    /// Every member id, in rank order.
    Explicit(Vec<ProductId>),
    /// Exact cardinality plus up to `max_witnesses` member ids (ascending;
    /// `witnesses[0]` is the group minimum).
    Counted {
        count: u64,
        witnesses: Vec<ProductId>,
    },
}

impl GroupMembers {
    fn count(&self) -> u64 {
        match self {
            GroupMembers::Explicit(ids) => ids.len() as u64,
            GroupMembers::Counted { count, .. } => *count,
        }
    }

    /// The canonical representative: the first member id. Construction
    /// feeds ids in ascending rank order in every mode, so at build time
    /// this is the group minimum (later absorbs may append smaller ids —
    /// the representative deliberately stays stable).
    fn rep(&self) -> ProductId {
        match self {
            GroupMembers::Explicit(ids) => ids[0],
            GroupMembers::Counted { witnesses, .. } => witnesses[0],
        }
    }

    /// The enumerable member ids: all of them when explicit, the carried
    /// witness sample when counted.
    fn witnesses(&self) -> &[ProductId] {
        match self {
            GroupMembers::Explicit(ids) => ids,
            GroupMembers::Counted { witnesses, .. } => witnesses,
        }
    }

    fn push(&mut self, id: ProductId) {
        match self {
            GroupMembers::Explicit(ids) => ids.push(id),
            // `absorb_ids` early-returns on factorized engines, the only
            // place counted groups exist.
            GroupMembers::Counted { .. } => unreachable!("counted groups never absorb ids"),
        }
    }
}

/// One signature group: all candidate tuples sharing `Θ(t)`.
#[derive(Debug, Clone)]
struct Group {
    /// The full (unrestricted) signature — immutable for the whole run.
    sig: AtomSet,
    /// The product tuples carrying this signature.
    members: GroupMembers,
    /// Current classification under the version space.
    class: TupleClass,
    /// Tuples of this group explicitly labeled by the user.
    labeled: u64,
}

impl Group {
    fn count(&self) -> u64 {
        self.members.count()
    }
}

/// What a label did to the instance (returned by [`Engine::label`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelOutcome {
    /// Whether the labeled tuple was informative (a strategy-driven session
    /// only ever labels informative tuples; free-form users may not).
    pub was_informative: bool,
    /// Tuples that this label made certain (newly grayed out), including
    /// the labeled tuple itself.
    pub pruned: u64,
    /// Informative tuples remaining after propagation.
    pub informative_remaining: u64,
    /// True iff inference is complete (no informative tuple remains).
    pub resolved: bool,
}

/// What a whole answer batch did to the instance (returned by
/// [`Engine::label_batch`]). The batch shares **one** candidate-index
/// maintenance pass and one generation bump, so per-label attribution is
/// deliberately absent — the counters describe the batch as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Labels actually applied (duplicate ids with equal labels collapse
    /// to one application).
    pub applied: u64,
    /// How many applied labels were informative **at the start of the
    /// batch**. Batch semantics follow the paper's top-k mode: the user
    /// answers every proposed tuple before anything propagates, so
    /// informativeness is judged against the state the batch was proposed
    /// from, not against sibling answers inside the same batch.
    pub informative_labels: u64,
    /// Tuples the batch made certain (newly grayed out), including the
    /// labeled tuples themselves.
    pub pruned: u64,
    /// Informative tuples remaining after the single propagation pass.
    pub informative_remaining: u64,
    /// True iff inference is complete (no informative tuple remains).
    pub resolved: bool,
}

/// A view of one informative candidate offered to strategies: the signature
/// restricted to the current `U`, the number of tuples carrying it, and a
/// representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// `Θ(t) ∩ U` — all tuples with this restricted signature are
    /// interchangeable.
    pub restricted_sig: AtomSet,
    /// Number of product tuples in this equivalence class.
    pub count: u64,
    /// A representative tuple id (the one a session would display).
    pub representative: ProductId,
}

/// A borrowed, allocation-free view of the engine's maintained candidate
/// index — what strategies rank instead of materializing their own list.
/// The `generation` identifies the engine state the slice reflects; any
/// label or absorb invalidates it (the borrow checker enforces that
/// locally, the counter lets owned caches detect it across requests).
#[derive(Debug, Clone, Copy)]
pub struct CandidateView<'a> {
    candidates: &'a [Candidate],
    generation: u64,
}

impl<'a> CandidateView<'a> {
    /// The informative candidates, one per restricted signature, in
    /// first-seen group order. Empty iff inference is resolved.
    pub fn candidates(&self) -> &'a [Candidate] {
        self.candidates
    }

    /// The engine generation this view was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct informative candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True iff no informative candidate remains (resolved).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Iterate the candidates.
    pub fn iter(&self) -> std::slice::Iter<'a, Candidate> {
        self.candidates.iter()
    }

    /// Total informative tuples across all candidates.
    pub fn total_tuples(&self) -> u64 {
        self.candidates.iter().map(|c| c.count).sum()
    }
}

/// Reusable scratch for [`Engine::simulate_in`]: one intersection buffer
/// sized to the atom universe, so the per-candidate inner loop of the
/// lookahead strategies allocates nothing.
#[derive(Debug, Clone)]
pub struct SimScratch {
    inter: AtomSet,
}

/// The incrementally maintained partition of signature groups by
/// [`TupleClass`], aggregated by restricted signature (see module docs).
/// `candidates` and `members` are parallel: `members[i]` lists the group
/// indices whose restricted signature is `candidates[i].restricted_sig`.
#[derive(Debug, Clone, Default)]
struct CandidateIndex {
    candidates: Vec<Candidate>,
    members: Vec<Vec<usize>>,
    by_restricted: HashMap<AtomSet, usize>,
    /// Bumped on every engine mutation (label, absorb).
    generation: u64,
    /// Total tuples across informative groups (= `stats.informative`).
    informative_tuples: u64,
}

impl CandidateIndex {
    fn clear(&mut self) {
        self.candidates.clear();
        self.members.clear();
        self.by_restricted.clear();
        self.informative_tuples = 0;
    }

    /// Merge one informative group (with the given restricted signature)
    /// into the aggregation, preserving first-seen candidate order.
    fn add_group(&mut self, g: usize, restricted: AtomSet, count: u64, rep: ProductId) {
        self.informative_tuples += count;
        match self.by_restricted.get(&restricted) {
            Some(&slot) => {
                let c = &mut self.candidates[slot];
                c.count += count;
                if rep < c.representative {
                    c.representative = rep;
                }
                self.members[slot].push(g);
            }
            None => {
                self.by_restricted
                    .insert(restricted.clone(), self.candidates.len());
                self.candidates.push(Candidate {
                    restricted_sig: restricted,
                    count,
                    representative: rep,
                });
                self.members.push(vec![g]);
            }
        }
    }
}

/// The interactive join-inference engine.
#[derive(Debug, Clone)]
pub struct Engine {
    product: Product,
    universe: Arc<AtomUniverse>,
    vs: VersionSpace,
    groups: Vec<Group>,
    by_sig: HashMap<AtomSet, usize>,
    labels: HashMap<ProductId, Label>,
    stats: ProgressStats,
    index: CandidateIndex,
    /// True iff this engine was built by [`Engine::from_factorized`]: every
    /// group is [`GroupMembers::Counted`] and covers the *whole* product.
    factorized: bool,
}

impl Engine {
    /// Build an engine over the full cartesian product of `product`.
    pub fn new(product: Product, options: &EngineOptions) -> Result<Self> {
        if product.size() > options.max_product {
            return Err(InferenceError::ProductTooLarge {
                size: product.size(),
                limit: options.max_product,
            });
        }
        let ids: Vec<ProductId> = (0..product.size()).map(ProductId).collect();
        Engine::from_ids(product, &ids, options)
    }

    /// Build an engine over an explicit subset of product tuples (e.g. a
    /// uniform sample of a product too large to enumerate).
    pub fn from_ids(product: Product, ids: &[ProductId], options: &EngineOptions) -> Result<Self> {
        let universe = AtomUniverse::new(product.schema().clone(), options.scope)?;
        let vs = VersionSpace::new(universe.clone());

        let mut groups: Vec<Group> = Vec::new();
        let mut by_sig: HashMap<AtomSet, usize> = HashMap::new();
        for &id in ids {
            let tuple = product.tuple(id)?;
            let sig = universe.signature(&tuple);
            match by_sig.get(&sig) {
                Some(&g) => groups[g].members.push(id),
                None => {
                    let class = vs.classify(&sig);
                    by_sig.insert(sig.clone(), groups.len());
                    groups.push(Group {
                        sig,
                        members: GroupMembers::Explicit(vec![id]),
                        class,
                        labeled: 0,
                    });
                }
            }
        }

        let mut engine = Engine {
            product,
            universe,
            vs,
            groups,
            by_sig,
            labels: HashMap::new(),
            stats: ProgressStats {
                total_tuples: ids.len() as u64,
                ..Default::default()
            },
            index: CandidateIndex::default(),
            factorized: false,
        };
        let all: Vec<usize> = (0..engine.groups.len()).collect();
        engine.reindex(&all);
        engine.refresh_counters();
        Ok(engine)
    }

    /// Build an engine over the **full** cartesian product without ever
    /// materializing it: the signature-group partition is computed directly
    /// from the base relations by [`jim_relation::factorize`], so build cost
    /// scales with the relations' block structure rather than with
    /// `product.size()`. Groups carry exact counts plus a bounded sample of
    /// witness ids; candidates, strategies and progress statistics behave
    /// exactly as if every tuple had been enumerated (the equivalence is
    /// property-tested against [`Engine::new`]).
    ///
    /// Fails with [`InferenceError::FactorizationTooLarge`] when the block
    /// sweep would exceed [`EngineOptions::max_combos`] — callers fall back
    /// to sampling ([`Product::sample`] + [`Engine::from_ids`]).
    pub fn from_factorized(product: Product, options: &EngineOptions) -> Result<Self> {
        let universe = AtomUniverse::new(product.schema().clone(), options.scope)?;
        let vs = VersionSpace::new(universe.clone());
        let fopts = jim_relation::FactorizeOptions {
            cross_only: options.scope == AtomScope::CrossRelation,
            max_sweep: options.max_combos,
            ..Default::default()
        };
        let factorized = jim_relation::factorize(&product, &fopts).map_err(|e| match e {
            // Under matching scope the joinable pairs are exactly the
            // universe's atoms, so this arm is unreachable after a
            // successful universe build; map it defensively.
            jim_relation::FactorizeError::NoJoinablePairs => InferenceError::EmptyUniverse,
            jim_relation::FactorizeError::SweepTooLarge { cost, limit } => {
                InferenceError::FactorizationTooLarge { cost, limit }
            }
        })?;

        let mut groups: Vec<Group> = Vec::with_capacity(factorized.groups.len());
        let mut by_sig: HashMap<AtomSet, usize> = HashMap::with_capacity(factorized.groups.len());
        for sg in factorized.groups {
            let sig = universe.set_of(sg.pattern.iter().map(|&(a, b)| {
                universe
                    .id_of(a, b)
                    .expect("factorized patterns range over universe atoms")
            }));
            #[cfg(debug_assertions)]
            {
                let witness = product.tuple(sg.min_id)?;
                debug_assert_eq!(
                    sig,
                    universe.signature(&witness),
                    "factorized pattern disagrees with the witness signature"
                );
            }
            let class = vs.classify(&sig);
            let prev = by_sig.insert(sig.clone(), groups.len());
            debug_assert!(prev.is_none(), "factorized groups have distinct patterns");
            groups.push(Group {
                sig,
                members: GroupMembers::Counted {
                    count: sg.count,
                    witnesses: sg.witnesses,
                },
                class,
                labeled: 0,
            });
        }

        let mut engine = Engine {
            stats: ProgressStats {
                total_tuples: product.size(),
                ..Default::default()
            },
            product,
            universe,
            vs,
            groups,
            by_sig,
            labels: HashMap::new(),
            index: CandidateIndex::default(),
            factorized: true,
        };
        let all: Vec<usize> = (0..engine.groups.len()).collect();
        engine.reindex(&all);
        engine.refresh_counters();
        Ok(engine)
    }

    /// The product being inferred over.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// The shared atom universe.
    pub fn universe(&self) -> &Arc<AtomUniverse> {
        &self.universe
    }

    /// The current version space.
    pub fn version_space(&self) -> &VersionSpace {
        &self.vs
    }

    /// Progress statistics (the demo UI's counters).
    pub fn stats(&self) -> &ProgressStats {
        &self.stats
    }

    /// Number of distinct signatures observed in the instance.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// True iff this engine was built by [`Engine::from_factorized`]:
    /// groups carry exact counts plus witness samples, and together they
    /// cover the entire product at full fidelity.
    pub fn is_factorized(&self) -> bool {
        self.factorized
    }

    /// The label previously given to `id`, if any.
    pub fn label_of(&self, id: ProductId) -> Option<Label> {
        self.labels.get(&id).copied()
    }

    /// Classify a tuple id under the current labels.
    pub fn classify(&self, id: ProductId) -> Result<TupleClass> {
        let g = self.group_of(id)?;
        Ok(self.groups[g].class)
    }

    /// True iff labeling `id` could still narrow the version space.
    pub fn is_informative(&self, id: ProductId) -> Result<bool> {
        Ok(self.classify(id)? == TupleClass::Informative && !self.labels.contains_key(&id))
    }

    /// True iff no informative tuple remains — the paper's termination
    /// condition (all consistent predicates are instance-equivalent).
    pub fn is_resolved(&self) -> bool {
        self.index.candidates.is_empty()
    }

    /// The generation counter of the candidate index: bumped on every
    /// mutation (label, absorb), untouched by queries. Owned caches keyed
    /// on it (the server's per-session question cache) stay valid exactly
    /// while the engine state they were computed from does.
    pub fn generation(&self) -> u64 {
        self.index.generation
    }

    /// The inferred query: the canonical (maximal) consistent predicate.
    /// Meaningful once [`Engine::is_resolved`] returns true, but callable at
    /// any time (it is the most specific hypothesis consistent so far).
    pub fn result(&self) -> JoinPredicate {
        self.vs.canonical()
    }

    /// Every tuple id entailed positive at the moment — the inferred join
    /// result on this instance (labeled positives + certain positives).
    /// On a factorized engine the full member lists are not materialized,
    /// so this returns the entailed-positive *witnesses* (evaluate
    /// [`Engine::result`] against the product for the full join result).
    pub fn entailed_positive_ids(&self) -> Vec<ProductId> {
        let mut out = Vec::new();
        for g in &self.groups {
            if g.class == TupleClass::CertainPositive {
                out.extend_from_slice(g.members.witnesses());
            }
        }
        out.sort();
        out
    }

    /// The maintained informative candidates, one per *restricted*
    /// signature (`Θ(t) ∩ U`), as a borrowed view — O(1), no allocation.
    /// This is the interface strategies choose from; an empty view means
    /// resolved.
    pub fn candidates(&self) -> CandidateView<'_> {
        CandidateView {
            candidates: &self.index.candidates,
            generation: self.index.generation,
        }
    }

    /// Rebuild the candidate list by reclassifying **every** group from
    /// scratch against the version space — the de-materialized hot path's
    /// reference implementation. Property tests assert it always equals
    /// [`Engine::candidates`]; the criterion bench measures what keeping
    /// the index incremental buys. Never called on the per-question path.
    pub fn recompute_candidates(&self) -> Vec<Candidate> {
        let mut agg: HashMap<AtomSet, (u64, ProductId)> = HashMap::new();
        let mut order: Vec<AtomSet> = Vec::new();
        for g in &self.groups {
            if self.vs.classify(&g.sig) != TupleClass::Informative {
                continue;
            }
            let restricted = self.vs.restrict(&g.sig);
            match agg.get_mut(&restricted) {
                Some(entry) => {
                    entry.0 += g.count();
                    // Keep the smallest representative for determinism.
                    if g.members.rep() < entry.1 {
                        entry.1 = g.members.rep();
                    }
                }
                None => {
                    agg.insert(restricted.clone(), (g.count(), g.members.rep()));
                    order.push(restricted);
                }
            }
        }
        order
            .into_iter()
            .map(|sig| {
                let (count, rep) = agg[&sig];
                Candidate {
                    restricted_sig: sig,
                    count,
                    representative: rep,
                }
            })
            .collect()
    }

    /// A scratch buffer for [`Engine::simulate_in`], sized to this
    /// engine's atom universe.
    pub fn sim_scratch(&self) -> SimScratch {
        SimScratch {
            inter: self.universe.empty_set(),
        }
    }

    /// How many tuples would become certain if a tuple with the given
    /// *restricted* signature were labeled `(positive, negative)` — the
    /// one-step lookahead the paper's lookahead strategies score
    /// ("labeling which tuple allows us to prune as many tuples as
    /// possible?"). Counts include the labeled tuple's own group. Both
    /// branches are computed without mutating the engine, directly over
    /// the maintained index.
    pub fn simulate(&self, restricted_sig: &AtomSet) -> (u64, u64) {
        let mut scratch = self.sim_scratch();
        self.simulate_in(restricted_sig, &mut scratch)
    }

    /// [`Engine::simulate`] with a caller-provided scratch, so a strategy
    /// scoring every candidate reuses one buffer across the whole sweep.
    pub fn simulate_in(&self, restricted_sig: &AtomSet, scratch: &mut SimScratch) -> (u64, u64) {
        let mut pruned_pos = 0u64;
        let mut pruned_neg = 0u64;
        for c in &self.index.candidates {
            let r = &c.restricted_sig;
            // Positive branch: U' = restricted_sig. Tuple class of r under
            // (U', negs): certain-positive iff U' ⊆ r; certain-negative iff
            // r ∩ U' ⊆ n for some n.
            r.intersection_into(restricted_sig, &mut scratch.inter);
            let becomes_pos = restricted_sig.is_subset(r);
            let becomes_neg = self.vs.any_negative_contains(&scratch.inter);
            if becomes_pos || becomes_neg {
                pruned_pos += c.count;
            }
            // Negative branch: negs' = negs ∪ {restricted_sig}.
            if r.is_subset(restricted_sig) {
                pruned_neg += c.count;
            }
        }
        (pruned_pos, pruned_neg)
    }

    /// Absorb a user label for tuple `id` and propagate it (gray out every
    /// tuple whose class becomes certain). The 1-element special case of
    /// [`Engine::label_batch`].
    pub fn label(&mut self, id: ProductId, label: Label) -> Result<LabelOutcome> {
        let outcome = self.label_batch(&[(id, label)])?;
        Ok(LabelOutcome {
            was_informative: outcome.informative_labels == 1,
            pruned: outcome.pruned,
            informative_remaining: outcome.informative_remaining,
            resolved: outcome.resolved,
        })
    }

    /// Absorb a whole batch of user labels (the unit of work of the
    /// paper's top-k mode and the wire protocol's `AnswerBatch`) and
    /// propagate them in **one** pass.
    ///
    /// The batch is applied atomically: every entry is validated up front
    /// (an unknown id, an id labeled in an earlier interaction, or the
    /// same id carrying both labels rejects the batch with a typed error)
    /// and the version-space updates are trialed on a copy (an entry whose
    /// label contradicts the rest rejects the batch too) — on any error
    /// the engine is untouched. Duplicate ids with equal labels collapse
    /// to one application.
    ///
    /// On success the candidate index is maintained with a **single**
    /// pass — one re-key of the previously-informative groups when any
    /// label was positive, otherwise one sweep against the new negative
    /// antichain — and the generation counter is bumped **once**, so a
    /// k-label batch costs one propagation instead of k.
    pub fn label_batch(&mut self, labels: &[(ProductId, Label)]) -> Result<BatchOutcome> {
        // Stage 1 — validate the whole batch up front, touching nothing.
        let mut entries: Vec<(ProductId, Label, usize)> = Vec::with_capacity(labels.len());
        let mut batch_label: HashMap<ProductId, Label> = HashMap::with_capacity(labels.len());
        for &(id, label) in labels {
            if self.labels.contains_key(&id) {
                return Err(InferenceError::AlreadyLabeled { tuple: id });
            }
            let g = self.group_of(id)?;
            match batch_label.insert(id, label) {
                None => entries.push((id, label, g)),
                Some(prev) if prev == label => {}
                Some(_) => return Err(InferenceError::ConflictingBatchLabels { tuple: id }),
            }
        }
        if entries.is_empty() {
            return Ok(BatchOutcome {
                applied: 0,
                informative_labels: 0,
                pruned: 0,
                informative_remaining: self.stats.informative,
                resolved: self.is_resolved(),
            });
        }

        // Stage 2 — apply every version-space update, in batch order, so
        // an inconsistent entry anywhere rejects atomically. A single
        // entry updates in place (`add_positive`/`add_negative` validate
        // before mutating, so the 1-element case is already atomic — no
        // trial clone on the one-label-per-question hot path); a larger
        // batch trials the updates on a copy first.
        let mut any_positive = false;
        if let [(id, label, g)] = entries[..] {
            let sig = &self.groups[g].sig;
            match label {
                Label::Positive => {
                    self.vs.add_positive(id, sig)?;
                    any_positive = true;
                }
                Label::Negative => self.vs.add_negative(id, sig)?,
            }
        } else {
            let mut vs = self.vs.clone();
            for &(id, label, g) in &entries {
                let sig = &self.groups[g].sig;
                match label {
                    Label::Positive => {
                        vs.add_positive(id, sig)?;
                        any_positive = true;
                    }
                    Label::Negative => vs.add_negative(id, sig)?,
                }
            }
            self.vs = vs;
        }

        // Stage 3 — commit: record the labels (informativeness is judged
        // against the pre-batch classes, still cached on the groups).
        let before_informative = self.index.informative_tuples;
        let mut informative = Vec::with_capacity(entries.len());
        for &(id, label, g) in &entries {
            informative.push(self.groups[g].class == TupleClass::Informative);
            self.labels.insert(id, label);
            self.groups[g].labeled += 1;
            match label {
                Label::Positive => self.stats.labeled_positive += 1,
                Label::Negative => self.stats.labeled_negative += 1,
            }
        }

        // Stage 4 — one candidate-index maintenance pass for the batch.
        if any_positive {
            // `U` shrank: restricted signatures are re-keyed, but only the
            // groups that were still informative can change class.
            let mut alive: Vec<usize> = self.index.members.iter().flatten().copied().collect();
            alive.sort_unstable();
            self.reindex(&alive);
        } else {
            // `U` unchanged: restricted signatures are stable, and a
            // previously-informative candidate can only have flipped to
            // certain-negative via one of *this batch's* negatives — the
            // older antichain entries already cleared every survivor, so
            // the sweep tests the fresh restrictions only.
            let new_negs: Vec<AtomSet> = entries
                .iter()
                .map(|&(_, _, g)| self.vs.restrict(&self.groups[g].sig))
                .collect();
            self.drop_subsumed_candidates(&new_negs);
        }

        // Stage 5 — one generation bump, then the progress accounting.
        let pruned = before_informative.saturating_sub(self.index.informative_tuples);
        self.index.generation += 1;
        self.refresh_counters();
        let outcome = BatchOutcome {
            applied: entries.len() as u64,
            informative_labels: informative.iter().filter(|&&i| i).count() as u64,
            pruned,
            informative_remaining: self.stats.informative,
            resolved: self.is_resolved(),
        };
        // One log record per applied label; the batch's prune count is not
        // attributable per label (propagation was shared), so the final
        // record of the batch carries the total.
        let last = entries.len() - 1;
        for (i, &(id, label, _)) in entries.iter().enumerate() {
            self.stats.log.push(InteractionRecord {
                tuple: id,
                label,
                informative: informative[i],
                pruned: if i == last { pruned } else { 0 },
            });
        }
        Ok(outcome)
    }

    /// Rebuild the aggregation over the given group indices (ascending, so
    /// candidate order stays the deterministic first-seen group order),
    /// reclassifying each against the current version space and updating
    /// its cached class. Groups outside `alive` keep their class — used
    /// with the previously-informative set after a positive label, and
    /// with all groups at construction.
    fn reindex(&mut self, alive: &[usize]) {
        self.index.clear();
        // One scratch set: classification and the candidate re-key both
        // need `sig ∩ U`, so compute the intersection once per group.
        let mut restricted = self.universe.empty_set();
        for &g in alive {
            let group = &mut self.groups[g];
            group.class = self
                .vs
                .classify_restricted_into(&group.sig, &mut restricted);
            if group.class != TupleClass::Informative {
                continue;
            }
            let (count, rep) = (group.count(), group.members.rep());
            self.index.add_group(g, restricted.clone(), count, rep);
        }
    }

    /// Drop every candidate whose restricted signature is subsumed by one
    /// of the freshly-added negatives (sound after negative-only updates:
    /// `U` is unchanged, so a previously-informative candidate can only
    /// have become certain-**negative**, and only via a fresh negative —
    /// the older antichain entries already cleared every survivor),
    /// marking its member groups certain-negative. Candidate order among
    /// survivors is preserved; the map keeps the surviving keys (only
    /// their slot indices are fixed up), so nothing is re-hashed or
    /// re-cloned.
    fn drop_subsumed_candidates(&mut self, new_negs: &[AtomSet]) {
        // Pack both sides row-major so the whole antichain sweep is one
        // batch kernel dispatch over contiguous rows — no per-pair
        // dispatch, no per-candidate pointer chase.
        let nbits = self.universe.len();
        let mut rows = PackedAtomSets::with_capacity(nbits, self.index.candidates.len());
        rows.extend(self.index.candidates.iter().map(|c| &c.restricted_sig));
        let mut negs = PackedAtomSets::with_capacity(nbits, new_negs.len());
        negs.extend(new_negs.iter());
        let mut subsumed = Vec::new();
        rows.subsumed_mask(&negs, &mut subsumed);
        let keep: Vec<bool> = subsumed.iter().map(|&s| !s).collect();
        if keep.iter().all(|&k| k) {
            return;
        }
        for (slot, &k) in keep.iter().enumerate() {
            if k {
                continue;
            }
            self.index.informative_tuples -= self.index.candidates[slot].count;
            for g in std::mem::take(&mut self.index.members[slot]) {
                self.groups[g].class = TupleClass::CertainNegative;
            }
        }
        self.index.by_restricted.retain(|_, slot| keep[*slot]);
        let mut new_slot = vec![usize::MAX; keep.len()];
        let mut next = 0usize;
        for (old, &k) in keep.iter().enumerate() {
            if k {
                new_slot[old] = next;
                next += 1;
            }
        }
        for slot in self.index.by_restricted.values_mut() {
            *slot = new_slot[*slot];
        }
        let mut i = 0;
        self.index.candidates.retain(|_| {
            i += 1;
            keep[i - 1]
        });
        let mut i = 0;
        self.index.members.retain(|_| {
            i += 1;
            keep[i - 1]
        });
    }

    /// Absorb additional candidate tuples mid-session — freshly arrived
    /// data, or a widened sample of a huge product. Each new tuple is
    /// classified under the labels given *so far*: tuples whose label is
    /// already entailed arrive grayed out and are never asked about.
    /// Ids already known are skipped. Returns the number of tuples added.
    ///
    /// A factorized engine already covers the **entire** product, so every
    /// id is known by construction and the call is a no-op returning 0.
    pub fn absorb_ids(&mut self, ids: &[ProductId]) -> Result<u64> {
        if self.factorized {
            return Ok(0);
        }
        let known: std::collections::HashSet<ProductId> = self
            .groups
            .iter()
            .flat_map(|g| g.members.witnesses().iter().copied())
            .collect();
        let mut added = 0u64;
        for &id in ids {
            if known.contains(&id) {
                continue;
            }
            let tuple = self.product.tuple(id)?;
            let sig = self.universe.signature(&tuple);
            match self.by_sig.get(&sig) {
                Some(&g) => {
                    self.groups[g].members.push(id);
                    if self.groups[g].class == TupleClass::Informative {
                        // The group's restricted signature is a live index
                        // key; its candidate gains one tuple (the group's
                        // minimum is unchanged by an append).
                        let restricted = self.vs.restrict(&self.groups[g].sig);
                        let slot = self.index.by_restricted[&restricted];
                        self.index.candidates[slot].count += 1;
                        self.index.informative_tuples += 1;
                    }
                }
                None => {
                    let class = self.vs.classify(&sig);
                    let g = self.groups.len();
                    self.by_sig.insert(sig.clone(), g);
                    if class == TupleClass::Informative {
                        let restricted = self.vs.restrict(&sig);
                        self.index.add_group(g, restricted, 1, id);
                    }
                    self.groups.push(Group {
                        sig,
                        members: GroupMembers::Explicit(vec![id]),
                        class,
                        labeled: 0,
                    });
                }
            }
            added += 1;
        }
        self.stats.total_tuples += added;
        if added > 0 {
            self.index.generation += 1;
        }
        self.refresh_counters();
        Ok(added)
    }

    /// Tuple ids currently *visible* to a free-form user: everything not
    /// yet explicitly labeled, and — when `gray_out` — not entailed either.
    /// (Interaction modes 1 and 2 of Figure 3.) A factorized engine shows
    /// each group's witness sample instead of the unmaterialized full
    /// member list.
    pub fn visible_ids(&self, gray_out: bool) -> Vec<ProductId> {
        let mut out = Vec::new();
        for g in &self.groups {
            if gray_out && g.class.is_certain() {
                continue;
            }
            for &id in g.members.witnesses() {
                if !self.labels.contains_key(&id) {
                    out.push(id);
                }
            }
        }
        out.sort();
        out
    }

    /// Check that a goal predicate is still consistent with every label
    /// absorbed so far (the soundness invariant: the true goal can never be
    /// eliminated by correct answers).
    pub fn consistent_with(&self, goal: &JoinPredicate) -> bool {
        self.vs.is_consistent(goal.atoms())
    }

    fn group_of(&self, id: ProductId) -> Result<usize> {
        let tuple = self.product.tuple(id)?;
        let sig = self.universe.signature(&tuple);
        self.by_sig
            .get(&sig)
            .copied()
            .ok_or(InferenceError::UnknownTuple { tuple: id })
    }

    fn refresh_counters(&mut self) {
        let labeled = self.labels.len() as u64;
        let certain = self
            .stats
            .total_tuples
            .saturating_sub(self.index.informative_tuples);
        self.stats.pruned = certain.saturating_sub(labeled);
        self.stats.informative = self.index.informative_tuples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_relation::{tup, DataType, Relation, RelationSchema};

    /// The session-store contract: an engine is a self-contained value that
    /// can be kept in a concurrent map and handled by any worker thread.
    #[test]
    fn engine_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Product>();
        assert_send_sync::<crate::session::SessionOutcome>();
    }

    fn flights() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap()
    }

    fn engine(f: &Relation, h: &Relation) -> Engine {
        let p = Product::new(vec![f, h]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    /// Paper tuple (k), 1-based, to rank.
    fn t(k: u64) -> ProductId {
        ProductId(k - 1)
    }

    #[test]
    fn builds_signature_groups() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        // Signatures in Figure 1: ∅ ×3 (tuples 1,5,9), {FC} ×3 (2,6,11),
        // {TC,AD} ×2 (3,4), {FC,AD} ×1 (7), {TC} ×2 (8,10), {AD} ×1 (12).
        assert_eq!(e.num_groups(), 6);
        assert_eq!(e.stats().total_tuples, 12);
        assert_eq!(e.stats().informative, 12);
    }

    #[test]
    fn paper_example_tuple4_uninformative_after_3_positive() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        assert!(e.is_informative(t(3)).unwrap());
        let out = e.label(t(3), Label::Positive).unwrap();
        assert!(out.was_informative);
        // Tuple (4) has the same signature as (3): certain-positive now.
        assert_eq!(e.classify(t(4)).unwrap(), TupleClass::CertainPositive);
        assert!(!e.is_informative(t(4)).unwrap());
    }

    #[test]
    fn paper_example_label_12_positive_prunes_3_4_7() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let out = e.label(t(12), Label::Positive).unwrap();
        // Pruned tuples: (3), (4), (7) — plus the labeled (12) itself.
        assert_eq!(out.pruned, 4);
        for k in [3, 4, 7] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::CertainPositive,
                "tuple {k}"
            );
        }
        for k in [1, 2, 5, 6, 8, 9, 10, 11] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::Informative,
                "tuple {k}"
            );
        }
    }

    #[test]
    fn paper_example_label_12_negative_prunes_1_5_9() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let out = e.label(t(12), Label::Negative).unwrap();
        assert_eq!(out.pruned, 4); // (1),(5),(9) + (12) itself
        for k in [1, 5, 9] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::CertainNegative,
                "tuple {k}"
            );
        }
        for k in [2, 3, 4, 6, 7, 8, 10, 11] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::Informative,
                "tuple {k}"
            );
        }
    }

    #[test]
    fn paper_termination_with_three_labels() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        e.label(t(7), Label::Negative).unwrap();
        let out = e.label(t(8), Label::Negative).unwrap();
        assert!(out.resolved);
        assert!(e.is_resolved());
        // The unique consistent predicate is Q2 = To≍City ∧ Airline≍Discount.
        let result = e.result();
        assert_eq!(
            result.to_string(),
            "flights.To ≍ hotels.City ∧ flights.Airline ≍ hotels.Discount"
        );
        // And it selects exactly tuples (3),(4).
        assert_eq!(e.entailed_positive_ids(), vec![t(3), t(4)]);
    }

    #[test]
    fn simulate_matches_paper_prune_counts() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        // Tuple (12) has signature {AD}; from the empty state its restricted
        // signature is itself.
        let tuple12 = e.product().tuple(t(12)).unwrap();
        let sig12 = e.universe().signature(&tuple12);
        let (pos, neg) = e.simulate(&sig12);
        // Positive: prunes (3),(4),(7),(12) -> 4; negative: (1),(5),(9),(12) -> 4.
        assert_eq!((pos, neg), (4, 4));
    }

    #[test]
    fn simulate_agrees_with_actual_labeling() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        for c in e.candidates().candidates().to_vec() {
            let (pos, neg) = e.simulate(&c.restricted_sig);
            let mut e_pos = e.clone();
            let out = e_pos.label(c.representative, Label::Positive).unwrap();
            assert_eq!(out.pruned, pos, "positive branch of {:?}", c.restricted_sig);
            let mut e_neg = e.clone();
            let out = e_neg.label(c.representative, Label::Negative).unwrap();
            assert_eq!(out.pruned, neg, "negative branch of {:?}", c.restricted_sig);
        }
    }

    #[test]
    fn inconsistent_label_is_rejected_and_state_unchanged() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        let before = e.stats().clone();
        // (4) is certain-positive; labeling it negative is inconsistent.
        let err = e.label(t(4), Label::Negative);
        assert!(matches!(err, Err(InferenceError::InconsistentLabel { .. })));
        assert_eq!(e.stats(), &before);
        // But labeling it positive is fine (wasted yet consistent).
        let out = e.label(t(4), Label::Positive).unwrap();
        assert!(!out.was_informative);
        assert_eq!(out.pruned, 0);
        assert_eq!(e.stats().wasted_interactions(), 1);
    }

    #[test]
    fn double_label_rejected() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        assert!(matches!(
            e.label(t(3), Label::Positive),
            Err(InferenceError::AlreadyLabeled { .. })
        ));
    }

    #[test]
    fn visible_ids_gray_out() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        assert_eq!(e.visible_ids(false).len(), 12);
        assert_eq!(e.visible_ids(true).len(), 12);
        e.label(t(12), Label::Positive).unwrap();
        // Without gray-out the user still sees 11 unlabeled tuples; with
        // gray-out, (3),(4),(7) disappear too.
        assert_eq!(e.visible_ids(false).len(), 11);
        assert_eq!(e.visible_ids(true).len(), 8);
    }

    #[test]
    fn goal_remains_consistent_under_correct_answers() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let u = e.universe().clone();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        let goal = JoinPredicate::of(u, [tc, ad]);
        // Answer every query truthfully w.r.t. the goal.
        for k in [12u64, 8, 7, 3, 2] {
            if e.label_of(t(k)).is_some() {
                continue;
            }
            let tuple = e.product().tuple(t(k)).unwrap();
            let lbl = Label::from_bool(goal.selects(&tuple));
            e.label(t(k), lbl).unwrap();
            assert!(e.consistent_with(&goal));
        }
    }

    #[test]
    fn product_too_large_guard() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let opts = EngineOptions {
            max_product: 5,
            ..Default::default()
        };
        assert!(matches!(
            Engine::new(p, &opts),
            Err(InferenceError::ProductTooLarge { size: 12, limit: 5 })
        ));
    }

    #[test]
    fn from_ids_subset() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let ids = [t(1), t(3), t(8)];
        let e = Engine::from_ids(p, &ids, &EngineOptions::default()).unwrap();
        assert_eq!(e.stats().total_tuples, 3);
        assert_eq!(e.num_groups(), 3);
        // A tuple outside the subset is unknown.
        assert!(e.classify(t(2)).is_ok() || e.classify(t(2)).is_err());
    }

    #[test]
    fn absorb_ids_classifies_under_current_labels() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        // Start from a 4-tuple sample; label (3)+ ((3) is rank 2).
        let ids = [t(3), t(1), t(8), t(12)];
        let mut e = Engine::from_ids(p, &ids, &EngineOptions::default()).unwrap();
        e.label(t(3), Label::Positive).unwrap();
        assert_eq!(e.stats().total_tuples, 4);

        // Absorb the rest of the product; (4) shares (3)'s signature and
        // must arrive certain-positive (never asked).
        let rest: Vec<ProductId> = (0..12).map(ProductId).collect();
        let added = e.absorb_ids(&rest).unwrap();
        assert_eq!(added, 8);
        assert_eq!(e.stats().total_tuples, 12);
        assert_eq!(e.classify(t(4)).unwrap(), TupleClass::CertainPositive);
        assert!(!e.is_informative(t(4)).unwrap());
        // Duplicates are skipped idempotently.
        assert_eq!(e.absorb_ids(&rest).unwrap(), 0);
        assert_eq!(e.stats().total_tuples, 12);
    }

    #[test]
    fn absorb_then_converge_equals_full_engine_result() {
        let (f, h) = (flights(), hotels());
        let u_goal;
        // Converge on a sampled-then-absorbed engine.
        let mut e = {
            let p = Product::new(vec![&f, &h]).unwrap();
            let mut e = Engine::from_ids(p, &[t(3), t(8)], &EngineOptions::default()).unwrap();
            u_goal = {
                let u = e.universe().clone();
                let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
                let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
                JoinPredicate::of(u, [tc, ad])
            };
            e.absorb_ids(&(0..12).map(ProductId).collect::<Vec<_>>())
                .unwrap();
            e
        };
        // Answer every informative tuple truthfully.
        while let Some(c) = e.candidates().candidates().first().cloned() {
            let tuple = e.product().tuple(c.representative).unwrap();
            e.label(c.representative, Label::from_bool(u_goal.selects(&tuple)))
                .unwrap();
        }
        assert!(e.is_resolved());
        assert!(e
            .result()
            .instance_equivalent(&u_goal, e.product())
            .unwrap());
    }

    #[test]
    fn informative_groups_merge_after_upper_shrinks() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let before = e.candidates().len();
        assert_eq!(before, 6);
        // Labeling (12)+ sets U = {AD}; signatures {FC} and ∅ restrict to ∅
        // and merge; {TC,AD} and {FC,AD} become certain.
        e.label(t(12), Label::Positive).unwrap();
        let after = e.candidates();
        // Remaining informative restricted signatures: ∅ (from ∅, {FC}, {TC}).
        assert_eq!(after.len(), 1);
        assert_eq!(after.candidates()[0].count, 8);
    }

    /// The maintained index always equals a from-scratch reclassification,
    /// through positives, negatives and mid-session absorbs.
    #[test]
    fn index_matches_recompute_through_a_session() {
        fn sorted(mut v: Vec<Candidate>) -> Vec<Candidate> {
            v.sort_by(|a, b| a.restricted_sig.cmp(&b.restricted_sig));
            v
        }
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::from_ids(p, &[t(3), t(8), t(12)], &EngineOptions::default()).unwrap();
        assert_eq!(
            sorted(e.candidates().candidates().to_vec()),
            sorted(e.recompute_candidates())
        );
        e.label(t(12), Label::Negative).unwrap();
        assert_eq!(
            sorted(e.candidates().candidates().to_vec()),
            sorted(e.recompute_candidates())
        );
        e.absorb_ids(&(0..12).map(ProductId).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(
            sorted(e.candidates().candidates().to_vec()),
            sorted(e.recompute_candidates())
        );
        e.label(t(3), Label::Positive).unwrap();
        assert_eq!(
            sorted(e.candidates().candidates().to_vec()),
            sorted(e.recompute_candidates())
        );
    }

    /// One batch of the paper's three terminating labels: same final state
    /// as labeling one at a time, but a single generation bump.
    #[test]
    fn label_batch_resolves_paper_example_in_one_pass() {
        let (f, h) = (flights(), hotels());
        let mut batched = engine(&f, &h);
        let g0 = batched.generation();
        let out = batched
            .label_batch(&[
                (t(3), Label::Positive),
                (t(7), Label::Negative),
                (t(8), Label::Negative),
            ])
            .unwrap();
        assert_eq!(out.applied, 3);
        assert_eq!(out.informative_labels, 3);
        assert!(out.resolved);
        assert_eq!(out.informative_remaining, 0);
        assert_eq!(out.pruned, 12, "the whole instance becomes certain");
        assert_eq!(batched.generation(), g0 + 1, "one bump for the batch");

        let mut sequential = engine(&f, &h);
        sequential.label(t(3), Label::Positive).unwrap();
        sequential.label(t(7), Label::Negative).unwrap();
        sequential.label(t(8), Label::Negative).unwrap();
        assert_eq!(batched.result(), sequential.result());
        assert_eq!(batched.stats().labeled_positive, 1);
        assert_eq!(batched.stats().labeled_negative, 2);
        assert_eq!(batched.stats().interactions(), 3);
        assert_eq!(
            batched.entailed_positive_ids(),
            sequential.entailed_positive_ids()
        );
        assert_eq!(batched.recompute_candidates(), Vec::new());
    }

    /// A negative-only batch shares one antichain sweep; the maintained
    /// index still equals the from-scratch reference afterwards.
    #[test]
    fn label_batch_negative_only_matches_recompute() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let out = e
            .label_batch(&[(t(12), Label::Negative), (t(8), Label::Negative)])
            .unwrap();
        assert_eq!(out.applied, 2);
        assert!(!out.resolved);
        let mut maintained = e.candidates().candidates().to_vec();
        let mut reference = e.recompute_candidates();
        maintained.sort_by(|a, b| a.restricted_sig.cmp(&b.restricted_sig));
        reference.sort_by(|a, b| a.restricted_sig.cmp(&b.restricted_sig));
        assert_eq!(maintained, reference);
    }

    /// Every rejection leaves the engine exactly as it was: unknown id,
    /// already-labeled id, conflicting duplicate, inconsistent entry.
    #[test]
    fn label_batch_rejections_are_atomic() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(5), Label::Negative).unwrap();
        let before_stats = e.stats().clone();
        let before_gen = e.generation();
        let before_cands = e.candidates().candidates().to_vec();

        // Unknown id anywhere in the batch (out of range here; an id
        // outside a sampled subset reports `UnknownTuple` the same way).
        let err = e.label_batch(&[(t(3), Label::Positive), (ProductId(99), Label::Negative)]);
        assert!(err.is_err());
        // An id labeled in an earlier interaction.
        let err = e.label_batch(&[(t(3), Label::Positive), (t(5), Label::Negative)]);
        assert!(matches!(
            err,
            Err(InferenceError::AlreadyLabeled { tuple }) if tuple == t(5)
        ));
        // The same id with both labels.
        let err = e.label_batch(&[
            (t(3), Label::Positive),
            (t(8), Label::Negative),
            (t(3), Label::Negative),
        ]);
        assert!(matches!(
            err,
            Err(InferenceError::ConflictingBatchLabels { tuple }) if tuple == t(3)
        ));
        // An entry inconsistent with a sibling: (3)+ makes (4) certain-
        // positive, so (4)− contradicts it mid-batch.
        let err = e.label_batch(&[(t(3), Label::Positive), (t(4), Label::Negative)]);
        assert!(matches!(err, Err(InferenceError::InconsistentLabel { .. })));

        assert_eq!(e.stats(), &before_stats, "stats untouched");
        assert_eq!(e.generation(), before_gen, "no generation bump");
        assert_eq!(e.candidates().candidates(), &before_cands[..]);
    }

    /// Duplicate ids with equal labels collapse to one application; the
    /// empty batch is a no-op that does not bump the generation.
    #[test]
    fn label_batch_collapses_duplicates_and_skips_empty() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let g0 = e.generation();
        let out = e.label_batch(&[]).unwrap();
        assert_eq!((out.applied, out.pruned), (0, 0));
        assert_eq!(e.generation(), g0, "empty batch keeps caches valid");

        let out = e
            .label_batch(&[(t(12), Label::Positive), (t(12), Label::Positive)])
            .unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(e.stats().interactions(), 1);
        assert_eq!(e.stats().log.len(), 1);
        assert_eq!(e.generation(), g0 + 1);
    }

    /// A batch entry a sibling makes uninformative is still applied (the
    /// paper's "user labels the whole batch" slack) and judged against the
    /// batch-start state.
    #[test]
    fn label_batch_keeps_sibling_pruned_entries() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        // (3)+ makes (4) certain-positive; labeling both in one batch is
        // consistent, applies twice, and both count as informative because
        // both were informative when the batch was proposed.
        let out = e
            .label_batch(&[(t(3), Label::Positive), (t(4), Label::Positive)])
            .unwrap();
        assert_eq!(out.applied, 2);
        assert_eq!(out.informative_labels, 2);
        assert_eq!(e.stats().interactions(), 2);
        let mut sequential = engine(&f, &h);
        sequential.label(t(3), Label::Positive).unwrap();
        sequential.label(t(4), Label::Positive).unwrap();
        assert_eq!(e.result(), sequential.result());
        assert_eq!(e.stats().informative, sequential.stats().informative);
    }

    /// Factorized construction reproduces the enumerated engine's state on
    /// the paper instance: same groups, same candidates (counts,
    /// representatives, order), same stats.
    #[test]
    fn from_factorized_matches_full_engine_on_paper_instance() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let fe = Engine::from_factorized(p, &EngineOptions::default()).unwrap();
        let e = engine(&f, &h);
        assert!(fe.is_factorized());
        assert!(!e.is_factorized());
        assert_eq!(fe.stats(), e.stats());
        assert_eq!(fe.num_groups(), e.num_groups());
        assert_eq!(fe.candidates().candidates(), e.candidates().candidates());
    }

    /// The paper's three terminating labels resolve a factorized engine to
    /// the same predicate, with identical prune counts along the way.
    #[test]
    fn factorized_session_resolves_like_enumerated() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut fe = Engine::from_factorized(p, &EngineOptions::default()).unwrap();
        let mut e = engine(&f, &h);
        for (k, label) in [
            (3, Label::Positive),
            (7, Label::Negative),
            (8, Label::Negative),
        ] {
            let fo = fe.label(t(k), label).unwrap();
            let eo = e.label(t(k), label).unwrap();
            assert_eq!(fo, eo, "label outcome for tuple {k}");
        }
        assert!(fe.is_resolved());
        assert_eq!(fe.result(), e.result());
        assert_eq!(fe.entailed_positive_ids(), vec![t(3), t(4)]);
    }

    /// A factorized engine already covers the whole product: absorbing ids
    /// is a no-op and does not disturb caches.
    #[test]
    fn factorized_absorb_is_a_noop() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut fe = Engine::from_factorized(p, &EngineOptions::default()).unwrap();
        let g0 = fe.generation();
        let all: Vec<ProductId> = (0..12).map(ProductId).collect();
        assert_eq!(fe.absorb_ids(&all).unwrap(), 0);
        assert_eq!(fe.stats().total_tuples, 12);
        assert_eq!(fe.generation(), g0);
    }

    /// An exhausted sweep budget surfaces as the typed fallback signal.
    #[test]
    fn factorized_sweep_budget_is_typed() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let opts = EngineOptions {
            max_combos: 1,
            ..Default::default()
        };
        assert!(matches!(
            Engine::from_factorized(p, &opts),
            Err(InferenceError::FactorizationTooLarge { limit: 1, .. })
        ));
    }

    /// The generation counter moves on every mutation and only then.
    #[test]
    fn generation_counts_mutations_not_queries() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let g0 = e.generation();
        let _ = e.candidates();
        let _ = e.simulate(&e.universe().empty_set());
        let _ = e.recompute_candidates();
        assert_eq!(e.generation(), g0);
        e.label(t(12), Label::Positive).unwrap();
        assert_eq!(e.generation(), g0 + 1);
        // Absorbing only duplicates is a no-op and keeps caches valid.
        let all: Vec<ProductId> = (0..12).map(ProductId).collect();
        e.absorb_ids(&all).unwrap();
        assert_eq!(e.generation(), g0 + 1);
    }
}
