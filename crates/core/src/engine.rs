//! The interactive inference engine — the loop of the paper's Figure 2.
//!
//! The engine groups the candidate tuples of a cartesian product by their
//! signature `Θ(t)` (tuples with equal signatures are indistinguishable to
//! every join predicate), maintains the [`VersionSpace`], absorbs labels,
//! propagates them (graying out newly-certain tuples) and reports progress.
//! Strategies query it through [`Engine::informative_groups`] and
//! [`Engine::simulate`].

use crate::atoms::{AtomScope, AtomUniverse};
use crate::bitset::AtomSet;
use crate::error::{InferenceError, Result};
use crate::label::Label;
use crate::predicate::JoinPredicate;
use crate::stats::{InteractionRecord, ProgressStats};
use crate::version_space::{TupleClass, VersionSpace};
use jim_relation::{Product, ProductId};
use std::collections::HashMap;
use std::sync::Arc;

/// Construction options for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Which attribute pairs are candidate atoms.
    pub scope: AtomScope,
    /// Refuse to enumerate products larger than this (callers should
    /// [`Product::sample`] first). Default: 5,000,000.
    pub max_product: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            scope: AtomScope::CrossRelation,
            max_product: 5_000_000,
        }
    }
}

/// One signature group: all candidate tuples sharing `Θ(t)`.
#[derive(Debug, Clone)]
struct Group {
    /// The full (unrestricted) signature — immutable for the whole run.
    sig: AtomSet,
    /// The product tuples carrying this signature, in rank order.
    ids: Vec<ProductId>,
    /// Current classification under the version space.
    class: TupleClass,
    /// Tuples of this group explicitly labeled by the user.
    labeled: u64,
}

impl Group {
    fn count(&self) -> u64 {
        self.ids.len() as u64
    }
}

/// What a label did to the instance (returned by [`Engine::label`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelOutcome {
    /// Whether the labeled tuple was informative (a strategy-driven session
    /// only ever labels informative tuples; free-form users may not).
    pub was_informative: bool,
    /// Tuples that this label made certain (newly grayed out), including
    /// the labeled tuple itself.
    pub pruned: u64,
    /// Informative tuples remaining after propagation.
    pub informative_remaining: u64,
    /// True iff inference is complete (no informative tuple remains).
    pub resolved: bool,
}

/// A view of one informative candidate offered to strategies: the signature
/// restricted to the current `U`, the number of tuples carrying it, and a
/// representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// `Θ(t) ∩ U` — all tuples with this restricted signature are
    /// interchangeable.
    pub restricted_sig: AtomSet,
    /// Number of product tuples in this equivalence class.
    pub count: u64,
    /// A representative tuple id (the one a session would display).
    pub representative: ProductId,
}

/// The interactive join-inference engine.
#[derive(Debug, Clone)]
pub struct Engine {
    product: Product,
    universe: Arc<AtomUniverse>,
    vs: VersionSpace,
    groups: Vec<Group>,
    by_sig: HashMap<AtomSet, usize>,
    labels: HashMap<ProductId, Label>,
    stats: ProgressStats,
}

impl Engine {
    /// Build an engine over the full cartesian product of `product`.
    pub fn new(product: Product, options: &EngineOptions) -> Result<Self> {
        if product.size() > options.max_product {
            return Err(InferenceError::ProductTooLarge {
                size: product.size(),
                limit: options.max_product,
            });
        }
        let ids: Vec<ProductId> = (0..product.size()).map(ProductId).collect();
        Engine::from_ids(product, &ids, options)
    }

    /// Build an engine over an explicit subset of product tuples (e.g. a
    /// uniform sample of a product too large to enumerate).
    pub fn from_ids(product: Product, ids: &[ProductId], options: &EngineOptions) -> Result<Self> {
        let universe = AtomUniverse::new(product.schema().clone(), options.scope)?;
        let vs = VersionSpace::new(universe.clone());

        let mut groups: Vec<Group> = Vec::new();
        let mut by_sig: HashMap<AtomSet, usize> = HashMap::new();
        for &id in ids {
            let tuple = product.tuple(id)?;
            let sig = universe.signature(&tuple);
            match by_sig.get(&sig) {
                Some(&g) => groups[g].ids.push(id),
                None => {
                    let class = vs.classify(&sig);
                    by_sig.insert(sig.clone(), groups.len());
                    groups.push(Group {
                        sig,
                        ids: vec![id],
                        class,
                        labeled: 0,
                    });
                }
            }
        }

        let mut engine = Engine {
            product,
            universe,
            vs,
            groups,
            by_sig,
            labels: HashMap::new(),
            stats: ProgressStats {
                total_tuples: ids.len() as u64,
                ..Default::default()
            },
        };
        engine.refresh_counters();
        Ok(engine)
    }

    /// The product being inferred over.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// The shared atom universe.
    pub fn universe(&self) -> &Arc<AtomUniverse> {
        &self.universe
    }

    /// The current version space.
    pub fn version_space(&self) -> &VersionSpace {
        &self.vs
    }

    /// Progress statistics (the demo UI's counters).
    pub fn stats(&self) -> &ProgressStats {
        &self.stats
    }

    /// Number of distinct signatures observed in the instance.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The label previously given to `id`, if any.
    pub fn label_of(&self, id: ProductId) -> Option<Label> {
        self.labels.get(&id).copied()
    }

    /// Classify a tuple id under the current labels.
    pub fn classify(&self, id: ProductId) -> Result<TupleClass> {
        let g = self.group_of(id)?;
        Ok(self.groups[g].class)
    }

    /// True iff labeling `id` could still narrow the version space.
    pub fn is_informative(&self, id: ProductId) -> Result<bool> {
        Ok(self.classify(id)? == TupleClass::Informative && !self.labels.contains_key(&id))
    }

    /// True iff no informative tuple remains — the paper's termination
    /// condition (all consistent predicates are instance-equivalent).
    pub fn is_resolved(&self) -> bool {
        self.groups.iter().all(|g| g.class.is_certain())
    }

    /// The inferred query: the canonical (maximal) consistent predicate.
    /// Meaningful once [`Engine::is_resolved`] returns true, but callable at
    /// any time (it is the most specific hypothesis consistent so far).
    pub fn result(&self) -> JoinPredicate {
        self.vs.canonical()
    }

    /// Every tuple id entailed positive at the moment — the inferred join
    /// result on this instance (labeled positives + certain positives).
    pub fn entailed_positive_ids(&self) -> Vec<ProductId> {
        let mut out = Vec::new();
        for g in &self.groups {
            if g.class == TupleClass::CertainPositive {
                out.extend_from_slice(&g.ids);
            }
        }
        out.sort();
        out
    }

    /// The informative candidates, one per *restricted* signature
    /// (`Θ(t) ∩ U`), with per-class tuple counts aggregated. This is the
    /// interface strategies choose from; an empty result means resolved.
    pub fn informative_groups(&self) -> Vec<Candidate> {
        let mut agg: HashMap<AtomSet, (u64, ProductId)> = HashMap::new();
        let mut order: Vec<AtomSet> = Vec::new();
        for g in &self.groups {
            if g.class != TupleClass::Informative {
                continue;
            }
            let restricted = self.vs.restrict(&g.sig);
            match agg.get_mut(&restricted) {
                Some(entry) => {
                    entry.0 += g.count();
                    // Keep the smallest representative for determinism.
                    if g.ids[0] < entry.1 {
                        entry.1 = g.ids[0];
                    }
                }
                None => {
                    agg.insert(restricted.clone(), (g.count(), g.ids[0]));
                    order.push(restricted);
                }
            }
        }
        order
            .into_iter()
            .map(|sig| {
                let (count, rep) = agg[&sig];
                Candidate {
                    restricted_sig: sig,
                    count,
                    representative: rep,
                }
            })
            .collect()
    }

    /// How many tuples would become certain if a tuple with the given
    /// *restricted* signature were labeled `(positive, negative)` — the
    /// one-step lookahead the paper's lookahead strategies score
    /// ("labeling which tuple allows us to prune as many tuples as
    /// possible?"). Counts include the labeled tuple's own group. Both
    /// branches are computed without mutating the engine.
    pub fn simulate(&self, restricted_sig: &AtomSet) -> (u64, u64) {
        let candidates = self.informative_groups();
        let negs = self.vs.negatives();

        let mut pruned_pos = 0u64;
        let mut pruned_neg = 0u64;
        for c in &candidates {
            let r = &c.restricted_sig;
            // Positive branch: U' = restricted_sig. Tuple class of r under
            // (U', negs): certain-positive iff U' ⊆ r; certain-negative iff
            // r ∩ U' ⊆ n for some n.
            let inter = r.intersection(restricted_sig);
            let becomes_pos = restricted_sig.is_subset(r);
            let becomes_neg = negs.iter().any(|n| inter.is_subset(n));
            if becomes_pos || becomes_neg {
                pruned_pos += c.count;
            }
            // Negative branch: negs' = negs ∪ {restricted_sig}.
            if r.is_subset(restricted_sig) {
                pruned_neg += c.count;
            }
        }
        (pruned_pos, pruned_neg)
    }

    /// Absorb a user label for tuple `id` and propagate it (gray out every
    /// tuple whose class becomes certain).
    pub fn label(&mut self, id: ProductId, label: Label) -> Result<LabelOutcome> {
        if self.labels.contains_key(&id) {
            return Err(InferenceError::AlreadyLabeled { tuple: id });
        }
        let g = self.group_of(id)?;
        let was_informative = self.groups[g].class == TupleClass::Informative;
        let sig = self.groups[g].sig.clone();

        match label {
            Label::Positive => self.vs.add_positive(id, &sig)?,
            Label::Negative => self.vs.add_negative(id, &sig)?,
        }

        self.labels.insert(id, label);
        self.groups[g].labeled += 1;
        match label {
            Label::Positive => self.stats.labeled_positive += 1,
            Label::Negative => self.stats.labeled_negative += 1,
        }

        // Propagate: reclassify every group under the updated version space.
        let before_certain = self.certain_tuple_count();
        for group in &mut self.groups {
            group.class = self.vs.classify(&group.sig);
        }
        let after_certain = self.certain_tuple_count();
        let pruned = after_certain.saturating_sub(before_certain);

        self.refresh_counters();
        let outcome = LabelOutcome {
            was_informative,
            pruned,
            informative_remaining: self.stats.informative,
            resolved: self.is_resolved(),
        };
        self.stats.log.push(InteractionRecord {
            tuple: id,
            label,
            informative: was_informative,
            pruned,
        });
        Ok(outcome)
    }

    /// Absorb additional candidate tuples mid-session — freshly arrived
    /// data, or a widened sample of a huge product. Each new tuple is
    /// classified under the labels given *so far*: tuples whose label is
    /// already entailed arrive grayed out and are never asked about.
    /// Ids already known are skipped. Returns the number of tuples added.
    pub fn absorb_ids(&mut self, ids: &[ProductId]) -> Result<u64> {
        let known: std::collections::HashSet<ProductId> = self
            .groups
            .iter()
            .flat_map(|g| g.ids.iter().copied())
            .collect();
        let mut added = 0u64;
        for &id in ids {
            if known.contains(&id) {
                continue;
            }
            let tuple = self.product.tuple(id)?;
            let sig = self.universe.signature(&tuple);
            match self.by_sig.get(&sig) {
                Some(&g) => self.groups[g].ids.push(id),
                None => {
                    let class = self.vs.classify(&sig);
                    self.by_sig.insert(sig.clone(), self.groups.len());
                    self.groups.push(Group {
                        sig,
                        ids: vec![id],
                        class,
                        labeled: 0,
                    });
                }
            }
            added += 1;
        }
        self.stats.total_tuples += added;
        self.refresh_counters();
        Ok(added)
    }

    /// Tuple ids currently *visible* to a free-form user: everything not
    /// yet explicitly labeled, and — when `gray_out` — not entailed either.
    /// (Interaction modes 1 and 2 of Figure 3.)
    pub fn visible_ids(&self, gray_out: bool) -> Vec<ProductId> {
        let mut out = Vec::new();
        for g in &self.groups {
            if gray_out && g.class.is_certain() {
                continue;
            }
            for &id in &g.ids {
                if !self.labels.contains_key(&id) {
                    out.push(id);
                }
            }
        }
        out.sort();
        out
    }

    /// Check that a goal predicate is still consistent with every label
    /// absorbed so far (the soundness invariant: the true goal can never be
    /// eliminated by correct answers).
    pub fn consistent_with(&self, goal: &JoinPredicate) -> bool {
        self.vs.is_consistent(goal.atoms())
    }

    fn group_of(&self, id: ProductId) -> Result<usize> {
        let tuple = self.product.tuple(id)?;
        let sig = self.universe.signature(&tuple);
        self.by_sig
            .get(&sig)
            .copied()
            .ok_or(InferenceError::UnknownTuple { tuple: id })
    }

    fn certain_tuple_count(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| g.class.is_certain())
            .map(|g| g.count())
            .sum()
    }

    fn refresh_counters(&mut self) {
        let labeled = self.labels.len() as u64;
        let certain = self.certain_tuple_count();
        self.stats.pruned = certain.saturating_sub(labeled);
        self.stats.informative = self
            .groups
            .iter()
            .filter(|g| g.class == TupleClass::Informative)
            .map(|g| g.count())
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_relation::{tup, DataType, Relation, RelationSchema};

    /// The session-store contract: an engine is a self-contained value that
    /// can be kept in a concurrent map and handled by any worker thread.
    #[test]
    fn engine_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Product>();
        assert_send_sync::<crate::session::SessionOutcome>();
    }

    fn flights() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap()
    }

    fn engine(f: &Relation, h: &Relation) -> Engine {
        let p = Product::new(vec![f, h]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    /// Paper tuple (k), 1-based, to rank.
    fn t(k: u64) -> ProductId {
        ProductId(k - 1)
    }

    #[test]
    fn builds_signature_groups() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        // Signatures in Figure 1: ∅ ×3 (tuples 1,5,9), {FC} ×3 (2,6,11),
        // {TC,AD} ×2 (3,4), {FC,AD} ×1 (7), {TC} ×2 (8,10), {AD} ×1 (12).
        assert_eq!(e.num_groups(), 6);
        assert_eq!(e.stats().total_tuples, 12);
        assert_eq!(e.stats().informative, 12);
    }

    #[test]
    fn paper_example_tuple4_uninformative_after_3_positive() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        assert!(e.is_informative(t(3)).unwrap());
        let out = e.label(t(3), Label::Positive).unwrap();
        assert!(out.was_informative);
        // Tuple (4) has the same signature as (3): certain-positive now.
        assert_eq!(e.classify(t(4)).unwrap(), TupleClass::CertainPositive);
        assert!(!e.is_informative(t(4)).unwrap());
    }

    #[test]
    fn paper_example_label_12_positive_prunes_3_4_7() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let out = e.label(t(12), Label::Positive).unwrap();
        // Pruned tuples: (3), (4), (7) — plus the labeled (12) itself.
        assert_eq!(out.pruned, 4);
        for k in [3, 4, 7] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::CertainPositive,
                "tuple {k}"
            );
        }
        for k in [1, 2, 5, 6, 8, 9, 10, 11] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::Informative,
                "tuple {k}"
            );
        }
    }

    #[test]
    fn paper_example_label_12_negative_prunes_1_5_9() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let out = e.label(t(12), Label::Negative).unwrap();
        assert_eq!(out.pruned, 4); // (1),(5),(9) + (12) itself
        for k in [1, 5, 9] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::CertainNegative,
                "tuple {k}"
            );
        }
        for k in [2, 3, 4, 6, 7, 8, 10, 11] {
            assert_eq!(
                e.classify(t(k)).unwrap(),
                TupleClass::Informative,
                "tuple {k}"
            );
        }
    }

    #[test]
    fn paper_termination_with_three_labels() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        e.label(t(7), Label::Negative).unwrap();
        let out = e.label(t(8), Label::Negative).unwrap();
        assert!(out.resolved);
        assert!(e.is_resolved());
        // The unique consistent predicate is Q2 = To≍City ∧ Airline≍Discount.
        let result = e.result();
        assert_eq!(
            result.to_string(),
            "flights.To ≍ hotels.City ∧ flights.Airline ≍ hotels.Discount"
        );
        // And it selects exactly tuples (3),(4).
        assert_eq!(e.entailed_positive_ids(), vec![t(3), t(4)]);
    }

    #[test]
    fn simulate_matches_paper_prune_counts() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        // Tuple (12) has signature {AD}; from the empty state its restricted
        // signature is itself.
        let tuple12 = e.product().tuple(t(12)).unwrap();
        let sig12 = e.universe().signature(&tuple12);
        let (pos, neg) = e.simulate(&sig12);
        // Positive: prunes (3),(4),(7),(12) -> 4; negative: (1),(5),(9),(12) -> 4.
        assert_eq!((pos, neg), (4, 4));
    }

    #[test]
    fn simulate_agrees_with_actual_labeling() {
        let (f, h) = (flights(), hotels());
        let e = engine(&f, &h);
        for c in e.informative_groups() {
            let (pos, neg) = e.simulate(&c.restricted_sig);
            let mut e_pos = e.clone();
            let out = e_pos.label(c.representative, Label::Positive).unwrap();
            assert_eq!(out.pruned, pos, "positive branch of {:?}", c.restricted_sig);
            let mut e_neg = e.clone();
            let out = e_neg.label(c.representative, Label::Negative).unwrap();
            assert_eq!(out.pruned, neg, "negative branch of {:?}", c.restricted_sig);
        }
    }

    #[test]
    fn inconsistent_label_is_rejected_and_state_unchanged() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        let before = e.stats().clone();
        // (4) is certain-positive; labeling it negative is inconsistent.
        let err = e.label(t(4), Label::Negative);
        assert!(matches!(err, Err(InferenceError::InconsistentLabel { .. })));
        assert_eq!(e.stats(), &before);
        // But labeling it positive is fine (wasted yet consistent).
        let out = e.label(t(4), Label::Positive).unwrap();
        assert!(!out.was_informative);
        assert_eq!(out.pruned, 0);
        assert_eq!(e.stats().wasted_interactions(), 1);
    }

    #[test]
    fn double_label_rejected() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        e.label(t(3), Label::Positive).unwrap();
        assert!(matches!(
            e.label(t(3), Label::Positive),
            Err(InferenceError::AlreadyLabeled { .. })
        ));
    }

    #[test]
    fn visible_ids_gray_out() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        assert_eq!(e.visible_ids(false).len(), 12);
        assert_eq!(e.visible_ids(true).len(), 12);
        e.label(t(12), Label::Positive).unwrap();
        // Without gray-out the user still sees 11 unlabeled tuples; with
        // gray-out, (3),(4),(7) disappear too.
        assert_eq!(e.visible_ids(false).len(), 11);
        assert_eq!(e.visible_ids(true).len(), 8);
    }

    #[test]
    fn goal_remains_consistent_under_correct_answers() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let u = e.universe().clone();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        let goal = JoinPredicate::of(u, [tc, ad]);
        // Answer every query truthfully w.r.t. the goal.
        for k in [12u64, 8, 7, 3, 2] {
            if e.label_of(t(k)).is_some() {
                continue;
            }
            let tuple = e.product().tuple(t(k)).unwrap();
            let lbl = Label::from_bool(goal.selects(&tuple));
            e.label(t(k), lbl).unwrap();
            assert!(e.consistent_with(&goal));
        }
    }

    #[test]
    fn product_too_large_guard() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let opts = EngineOptions {
            max_product: 5,
            ..Default::default()
        };
        assert!(matches!(
            Engine::new(p, &opts),
            Err(InferenceError::ProductTooLarge { size: 12, limit: 5 })
        ));
    }

    #[test]
    fn from_ids_subset() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        let ids = [t(1), t(3), t(8)];
        let e = Engine::from_ids(p, &ids, &EngineOptions::default()).unwrap();
        assert_eq!(e.stats().total_tuples, 3);
        assert_eq!(e.num_groups(), 3);
        // A tuple outside the subset is unknown.
        assert!(e.classify(t(2)).is_ok() || e.classify(t(2)).is_err());
    }

    #[test]
    fn absorb_ids_classifies_under_current_labels() {
        let (f, h) = (flights(), hotels());
        let p = Product::new(vec![&f, &h]).unwrap();
        // Start from a 4-tuple sample; label (3)+ ((3) is rank 2).
        let ids = [t(3), t(1), t(8), t(12)];
        let mut e = Engine::from_ids(p, &ids, &EngineOptions::default()).unwrap();
        e.label(t(3), Label::Positive).unwrap();
        assert_eq!(e.stats().total_tuples, 4);

        // Absorb the rest of the product; (4) shares (3)'s signature and
        // must arrive certain-positive (never asked).
        let rest: Vec<ProductId> = (0..12).map(ProductId).collect();
        let added = e.absorb_ids(&rest).unwrap();
        assert_eq!(added, 8);
        assert_eq!(e.stats().total_tuples, 12);
        assert_eq!(e.classify(t(4)).unwrap(), TupleClass::CertainPositive);
        assert!(!e.is_informative(t(4)).unwrap());
        // Duplicates are skipped idempotently.
        assert_eq!(e.absorb_ids(&rest).unwrap(), 0);
        assert_eq!(e.stats().total_tuples, 12);
    }

    #[test]
    fn absorb_then_converge_equals_full_engine_result() {
        let (f, h) = (flights(), hotels());
        let u_goal;
        // Converge on a sampled-then-absorbed engine.
        let mut e = {
            let p = Product::new(vec![&f, &h]).unwrap();
            let mut e = Engine::from_ids(p, &[t(3), t(8)], &EngineOptions::default()).unwrap();
            u_goal = {
                let u = e.universe().clone();
                let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
                let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
                JoinPredicate::of(u, [tc, ad])
            };
            e.absorb_ids(&(0..12).map(ProductId).collect::<Vec<_>>())
                .unwrap();
            e
        };
        // Answer every informative tuple truthfully.
        while let Some(c) = e.informative_groups().into_iter().next() {
            let tuple = e.product().tuple(c.representative).unwrap();
            e.label(c.representative, Label::from_bool(u_goal.selects(&tuple)))
                .unwrap();
        }
        assert!(e.is_resolved());
        assert!(e
            .result()
            .instance_equivalent(&u_goal, e.product())
            .unwrap());
    }

    #[test]
    fn informative_groups_merge_after_upper_shrinks() {
        let (f, h) = (flights(), hotels());
        let mut e = engine(&f, &h);
        let before = e.informative_groups().len();
        assert_eq!(before, 6);
        // Labeling (12)+ sets U = {AD}; signatures {FC} and ∅ restrict to ∅
        // and merge; {TC,AD} and {FC,AD} become certain.
        e.label(t(12), Label::Positive).unwrap();
        let after = e.informative_groups();
        // Remaining informative restricted signatures: ∅ (from ∅, {FC}, {TC}).
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].count, 8);
    }
}
