//! # `jim-core` — the JIM join-inference engine
//!
//! A faithful reproduction of **JIM (Join Inference Machine)** from
//! Bonifati, Ciucanu & Staworko, *Interactive Join Query Inference with
//! JIM*, PVLDB 7(13):1541–1544 (VLDB 2014 demo), and of the algorithms of
//! its companion paper (EDBT 2014).
//!
//! JIM infers an n-ary equi-join predicate by asking the user Boolean
//! membership queries — "is this tuple part of the join result you have in
//! mind?" — and minimizes the number of questions by only ever asking
//! *informative* tuples, chosen by a pluggable [`strategy`].
//!
//! ## The pieces
//!
//! * [`AtomUniverse`] — the candidate equality atoms over a join schema;
//!   `Θ(t)` signatures as packed [`AtomSet`] bitsets.
//! * [`VersionSpace`] — the predicates consistent with the labels so far:
//!   upper bound `U` plus a maximal antichain of negative signatures;
//!   classification (certain / informative), consistency checking,
//!   predicate counting for entropy scores.
//! * [`Engine`] — signature-grouped instance state, label propagation
//!   ("graying out"), lookahead simulation, progress statistics.
//! * [`strategy`] — random / local / lookahead strategies and the
//!   exponential optimal planner, per the paper's taxonomy.
//! * [`session`] — the four interaction types of the demo's Figure 3.
//! * [`oracle`] — simulated users: truthful goal oracles and noisy /
//!   majority-vote crowd workers.
//! * [`cost`] — crowd pricing of question volume.
//! * [`equivalence`] — instance-equivalence certificates for results.
//!
//! ## Quickstart
//!
//! ```
//! use jim_core::{Engine, EngineOptions, GoalOracle, JoinPredicate};
//! use jim_core::session::run_most_informative;
//! use jim_core::strategy::StrategyKind;
//! use jim_relation::{csv, Product};
//!
//! let flights = csv::read_relation(
//!     "flights",
//!     "From,To,Airline\nParis,Lille,AF\nLille,NYC,AA\nNYC,Paris,AA\nParis,NYC,AF\n",
//! )?;
//! let hotels = csv::read_relation(
//!     "hotels",
//!     "City,Discount\nNYC,AA\nParis,\nLille,AF\n",
//! )?;
//! let product = Product::new(vec![&flights, &hotels])?;
//! let engine = Engine::new(product, &EngineOptions::default())?;
//!
//! // The "user": wants packages where the flight lands in the hotel's city.
//! let universe = engine.universe().clone();
//! let goal = JoinPredicate::of(
//!     universe.clone(),
//!     [universe.id_by_names((0, "To"), (1, "City"))?],
//! );
//! let mut oracle = GoalOracle::new(goal.clone());
//! let mut strategy = StrategyKind::LookaheadMinPrune.build();
//!
//! let outcome = run_most_informative(engine, strategy.as_mut(), &mut oracle)?;
//! assert!(outcome.resolved);
//! assert!(outcome.inferred.instance_equivalent(&goal, outcome.engine.product())?);
//! println!("{}", outcome.inferred.to_sql());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atoms;
mod bitset;
pub mod cost;
mod engine;
pub mod equivalence;
mod error;
pub mod explain;
mod label;
pub mod oracle;
mod predicate;
pub mod session;
mod stats;
pub mod strategy;
pub mod transcript;
mod version_space;

pub use atoms::{Atom, AtomId, AtomScope, AtomUniverse};
pub use bitset::{maximal_antichain, AtomSet, AtomSetIter, PackedAtomSets};
pub use cost::{Cost, CostModel};
pub use engine::{
    BatchOutcome, Candidate, CandidateView, Engine, EngineOptions, LabelOutcome, SimScratch,
};
pub use error::{InferenceError, Result};
pub use explain::{explain, Explanation};
pub use label::Label;
pub use oracle::{FnOracle, GoalOracle, MajorityOracle, NoisyOracle, Oracle};
pub use predicate::JoinPredicate;
pub use stats::{InteractionRecord, ProgressStats};
pub use strategy::{Strategy, StrategyKind};
pub use transcript::{OriginSource, SessionOrigin, Transcript};
pub use version_space::{TupleClass, VersionSpace};

/// The commonly used names, for glob import in examples and tests.
pub mod prelude {
    pub use crate::session::{run_free, run_most_informative, run_top_k};
    pub use crate::{
        AtomScope, AtomSet, AtomUniverse, CandidateView, Engine, EngineOptions, GoalOracle,
        InferenceError, JoinPredicate, Label, Oracle, Strategy, StrategyKind, TupleClass,
        VersionSpace,
    };
}
