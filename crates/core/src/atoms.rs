//! The atom universe: all candidate equality atoms for a join schema.
//!
//! An **atom** is an unordered pair of global attributes; a join predicate is
//! a set of atoms. The universe enumerates every candidate pair once, in a
//! deterministic order, and is shared (via `Arc`) by signatures, predicates,
//! the version space and the engine.

use crate::bitset::AtomSet;
use crate::error::{InferenceError, Result};
use jim_relation::{GlobalAttr, JoinSchema, JoinSpec, Tuple};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which attribute pairs become candidate atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AtomScope {
    /// Only pairs from *different* relation occurrences (pure join
    /// predicates — the paper's setting).
    #[default]
    CrossRelation,
    /// All pairs, including within one relation (intra-relation atoms act as
    /// selections on that relation).
    AllPairs,
}

/// Index of an atom within its universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single equality atom between two global attributes (normalized
/// `a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The smaller global attribute.
    pub a: GlobalAttr,
    /// The larger global attribute.
    pub b: GlobalAttr,
}

impl Atom {
    /// Normalize an unordered pair into an atom. Panics if `a == b`
    /// (reflexive equalities are tautological and never atoms).
    pub fn new(a: GlobalAttr, b: GlobalAttr) -> Self {
        assert_ne!(a, b, "reflexive atom");
        if a < b {
            Atom { a, b }
        } else {
            Atom { a: b, b: a }
        }
    }
}

/// The ordered set of candidate atoms over a [`JoinSchema`].
///
/// Only **type-compatible** pairs are candidates: an equality between an
/// `int` and a `text` attribute can never hold, so it is excluded up front
/// (this mirrors JIM's pruning of structurally impossible predicates).
#[derive(Debug, Clone)]
pub struct AtomUniverse {
    schema: JoinSchema,
    scope: AtomScope,
    atoms: Vec<Atom>,
    index: HashMap<Atom, AtomId>,
}

impl AtomUniverse {
    /// Enumerate the candidate atoms of `schema` under `scope`.
    ///
    /// Fails with [`InferenceError::EmptyUniverse`] when no candidate pair
    /// exists (nothing could ever be inferred).
    pub fn new(schema: JoinSchema, scope: AtomScope) -> Result<Arc<Self>> {
        let n = schema.num_attrs();
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (ga, gb) = (GlobalAttr(i as u32), GlobalAttr(j as u32));
                if scope == AtomScope::CrossRelation && !schema.cross_relation(ga, gb)? {
                    continue;
                }
                if schema.dtype(ga)? != schema.dtype(gb)? {
                    continue;
                }
                atoms.push(Atom::new(ga, gb));
            }
        }
        if atoms.is_empty() {
            return Err(InferenceError::EmptyUniverse);
        }
        let index = atoms
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, AtomId(i as u32)))
            .collect();
        Ok(Arc::new(AtomUniverse {
            schema,
            scope,
            atoms,
            index,
        }))
    }

    /// Default universe: cross-relation, type-compatible pairs.
    pub fn cross_relation(schema: JoinSchema) -> Result<Arc<Self>> {
        AtomUniverse::new(schema, AtomScope::CrossRelation)
    }

    /// The join schema this universe ranges over.
    pub fn schema(&self) -> &JoinSchema {
        &self.schema
    }

    /// The configured scope.
    pub fn scope(&self) -> AtomScope {
        self.scope
    }

    /// Number of candidate atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff there are no atoms (never observable: construction fails).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom behind an id.
    pub fn atom(&self, id: AtomId) -> Atom {
        self.atoms[id.index()]
    }

    /// All atoms in id order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Id of an atom, if it is a candidate in this universe.
    pub fn id_of(&self, a: GlobalAttr, b: GlobalAttr) -> Option<AtomId> {
        if a == b {
            return None;
        }
        self.index.get(&Atom::new(a, b)).copied()
    }

    /// Resolve `occurrence.attr ≍ occurrence.attr` by names.
    pub fn id_by_names(&self, a: (usize, &str), b: (usize, &str)) -> Result<AtomId> {
        let ga = self.schema.global_by_name(a.0, a.1)?;
        let gb = self.schema.global_by_name(b.0, b.1)?;
        self.id_of(ga, gb).ok_or(InferenceError::EmptyUniverse)
    }

    /// The empty atom set in this universe.
    pub fn empty_set(&self) -> AtomSet {
        AtomSet::empty(self.len())
    }

    /// The full atom set in this universe.
    pub fn full_set(&self) -> AtomSet {
        AtomSet::full(self.len())
    }

    /// Build an atom set from atom ids.
    pub fn set_of(&self, ids: impl IntoIterator<Item = AtomId>) -> AtomSet {
        AtomSet::from_indices(self.len(), ids.into_iter().map(|i| i.index()))
    }

    /// **The signature `Θ(t)`**: the set of all atoms that hold in the
    /// concatenated product tuple `t` — the most specific predicate
    /// selecting `t`. This is the paper's central derived object.
    pub fn signature(&self, t: &Tuple) -> AtomSet {
        debug_assert_eq!(t.arity(), self.schema.num_attrs());
        let mut sig = self.empty_set();
        for (i, atom) in self.atoms.iter().enumerate() {
            if t[atom.a.index()] == t[atom.b.index()] {
                sig.insert(i);
            }
        }
        sig
    }

    /// Render one atom with qualified attribute names (`flights.To ≍
    /// hotels.City`).
    pub fn atom_name(&self, id: AtomId) -> String {
        let atom = self.atom(id);
        format!(
            "{} ≍ {}",
            self.schema
                .qualified_name(atom.a)
                .expect("atom attrs in range"),
            self.schema
                .qualified_name(atom.b)
                .expect("atom attrs in range"),
        )
    }

    /// Render an atom set as a conjunction.
    pub fn set_name(&self, set: &AtomSet) -> String {
        if set.is_empty() {
            return "TRUE".to_string();
        }
        set.iter()
            .map(|i| self.atom_name(AtomId(i as u32)))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }

    /// Convert an atom set into an executable [`JoinSpec`].
    pub fn to_spec(&self, set: &AtomSet) -> JoinSpec {
        JoinSpec::new(set.iter().map(|i| {
            let atom = self.atoms[i];
            (atom.a, atom.b)
        }))
    }
}

impl fmt::Display for AtomUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} atoms over {}", self.atoms.len(), self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_relation::{tup, DataType, RelationSchema};

    fn schema() -> JoinSchema {
        JoinSchema::new(vec![
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn cross_relation_universe_size() {
        // 3 flight attrs x 2 hotel attrs, all text -> 6 atoms.
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        assert_eq!(u.len(), 6);
        assert!(!u.is_empty());
    }

    #[test]
    fn all_pairs_universe_size() {
        // C(5,2) = 10 pairs, all text-compatible.
        let u = AtomUniverse::new(schema(), AtomScope::AllPairs).unwrap();
        assert_eq!(u.len(), 10);
    }

    #[test]
    fn type_incompatible_pairs_excluded() {
        let js = JoinSchema::new(vec![
            RelationSchema::of("a", &[("x", DataType::Int), ("y", DataType::Text)]).unwrap(),
            RelationSchema::of("b", &[("z", DataType::Int)]).unwrap(),
        ])
        .unwrap();
        let u = AtomUniverse::cross_relation(js).unwrap();
        // Only x ≍ z (both int); y ≍ z is text/int.
        assert_eq!(u.len(), 1);
        assert_eq!(u.atom(AtomId(0)).a, GlobalAttr(0));
        assert_eq!(u.atom(AtomId(0)).b, GlobalAttr(2));
    }

    #[test]
    fn fully_incompatible_schema_is_empty_universe() {
        let js = JoinSchema::new(vec![
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            RelationSchema::of("b", &[("y", DataType::Text)]).unwrap(),
        ])
        .unwrap();
        assert!(matches!(
            AtomUniverse::cross_relation(js),
            Err(InferenceError::EmptyUniverse)
        ));
    }

    #[test]
    fn id_lookup_is_order_insensitive() {
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let a = u.id_of(GlobalAttr(1), GlobalAttr(3)).unwrap();
        let b = u.id_of(GlobalAttr(3), GlobalAttr(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(u.id_of(GlobalAttr(0), GlobalAttr(0)), None);
        // Intra-relation pair is not a candidate under CrossRelation scope.
        assert_eq!(u.id_of(GlobalAttr(0), GlobalAttr(1)), None);
    }

    #[test]
    fn id_by_names_resolves() {
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let id = u.id_by_names((0, "To"), (1, "City")).unwrap();
        assert_eq!(u.atom_name(id), "flights.To ≍ hotels.City");
    }

    #[test]
    fn signature_of_paper_tuple_3() {
        // Paper tuple (3): (Paris, Lille, AF | Lille, AF) has signature
        // {To ≍ City, Airline ≍ Discount}.
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let t = tup!["Paris", "Lille", "AF", "Lille", "AF"];
        let sig = u.signature(&t);
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        assert_eq!(sig, u.set_of([tc, ad]));
    }

    #[test]
    fn signature_of_paper_tuple_1_is_empty() {
        // Paper tuple (1): (Paris, Lille, AF | NYC, AA) satisfies nothing.
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let t = tup!["Paris", "Lille", "AF", "NYC", "AA"];
        assert!(u.signature(&t).is_empty());
    }

    #[test]
    fn set_name_renders_conjunction() {
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        let s = u.set_name(&u.set_of([tc, ad]));
        assert!(s.contains("flights.To ≍ hotels.City"));
        assert!(s.contains(" ∧ "));
        assert_eq!(u.set_name(&u.empty_set()), "TRUE");
    }

    #[test]
    fn to_spec_round_trips_atoms() {
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let spec = u.to_spec(&u.set_of([tc]));
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.pairs()[0], (GlobalAttr(1), GlobalAttr(3)));
    }

    #[test]
    fn display() {
        let u = AtomUniverse::cross_relation(schema()).unwrap();
        assert_eq!(u.to_string(), "6 atoms over flights × hotels");
    }

    #[test]
    #[should_panic(expected = "reflexive")]
    fn reflexive_atom_panics() {
        Atom::new(GlobalAttr(1), GlobalAttr(1));
    }
}
