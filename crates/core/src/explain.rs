//! Explanations: *why* is a tuple certain or informative?
//!
//! The demo UI grays tuples out; a trustworthy tool should also be able to
//! say why. This module derives human-readable justifications from the
//! version-space state:
//!
//! * certain-positive — every atom of `U` holds in the tuple, so every
//!   consistent predicate (all of which are ⊆ `U`) selects it;
//! * certain-negative — the atoms the tuple satisfies (within `U`) are
//!   covered by the signature of an earlier negative example, so any
//!   predicate selecting it would also have selected that negative;
//! * informative — a concrete pair of consistent predicates that disagree
//!   on the tuple (a witness for each answer).

use crate::atoms::AtomId;
use crate::bitset::AtomSet;
use crate::engine::Engine;
use crate::error::Result;
use crate::version_space::TupleClass;
use jim_relation::ProductId;
use std::fmt;

/// A justification for a tuple's classification.
#[derive(Debug, Clone, PartialEq)]
pub enum Explanation {
    /// Selected by every consistent predicate.
    CertainPositive {
        /// The atoms of `U` — all of them hold in the tuple.
        upper_atoms: Vec<String>,
    },
    /// Selected by no consistent predicate.
    CertainNegative {
        /// The atoms the tuple satisfies within `U`.
        satisfied: Vec<String>,
        /// The dominating negative signature (every satisfied atom also
        /// held in that earlier negative example).
        dominating_negative: Vec<String>,
    },
    /// Consistent predicates disagree.
    Informative {
        /// A consistent predicate that selects the tuple.
        selecting: String,
        /// A consistent predicate that rejects the tuple.
        rejecting: String,
    },
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::CertainPositive { upper_atoms } => {
                if upper_atoms.is_empty() {
                    write!(
                        f,
                        "certainly in the result: every remaining candidate query is a cross product"
                    )
                } else {
                    write!(
                        f,
                        "certainly in the result: it satisfies every atom any consistent query can use ({})",
                        upper_atoms.join(" ∧ ")
                    )
                }
            }
            Explanation::CertainNegative { satisfied, dominating_negative } => {
                let sat = if satisfied.is_empty() {
                    "nothing".to_string()
                } else {
                    satisfied.join(" ∧ ")
                };
                write!(
                    f,
                    "certainly not in the result: it satisfies only {sat}, and a tuple satisfying {} was already rejected",
                    if dominating_negative.is_empty() {
                        "nothing".to_string()
                    } else {
                        dominating_negative.join(" ∧ ")
                    }
                )
            }
            Explanation::Informative { selecting, rejecting } => write!(
                f,
                "informative: `{selecting}` would select it but `{rejecting}` would not — your answer decides"
            ),
        }
    }
}

/// Explain the current classification of tuple `id`.
pub fn explain(engine: &Engine, id: ProductId) -> Result<Explanation> {
    let tuple = engine.product().tuple(id)?;
    let universe = engine.universe();
    let vs = engine.version_space();
    let sig = universe.signature(&tuple);
    let names = |set: &AtomSet| -> Vec<String> {
        set.iter()
            .map(|i| universe.atom_name(AtomId(i as u32)))
            .collect()
    };

    Ok(match vs.classify(&sig) {
        TupleClass::CertainPositive => Explanation::CertainPositive {
            upper_atoms: names(vs.upper()),
        },
        TupleClass::CertainNegative => {
            let restricted = vs.restrict(&sig);
            let dominating = vs
                .negatives()
                .iter()
                .find(|n| restricted.is_subset(n))
                .expect("certain-negative implies a dominating negative");
            Explanation::CertainNegative {
                satisfied: names(&restricted),
                dominating_negative: names(dominating),
            }
        }
        TupleClass::Informative => {
            // Witness selecting the tuple: the maximal predicate under
            // Θ(t)∩U is consistent (informative ⇒ not certain-negative).
            let selecting = vs.restrict(&sig);
            // Witness rejecting it: U itself (informative ⇒ U ⊄ Θ(t)),
            // and U is always consistent.
            let rejecting = vs.upper().clone();
            Explanation::Informative {
                selecting: universe.set_name(&selecting),
                rejecting: universe.set_name(&rejecting),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    #[test]
    fn informative_explanation_names_disagreeing_predicates() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let ex = explain(&e, ProductId(2)).unwrap();
        match &ex {
            Explanation::Informative {
                selecting,
                rejecting,
            } => {
                assert!(selecting.contains("To ≍ hotels.City"));
                // Initially the rejecting witness is the full universe.
                assert!(rejecting.contains("From ≍ hotels.City"));
            }
            other => panic!("expected informative, got {other:?}"),
        }
        assert!(ex.to_string().contains("your answer decides"));
    }

    #[test]
    fn certain_positive_explanation_after_label() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(2), Label::Positive).unwrap(); // (3)+
        let ex = explain(&e, ProductId(3)).unwrap(); // (4) certain-positive
        match &ex {
            Explanation::CertainPositive { upper_atoms } => {
                assert_eq!(upper_atoms.len(), 2);
            }
            other => panic!("expected certain-positive, got {other:?}"),
        }
        assert!(ex.to_string().contains("certainly in the result"));
    }

    #[test]
    fn certain_negative_explanation_names_dominator() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(11), Label::Negative).unwrap(); // (12)-: Θ = {AD}
        let ex = explain(&e, ProductId(0)).unwrap(); // (1): Θ = ∅, pruned
        match &ex {
            Explanation::CertainNegative {
                satisfied,
                dominating_negative,
            } => {
                assert!(satisfied.is_empty());
                assert_eq!(dominating_negative.len(), 1);
                assert!(dominating_negative[0].contains("Airline ≍ hotels.Discount"));
            }
            other => panic!("expected certain-negative, got {other:?}"),
        }
        assert!(ex.to_string().contains("already rejected"));
    }

    #[test]
    fn explanations_agree_with_witnesses() {
        // The informative explanation's two witnesses must actually be
        // consistent and actually disagree.
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(2), Label::Positive).unwrap();
        for (id, tuple) in e.product().clone().iter() {
            if e.classify(id).unwrap() != TupleClass::Informative {
                continue;
            }
            let vs = e.version_space();
            let sig = e.universe().signature(&tuple);
            let selecting = vs.restrict(&sig);
            let rejecting = vs.upper().clone();
            assert!(vs.is_consistent(&selecting));
            assert!(vs.is_consistent(&rejecting));
            assert!(selecting.is_subset(&sig));
            assert!(!rejecting.is_subset(&sig));
        }
    }
}
