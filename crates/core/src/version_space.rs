//! The version space of join predicates consistent with the user's labels.
//!
//! With `U = ⋂ {Θ(t) : t labeled +}` and negatives `N = {Θ(s) ∩ U : s
//! labeled −}`, a predicate `θ` is consistent iff `θ ⊆ U` and `θ ⊄ Nᵢ` for
//! every `i`. The representation below keeps exactly `(U, N)` with `N`
//! reduced to its maximal antichain — everything the paper's interactive
//! scenario needs:
//!
//! * *classification* of a tuple (certain-positive / certain-negative /
//!   informative) in `O(|N|)` subset tests,
//! * *label propagation* (the "gray out" step of Figure 2),
//! * *inconsistency detection* (a careless user),
//! * *counting* consistent predicates for the entropy strategy, via
//!   inclusion–exclusion over `N`.

use crate::atoms::AtomUniverse;
use crate::bitset::{maximal_antichain, AtomSet, PackedAtomSets};
use crate::error::{InferenceError, Result};
use crate::predicate::JoinPredicate;
use jim_relation::ProductId;
use std::sync::Arc;

/// Classification of a tuple's signature w.r.t. the current labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleClass {
    /// Every consistent predicate selects the tuple; labeling it `+` adds
    /// nothing, labeling it `−` would be inconsistent.
    CertainPositive,
    /// No consistent predicate selects the tuple.
    CertainNegative,
    /// Consistent predicates disagree — labeling this tuple narrows the
    /// version space. Only these tuples are shown to the user.
    Informative,
}

impl TupleClass {
    /// True iff the tuple is uninformative (its label is entailed).
    pub fn is_certain(self) -> bool {
        self != TupleClass::Informative
    }
}

/// Budget for exact inclusion–exclusion (number of terms ≈ `2^|N|`).
const IE_TERM_BUDGET: u64 = 1 << 18;

/// The set of all join predicates consistent with the labels so far.
#[derive(Debug, Clone)]
pub struct VersionSpace {
    universe: Arc<AtomUniverse>,
    /// `U`: intersection of positive signatures (the unique maximal
    /// consistent predicate). Starts as the full universe.
    upper: AtomSet,
    /// Maximal antichain of `Θ(s) ∩ U` over negatives. Invariants: every
    /// element is a **proper** subset of `upper`; no element contains
    /// another.
    negatives: Vec<AtomSet>,
    /// Row-major mirror of `negatives`, rebuilt on every mutation, so the
    /// hot `∃n: x ⊆ n` sweep runs as one `jim-simd` batch dispatch with
    /// contiguous loads instead of chasing one heap box per antichain
    /// element. `negatives` stays the source of truth (strategies, the
    /// explainer and the transcript all iterate it).
    packed_negatives: PackedAtomSets,
    positives_seen: usize,
    negatives_seen: usize,
}

impl VersionSpace {
    /// The initial version space: every predicate is consistent.
    pub fn new(universe: Arc<AtomUniverse>) -> Self {
        let upper = universe.full_set();
        let packed_negatives = PackedAtomSets::new(upper.capacity());
        VersionSpace {
            universe,
            upper,
            negatives: Vec::new(),
            packed_negatives,
            positives_seen: 0,
            negatives_seen: 0,
        }
    }

    /// Rebuild the packed mirror after `negatives` changed.
    fn repack_negatives(&mut self) {
        self.packed_negatives.clear();
        self.packed_negatives.extend(self.negatives.iter());
    }

    /// `∃n ∈ N: x ⊆ n` — the antichain membership sweep behind
    /// classification, consistency and lookahead simulation, as one batch
    /// kernel dispatch over the packed mirror.
    pub fn any_negative_contains(&self, x: &AtomSet) -> bool {
        self.packed_negatives.contains_superset_of(x)
    }

    /// The shared atom universe.
    pub fn universe(&self) -> &Arc<AtomUniverse> {
        &self.universe
    }

    /// The current upper bound `U` (the maximal consistent predicate).
    pub fn upper(&self) -> &AtomSet {
        &self.upper
    }

    /// The maximal negative antichain (each restricted to `U`).
    pub fn negatives(&self) -> &[AtomSet] {
        &self.negatives
    }

    /// Number of positive / negative labels absorbed.
    pub fn labels_seen(&self) -> (usize, usize) {
        (self.positives_seen, self.negatives_seen)
    }

    /// Classify a tuple by its **full** signature `Θ(t)`.
    pub fn classify(&self, sig: &AtomSet) -> TupleClass {
        let mut restricted = self.universe.empty_set();
        self.classify_restricted_into(sig, &mut restricted)
    }

    /// [`VersionSpace::classify`], writing the restricted signature
    /// `Θ(t) ∩ U` into a caller-provided scratch set instead of
    /// allocating. The engine's re-key pass calls this once per group:
    /// the restriction it needs for candidate grouping and the one
    /// classification computes are the same intersection, done once.
    pub fn classify_restricted_into(&self, sig: &AtomSet, restricted: &mut AtomSet) -> TupleClass {
        sig.intersection_into(&self.upper, restricted);
        if self.upper.is_subset(sig) {
            return TupleClass::CertainPositive;
        }
        if self.any_negative_contains(restricted) {
            TupleClass::CertainNegative
        } else {
            TupleClass::Informative
        }
    }

    /// Restrict a full signature to the current upper bound. Two tuples
    /// with the same restricted signature are indistinguishable to every
    /// consistent predicate.
    pub fn restrict(&self, sig: &AtomSet) -> AtomSet {
        sig.intersection(&self.upper)
    }

    /// Absorb a positive label for a tuple with signature `sig`.
    ///
    /// Fails with [`InferenceError::InconsistentLabel`] when the tuple is
    /// certain-negative under the current labels (`tuple` is only used for
    /// the error message).
    pub fn add_positive(&mut self, tuple: ProductId, sig: &AtomSet) -> Result<()> {
        let new_upper = self.upper.intersection(sig);
        if self.any_negative_contains(&new_upper) {
            return Err(InferenceError::InconsistentLabel {
                tuple,
                positive: true,
            });
        }
        self.upper = new_upper;
        // Restrict negatives to the new upper bound and re-reduce. The
        // inconsistency check above guarantees none becomes ⊇ upper.
        let restricted: Vec<AtomSet> = self
            .negatives
            .iter()
            .map(|n| n.intersection(&self.upper))
            .collect();
        self.negatives = maximal_antichain(restricted);
        self.repack_negatives();
        self.positives_seen += 1;
        Ok(())
    }

    /// Absorb a negative label for a tuple with signature `sig`.
    ///
    /// Fails when the tuple is certain-positive (every consistent predicate
    /// selects it). Redundant negatives (already dominated) are accepted
    /// and simply counted.
    pub fn add_negative(&mut self, tuple: ProductId, sig: &AtomSet) -> Result<()> {
        let restricted = sig.intersection(&self.upper);
        if restricted == self.upper {
            return Err(InferenceError::InconsistentLabel {
                tuple,
                positive: false,
            });
        }
        self.negatives_seen += 1;
        if self.any_negative_contains(&restricted) {
            return Ok(()); // dominated: no new information
        }
        self.negatives.retain(|n| !n.is_subset(&restricted));
        self.negatives.push(restricted);
        self.repack_negatives();
        Ok(())
    }

    /// Is `θ` consistent with the labels so far?
    pub fn is_consistent(&self, theta: &AtomSet) -> bool {
        theta.is_subset(&self.upper) && !self.any_negative_contains(theta)
    }

    /// The canonical answer JIM returns on termination: the unique maximal
    /// consistent predicate `U`. (At termination every consistent predicate
    /// is instance-equivalent to it.)
    pub fn canonical(&self) -> JoinPredicate {
        JoinPredicate::new(self.universe.clone(), self.upper.clone())
    }

    /// Exact number of consistent predicates, when the atom universe fits
    /// in a `u128` exponent and the inclusion–exclusion stays within
    /// budget; `None` otherwise.
    pub fn count_consistent_exact(&self) -> Option<u128> {
        count_exact(&self.upper, &self.negatives)
    }

    /// Fraction of the down-set of `U` that is consistent, in `[0, 1]`
    /// (`None` if the inclusion–exclusion exceeds its budget). Robust to
    /// huge universes because it never forms `2^|U|` explicitly.
    pub fn consistent_fraction(&self) -> Option<f64> {
        scaled_count(&self.upper, &self.negatives)
    }

    /// Probability (fraction of consistent predicates) that a tuple with
    /// full signature `sig` is selected — the split the entropy strategy
    /// scores. `None` if counting exceeds its budget or the version space
    /// is (degenerately) empty.
    pub fn selecting_probability(&self, sig: &AtomSet) -> Option<f64> {
        let total = self.consistent_fraction()?;
        if total <= 0.0 {
            return None;
        }
        let sel_upper = self.upper.intersection(sig);
        let frac_sel = scaled_count(&sel_upper, &self.negatives)?;
        // count_sel / count_total = frac_sel·2^|sel_upper| / frac_total·2^|U|
        let scale = (sel_upper.len() as f64 - self.upper.len() as f64).exp2();
        Some((frac_sel * scale / total).clamp(0.0, 1.0))
    }

    /// Enumerate every consistent predicate (for tests/small universes).
    /// Returns `None` when `2^|U|` exceeds `limit`.
    pub fn enumerate_consistent(&self, limit: usize) -> Option<Vec<AtomSet>> {
        let k = self.upper.len();
        if k > 26 || (1usize << k) > limit {
            return None;
        }
        let atoms: Vec<usize> = self.upper.iter().collect();
        let mut out = Vec::new();
        for mask in 0u32..(1u32 << k) {
            let theta = AtomSet::from_indices(
                self.upper.capacity(),
                (0..k).filter(|&i| mask >> i & 1 == 1).map(|i| atoms[i]),
            );
            if self.is_consistent(&theta) {
                out.push(theta);
            }
        }
        Some(out)
    }
}

/// `|{θ ⊆ upper : ∀n, θ ⊄ n}| / 2^|upper|` by inclusion–exclusion, or
/// `None` past the term budget.
fn scaled_count(upper: &AtomSet, negatives: &[AtomSet]) -> Option<f64> {
    let negs: Vec<AtomSet> =
        maximal_antichain(negatives.iter().map(|n| n.intersection(upper)).collect());
    if negs.iter().any(|n| n == upper) {
        return Some(0.0);
    }
    let k = upper.len() as f64;
    let mut excluded = 0.0f64;
    let mut budget = IE_TERM_BUDGET;
    // Alternating sum over nonempty subsets S of `negs`:
    // (−1)^{|S|+1} · 2^{|∩S| − |upper|}.
    fn go(
        negs: &[AtomSet],
        start: usize,
        inter: &AtomSet,
        sign: f64,
        k: f64,
        acc: &mut f64,
        budget: &mut u64,
    ) -> bool {
        for i in start..negs.len() {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let next = inter.intersection(&negs[i]);
            *acc += sign * (next.len() as f64 - k).exp2();
            if !go(negs, i + 1, &next, -sign, k, acc, budget) {
                return false;
            }
        }
        true
    }
    if !go(&negs, 0, upper, 1.0, k, &mut excluded, &mut budget) {
        return None;
    }
    Some((1.0 - excluded).clamp(0.0, 1.0))
}

/// Exact variant of [`scaled_count`] in `u128` (requires `|upper| ≤ 126`).
fn count_exact(upper: &AtomSet, negatives: &[AtomSet]) -> Option<u128> {
    if upper.len() > 126 {
        return None;
    }
    let negs: Vec<AtomSet> =
        maximal_antichain(negatives.iter().map(|n| n.intersection(upper)).collect());
    if negs.iter().any(|n| n == upper) {
        return Some(0);
    }
    let mut excluded: i128 = 0;
    let mut budget = IE_TERM_BUDGET;
    fn go(
        negs: &[AtomSet],
        start: usize,
        inter: &AtomSet,
        sign: i128,
        acc: &mut i128,
        budget: &mut u64,
    ) -> bool {
        for i in start..negs.len() {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let next = inter.intersection(&negs[i]);
            *acc += sign * (1i128 << next.len());
            if !go(negs, i + 1, &next, -sign, acc, budget) {
                return false;
            }
        }
        true
    }
    if !go(&negs, 0, upper, 1, &mut excluded, &mut budget) {
        return None;
    }
    Some(((1i128 << upper.len()) - excluded) as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::AtomUniverse;
    use jim_relation::{DataType, JoinSchema, RelationSchema};

    /// A universe with 6 atoms (the paper's flights × hotels schema).
    fn universe() -> Arc<AtomUniverse> {
        let js = JoinSchema::new(vec![
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
        ])
        .unwrap();
        AtomUniverse::cross_relation(js).unwrap()
    }

    fn set(u: &AtomUniverse, ids: &[usize]) -> AtomSet {
        AtomSet::from_indices(u.len(), ids.iter().copied())
    }

    #[test]
    fn initial_state_everything_informative_except_full() {
        let u = universe();
        let vs = VersionSpace::new(u.clone());
        // A full signature is certain-positive (selected by every θ ⊆ Θ).
        assert_eq!(vs.classify(&u.full_set()), TupleClass::CertainPositive);
        // Anything else is informative.
        assert_eq!(vs.classify(&set(&u, &[0, 1])), TupleClass::Informative);
        assert_eq!(vs.classify(&u.empty_set()), TupleClass::Informative);
    }

    #[test]
    fn positive_shrinks_upper() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(0), &set(&u, &[1, 3])).unwrap();
        assert_eq!(vs.upper(), &set(&u, &[1, 3]));
        vs.add_positive(ProductId(1), &set(&u, &[1, 2, 3])).unwrap();
        assert_eq!(vs.upper(), &set(&u, &[1, 3]));
        vs.add_positive(ProductId(2), &set(&u, &[1])).unwrap();
        assert_eq!(vs.upper(), &set(&u, &[1]));
        assert_eq!(vs.labels_seen(), (3, 0));
    }

    #[test]
    fn classification_after_positive() {
        // Mirrors the paper: after (3)+ with Θ = {TC, AD}, any tuple whose
        // signature contains both atoms is certain-positive.
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(2), &set(&u, &[1, 3])).unwrap();
        assert_eq!(vs.classify(&set(&u, &[1, 3])), TupleClass::CertainPositive);
        assert_eq!(
            vs.classify(&set(&u, &[0, 1, 3])),
            TupleClass::CertainPositive
        );
        assert_eq!(vs.classify(&set(&u, &[1])), TupleClass::Informative);
        assert_eq!(vs.classify(&u.empty_set()), TupleClass::Informative);
    }

    #[test]
    fn negative_creates_antichain_entry() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_negative(ProductId(0), &set(&u, &[0, 1])).unwrap();
        assert_eq!(vs.negatives().len(), 1);
        // Tuples whose restricted signature is inside the negative are
        // certain-negative.
        assert_eq!(vs.classify(&set(&u, &[0])), TupleClass::CertainNegative);
        assert_eq!(vs.classify(&set(&u, &[0, 1])), TupleClass::CertainNegative);
        assert_eq!(vs.classify(&u.empty_set()), TupleClass::CertainNegative);
        assert_eq!(vs.classify(&set(&u, &[0, 2])), TupleClass::Informative);
    }

    #[test]
    fn dominated_negative_is_absorbed() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_negative(ProductId(0), &set(&u, &[0, 1, 2])).unwrap();
        vs.add_negative(ProductId(1), &set(&u, &[0, 1])).unwrap();
        assert_eq!(vs.negatives().len(), 1);
        // Reverse order: the bigger one replaces the smaller.
        let mut vs2 = VersionSpace::new(u.clone());
        vs2.add_negative(ProductId(0), &set(&u, &[0, 1])).unwrap();
        vs2.add_negative(ProductId(1), &set(&u, &[0, 1, 2]))
            .unwrap();
        assert_eq!(vs2.negatives().len(), 1);
        assert_eq!(vs2.negatives()[0], set(&u, &[0, 1, 2]));
        assert_eq!(vs2.labels_seen(), (0, 2));
    }

    #[test]
    fn inconsistent_positive_detected() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        // Negative on {0,1}: every θ ⊆ {0,1} is excluded.
        vs.add_negative(ProductId(0), &set(&u, &[0, 1])).unwrap();
        // Positive with signature {0}: would force U = {0} ⊆ {0,1} — empty VS.
        let err = vs.add_positive(ProductId(1), &set(&u, &[0]));
        assert_eq!(
            err,
            Err(InferenceError::InconsistentLabel {
                tuple: ProductId(1),
                positive: true
            })
        );
    }

    #[test]
    fn inconsistent_negative_detected() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(0), &set(&u, &[1, 3])).unwrap();
        // A tuple whose signature contains U is certain-positive; labeling
        // it negative is inconsistent.
        let err = vs.add_negative(ProductId(1), &set(&u, &[1, 3, 4]));
        assert_eq!(
            err,
            Err(InferenceError::InconsistentLabel {
                tuple: ProductId(1),
                positive: false
            })
        );
    }

    #[test]
    fn paper_termination_example() {
        // (3)+ with Θ={TC,AD}; (7)− with Θ={FC,AD}; (8)− with Θ={TC}.
        // Atom ids in the cross-relation universe (From,To,Airline × City,
        // Discount): 0=F≍C, 1=F≍D, 2=T≍C, 3=T≍D, 4=A≍C, 5=A≍D.
        let u = universe();
        let tc = 2usize;
        let ad = 5usize;
        let fc = 0usize;
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(2), &set(&u, &[tc, ad])).unwrap();
        vs.add_negative(ProductId(6), &set(&u, &[fc, ad])).unwrap();
        vs.add_negative(ProductId(7), &set(&u, &[tc])).unwrap();
        // The only consistent predicate is {TC, AD} = Q2.
        let all = vs.enumerate_consistent(1 << 10).unwrap();
        assert_eq!(all, vec![set(&u, &[tc, ad])]);
        assert_eq!(vs.canonical().atoms(), &set(&u, &[tc, ad]));
        assert_eq!(vs.count_consistent_exact(), Some(1));
    }

    #[test]
    fn exact_count_matches_enumeration() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_negative(ProductId(0), &set(&u, &[0, 1])).unwrap();
        vs.add_negative(ProductId(1), &set(&u, &[2, 3])).unwrap();
        vs.add_negative(ProductId(2), &set(&u, &[1, 2])).unwrap();
        let enumerated = vs.enumerate_consistent(1 << 10).unwrap().len() as u128;
        assert_eq!(vs.count_consistent_exact(), Some(enumerated));
        let frac = vs.consistent_fraction().unwrap();
        let expect = enumerated as f64 / 64.0; // 2^6 subsets
        assert!((frac - expect).abs() < 1e-9, "{frac} vs {expect}");
    }

    #[test]
    fn counts_with_no_labels() {
        let u = universe();
        let vs = VersionSpace::new(u.clone());
        assert_eq!(vs.count_consistent_exact(), Some(1 << 6));
        assert_eq!(vs.consistent_fraction(), Some(1.0));
    }

    #[test]
    fn selecting_probability_basics() {
        let u = universe();
        let vs = VersionSpace::new(u.clone());
        // With no labels, a tuple with full signature is selected by all
        // predicates; an empty-signature tuple only by θ = ∅.
        assert_eq!(vs.selecting_probability(&u.full_set()), Some(1.0));
        let p_empty = vs.selecting_probability(&u.empty_set()).unwrap();
        assert!((p_empty - 1.0 / 64.0).abs() < 1e-12);
        // A 3-atom signature: 2^3/2^6 = 1/8.
        let p3 = vs.selecting_probability(&set(&u, &[0, 1, 2])).unwrap();
        assert!((p3 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn selecting_probability_respects_negatives() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_negative(ProductId(0), &u.empty_set()).unwrap();
        // θ = ∅ is now inconsistent: 63 consistent predicates remain; a
        // tuple with signature {0} is selected only by θ = {0}: p = 1/63.
        let p = vs.selecting_probability(&set(&u, &[0])).unwrap();
        assert!((p - 1.0 / 63.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn is_consistent_agrees_with_classify() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(0), &set(&u, &[1, 3, 5])).unwrap();
        vs.add_negative(ProductId(1), &set(&u, &[1])).unwrap();
        for theta in vs.enumerate_consistent(1 << 10).unwrap() {
            assert!(vs.is_consistent(&theta));
        }
        assert!(!vs.is_consistent(&set(&u, &[1])));
        assert!(!vs.is_consistent(&u.empty_set())); // ⊆ {1}
        assert!(!vs.is_consistent(&set(&u, &[0, 1, 2, 3, 4, 5]))); // ⊄ U
        assert!(vs.is_consistent(&set(&u, &[1, 3])));
    }

    #[test]
    fn restrict_projects_onto_upper() {
        let u = universe();
        let mut vs = VersionSpace::new(u.clone());
        vs.add_positive(ProductId(0), &set(&u, &[1, 3])).unwrap();
        assert_eq!(vs.restrict(&set(&u, &[0, 1, 4])), set(&u, &[1]));
    }
}
