//! Deeper lookahead: a two-step (depth-2) minimax over informative-tuple
//! counts, and a hybrid strategy that pays for lookahead only when the
//! candidate set is small.
//!
//! The paper's lookahead family scores the information of *one* answer;
//! its optimal planner is a full minimax. Depth-2 lookahead sits between
//! the two: for each candidate question, assume the adversarial answer,
//! then the best follow-up question, again with an adversarial answer —
//! and minimize the informative tuples that survive. This is the natural
//! "one more step" extension and ablation A4 measures what it buys.

use crate::bitset::{maximal_antichain, AtomSet};
use crate::engine::{CandidateView, Engine};
use crate::strategy::{LocalSpecific, LookaheadMinPrune, Strategy};
use jim_relation::ProductId;

/// A lightweight simulation state: the candidate signatures with their
/// populations under `(upper, negatives)`.
#[derive(Debug, Clone)]
struct SimState {
    upper: AtomSet,
    negs: Vec<AtomSet>,
    /// Informative restricted signatures with tuple counts.
    sigs: Vec<(AtomSet, u64)>,
}

impl SimState {
    fn from_view(engine: &Engine, candidates: &CandidateView<'_>) -> SimState {
        let vs = engine.version_space();
        SimState {
            upper: vs.upper().clone(),
            negs: vs.negatives().to_vec(),
            sigs: candidates
                .iter()
                .map(|c| (c.restricted_sig.clone(), c.count))
                .collect(),
        }
    }

    fn informative(upper: &AtomSet, negs: &[AtomSet], sig: &AtomSet) -> bool {
        sig != upper && !negs.iter().any(|n| sig.is_subset(n))
    }

    fn remaining(&self) -> u64 {
        self.sigs.iter().map(|(_, c)| c).sum()
    }

    fn after(&self, s: &AtomSet, positive: bool) -> SimState {
        if positive {
            let upper = s.clone();
            let negs =
                maximal_antichain(self.negs.iter().map(|n| n.intersection(&upper)).collect());
            let mut merged: Vec<(AtomSet, u64)> = Vec::with_capacity(self.sigs.len());
            for (r, c) in &self.sigs {
                let r = r.intersection(&upper);
                if !SimState::informative(&upper, &negs, &r) {
                    continue;
                }
                match merged.iter_mut().find(|(m, _)| *m == r) {
                    Some((_, mc)) => *mc += c,
                    None => merged.push((r, *c)),
                }
            }
            SimState {
                upper,
                negs,
                sigs: merged,
            }
        } else {
            let mut with_s = self.negs.clone();
            with_s.push(s.clone());
            let negs = maximal_antichain(with_s);
            let sigs = self
                .sigs
                .iter()
                .filter(|(r, _)| SimState::informative(&self.upper, &negs, r))
                .cloned()
                .collect();
            SimState {
                upper: self.upper.clone(),
                negs,
                sigs,
            }
        }
    }

    /// Best worst-case remaining count after asking one more question.
    fn best_one_step(&self) -> u64 {
        if self.sigs.is_empty() {
            return 0;
        }
        self.sigs
            .iter()
            .map(|(s, _)| {
                let pos = self.after(s, true).remaining();
                let neg = self.after(s, false).remaining();
                pos.max(neg)
            })
            .min()
            .expect("non-empty candidate list")
    }
}

/// Depth-2 minimax on remaining informative tuples: choose the question
/// whose adversarial answer, followed by the best next question with its
/// adversarial answer, leaves the fewest informative tuples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookaheadTwoStep;

impl Strategy for LookaheadTwoStep {
    fn name(&self) -> &'static str {
        "lookahead-2step"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        self.top_k(engine, candidates, 1).first().copied()
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let state = SimState::from_view(engine, candidates);
        let mut scored: Vec<(u64, u64, &crate::engine::Candidate)> = candidates
            .iter()
            .map(|c| {
                let s = &c.restricted_sig;
                let pos_state = state.after(s, true);
                let neg_state = state.after(s, false);
                // Adversary answers to maximize what survives two steps.
                let depth2 = pos_state.best_one_step().max(neg_state.best_one_step());
                // Tie-break with the one-step worst case.
                let depth1 = pos_state.remaining().max(neg_state.remaining());
                (depth2, depth1, c)
            })
            .collect();
        scored.sort_by(|(a2, a1, ca), (b2, b1, cb)| {
            a2.cmp(b2)
                .then_with(|| a1.cmp(b1))
                .then_with(|| ca.restricted_sig.cmp(&cb.restricted_sig))
        });
        scored
            .into_iter()
            .take(k)
            .map(|(_, _, c)| c.representative)
            .collect()
    }
}

/// Local choice while the candidate set is large; full lookahead once it
/// is small. `threshold` is the number of distinct informative signatures
/// at which lookahead kicks in.
#[derive(Debug, Clone, Copy)]
pub struct HybridStrategy {
    threshold: usize,
}

impl HybridStrategy {
    /// Switch to lookahead at `threshold` distinct candidates.
    pub fn new(threshold: usize) -> Self {
        HybridStrategy { threshold }
    }

    /// The switch point.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl Default for HybridStrategy {
    fn default() -> Self {
        HybridStrategy::new(16)
    }
}

impl Strategy for HybridStrategy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        if candidates.len() > self.threshold {
            LocalSpecific.choose(engine, candidates)
        } else {
            LookaheadMinPrune.choose(engine, candidates)
        }
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        if candidates.len() > self.threshold {
            LocalSpecific.top_k(engine, candidates, k)
        } else {
            LookaheadMinPrune.top_k(engine, candidates, k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use crate::predicate::JoinPredicate;
    use crate::strategy::choose_next;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    fn run_to_convergence(strategy: &mut dyn Strategy) -> u64 {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe().clone();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        let goal = JoinPredicate::of(u, [tc, ad]);
        let mut steps = 0;
        while let Some(id) = choose_next(strategy, &e) {
            let t = e.product().tuple(id).unwrap();
            e.label(id, Label::from_bool(goal.selects(&t))).unwrap();
            steps += 1;
            assert!(steps <= 12);
        }
        assert!(e.is_resolved());
        assert!(e.result().instance_equivalent(&goal, e.product()).unwrap());
        steps
    }

    #[test]
    fn two_step_converges_on_q2() {
        let steps = run_to_convergence(&mut LookaheadTwoStep);
        assert!((2..=6).contains(&steps), "{steps}");
    }

    #[test]
    fn hybrid_converges_on_q2() {
        let steps = run_to_convergence(&mut HybridStrategy::default());
        assert!((2..=6).contains(&steps), "{steps}");
        let steps = run_to_convergence(&mut HybridStrategy::new(0));
        assert!((2..=6).contains(&steps), "{steps}");
    }

    #[test]
    fn two_step_never_worse_than_one_step_on_first_move_bound() {
        // The depth-2 adversarial bound of the chosen move is at most the
        // depth-1 bound of the depth-1 strategy's move (minimax monotone).
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let state = SimState::from_view(&e, &e.candidates());

        let bound_of = |id: jim_relation::ProductId, depth2: bool| {
            let t = e.product().tuple(id).unwrap();
            let sig = e.version_space().restrict(&e.universe().signature(&t));
            let pos = state.after(&sig, true);
            let neg = state.after(&sig, false);
            if depth2 {
                pos.best_one_step().max(neg.best_one_step())
            } else {
                pos.remaining().max(neg.remaining())
            }
        };

        let two = choose_next(&mut LookaheadTwoStep, &e).unwrap();
        let one = choose_next(&mut LookaheadMinPrune, &e).unwrap();
        assert!(bound_of(two, true) <= bound_of(one, true));
    }

    #[test]
    fn hybrid_switches_at_threshold() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        // 6 candidates: a threshold of 0 means "never small enough" ->
        // local behaviour; a threshold of 100 admits lookahead already.
        let local_pick = choose_next(&mut LocalSpecific, &e);
        let lookahead_pick = choose_next(&mut LookaheadMinPrune, &e);
        assert_eq!(choose_next(&mut HybridStrategy::new(0), &e), local_pick);
        assert_eq!(
            choose_next(&mut HybridStrategy::new(100), &e),
            lookahead_pick
        );
        assert_eq!(HybridStrategy::new(7).threshold(), 7);
    }

    #[test]
    fn sim_state_transitions_match_engine() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let state = SimState::from_view(&e, &e.candidates());
        for c in e.candidates().candidates().to_vec() {
            // Remaining-after counts must equal total minus the engine's
            // simulate() prune counts.
            let (pos_pruned, neg_pruned) = e.simulate(&c.restricted_sig);
            let total = state.remaining();
            assert_eq!(
                state.after(&c.restricted_sig, true).remaining(),
                total - pos_pruned
            );
            assert_eq!(
                state.after(&c.restricted_sig, false).remaining(),
                total - neg_pruned
            );
        }
    }
}
