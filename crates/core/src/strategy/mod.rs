//! Interaction strategies — the paper's `Υ`: "a function that, given a set
//! of tuples and some labels, returns an informative tuple".
//!
//! The paper classifies strategies as **local** (simple, based on fixed
//! orders over the signature lattice), **lookahead** (score the quantity of
//! information a label would bring, via prune counts or a generalized
//! entropy), the **random** baseline, and the **optimal** exponential-time
//! planner. All of them are implemented here behind one trait.

mod data_aware;
mod local;
mod lookahead;
mod lookahead2;
pub mod optimal;
mod random;

pub use data_aware::DataAware;
pub use local::{LocalFrequency, LocalGeneral, LocalSpecific};
pub use lookahead::{LookaheadEntropy, LookaheadExpected, LookaheadMinPrune};
pub use lookahead2::{HybridStrategy, LookaheadTwoStep};
pub use optimal::OptimalStrategy;
pub use random::RandomStrategy;

use crate::engine::{Candidate, CandidateView, Engine};
use jim_relation::ProductId;
use std::fmt;

/// A strategy proposes the next tuple for the user to label.
///
/// Strategies rank the **borrowed** candidate view the engine maintains
/// incrementally ([`Engine::candidates`]) — they never materialize their
/// own candidate list, so a `choose` call costs the ranking, not a rebuild
/// of the group table. Callers take the view and hand it in:
///
/// ```ignore
/// let choice = {
///     let view = engine.candidates();
///     strategy.choose(&engine, &view)
/// };
/// ```
pub trait Strategy {
    /// Stable identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Pick the next informative tuple, or `None` when inference is
    /// complete (the view is empty).
    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId>;

    /// Rank the informative candidates best-first and return the top `k`
    /// (the demo's "top-k informative tuples" interaction, Figure 3.3).
    /// Default implementation returns the single best choice.
    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        self.choose(engine, candidates)
            .into_iter()
            .take(k)
            .collect()
    }
}

/// Convenience: take the engine's current candidate view and run
/// [`Strategy::choose`] against it. For callers that do not keep the view
/// across calls (sessions, oracles, tests).
pub fn choose_next(strategy: &mut (impl Strategy + ?Sized), engine: &Engine) -> Option<ProductId> {
    let view = engine.candidates();
    strategy.choose(engine, &view)
}

/// Convenience: take the engine's current candidate view and run
/// [`Strategy::top_k`] against it.
pub fn top_k_next(
    strategy: &mut (impl Strategy + ?Sized),
    engine: &Engine,
    k: usize,
) -> Vec<ProductId> {
    let view = engine.candidates();
    strategy.top_k(engine, &view, k)
}

/// Pick the best candidate under a score, breaking ties by the smallest
/// restricted signature and then representative — fully deterministic.
pub(crate) fn argmax_by_score<S: PartialOrd + Copy>(
    candidates: &[Candidate],
    score: impl FnMut(&Candidate) -> S,
) -> Option<ProductId> {
    ranked(candidates, score).first().map(|c| c.representative)
}

/// All candidates sorted best-first under a score with deterministic ties.
pub(crate) fn ranked<S: PartialOrd + Copy>(
    candidates: &[Candidate],
    mut score: impl FnMut(&Candidate) -> S,
) -> Vec<Candidate> {
    let mut scored: Vec<(S, &Candidate)> = candidates.iter().map(|c| (score(c), c)).collect();
    scored.sort_by(|(sa, ca), (sb, cb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ca.restricted_sig.cmp(&cb.restricted_sig))
            .then_with(|| ca.representative.cmp(&cb.representative))
    });
    scored.into_iter().map(|(_, c)| c.clone()).collect()
}

/// Enumerates every implemented strategy; the uniform handle experiments
/// sweep over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Uniformly random informative tuple (the paper's baseline).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Local: most general informative signature first (fewest atoms).
    LocalGeneral,
    /// Local: most specific informative signature first (most atoms).
    LocalSpecific,
    /// Local: most frequent informative signature first.
    LocalFrequency,
    /// Lookahead: maximize the worst-case prune count (maximin).
    LookaheadMinPrune,
    /// Lookahead: maximize the mean prune count across the two answers.
    LookaheadExpected,
    /// Lookahead: maximize the generalized entropy of the version-space
    /// split (`alpha` = 1.0 is Shannon entropy).
    LookaheadEntropy {
        /// Tsallis order of the generalized entropy.
        alpha: f64,
    },
    /// Lookahead: depth-2 minimax on remaining informative tuples.
    LookaheadTwoStep,
    /// Local choice on large candidate sets, lookahead on small ones.
    Hybrid {
        /// Candidate-set size at which lookahead kicks in.
        threshold: usize,
    },
    /// Statistics-guided: probe the rarest (most key-like) atoms first.
    DataAware,
    /// Exponential-time minimax planner (optimal worst-case interactions).
    Optimal,
}

impl StrategyKind {
    /// Instantiate the strategy. The trait object is `Send + 'static`, so a
    /// built strategy can live inside a server-side session that migrates
    /// across worker threads.
    pub fn build(self) -> Box<dyn Strategy + Send> {
        match self {
            StrategyKind::Random { seed } => Box::new(RandomStrategy::seeded(seed)),
            StrategyKind::LocalGeneral => Box::new(LocalGeneral),
            StrategyKind::LocalSpecific => Box::new(LocalSpecific),
            StrategyKind::LocalFrequency => Box::new(LocalFrequency),
            StrategyKind::LookaheadMinPrune => Box::new(LookaheadMinPrune),
            StrategyKind::LookaheadExpected => Box::new(LookaheadExpected),
            StrategyKind::LookaheadEntropy { alpha } => Box::new(LookaheadEntropy::new(alpha)),
            StrategyKind::LookaheadTwoStep => Box::new(LookaheadTwoStep),
            StrategyKind::Hybrid { threshold } => Box::new(HybridStrategy::new(threshold)),
            StrategyKind::DataAware => Box::new(DataAware::new()),
            StrategyKind::Optimal => Box::new(OptimalStrategy::default()),
        }
    }

    /// The polynomial-time strategies the paper's experiments compare
    /// (everything except the exponential planner).
    pub fn heuristics(seed: u64) -> Vec<StrategyKind> {
        vec![
            StrategyKind::Random { seed },
            StrategyKind::LocalGeneral,
            StrategyKind::LocalSpecific,
            StrategyKind::LocalFrequency,
            StrategyKind::LookaheadMinPrune,
            StrategyKind::LookaheadExpected,
            StrategyKind::LookaheadEntropy { alpha: 1.0 },
        ]
    }

    /// The heuristics plus this reproduction's extensions (depth-2
    /// lookahead and the hybrid) — what ablation A4 sweeps.
    pub fn extended(seed: u64) -> Vec<StrategyKind> {
        let mut all = StrategyKind::heuristics(seed);
        all.push(StrategyKind::LookaheadTwoStep);
        all.push(StrategyKind::Hybrid { threshold: 16 });
        all.push(StrategyKind::DataAware);
        all
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Random { .. } => f.write_str("random"),
            StrategyKind::LocalGeneral => f.write_str("local-general"),
            StrategyKind::LocalSpecific => f.write_str("local-specific"),
            StrategyKind::LocalFrequency => f.write_str("local-frequency"),
            StrategyKind::LookaheadMinPrune => f.write_str("lookahead-minprune"),
            StrategyKind::LookaheadExpected => f.write_str("lookahead-expected"),
            StrategyKind::LookaheadEntropy { alpha } => write!(f, "lookahead-entropy(α={alpha})"),
            StrategyKind::LookaheadTwoStep => f.write_str("lookahead-2step"),
            StrategyKind::Hybrid { .. } => f.write_str("hybrid"),
            StrategyKind::DataAware => f.write_str("data-aware"),
            StrategyKind::Optimal => f.write_str("optimal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use crate::predicate::JoinPredicate;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn flights() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap()
    }

    /// Run a full inference loop against a goal; return #interactions.
    fn run_to_convergence(kind: StrategyKind, goal_atoms: &[(usize, &str, usize, &str)]) -> u64 {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut engine = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = engine.universe().clone();
        let ids: Vec<_> = goal_atoms
            .iter()
            .map(|&(ra, a, rb, b)| u.id_by_names((ra, a), (rb, b)).unwrap())
            .collect();
        let goal = JoinPredicate::of(u, ids);

        let mut strategy = kind.build();
        let mut steps = 0u64;
        while let Some(id) = choose_next(strategy.as_mut(), &engine) {
            let tuple = engine.product().tuple(id).unwrap();
            let label = Label::from_bool(goal.selects(&tuple));
            engine.label(id, label).unwrap();
            steps += 1;
            assert!(steps <= 12, "{kind}: runaway loop");
            assert!(engine.consistent_with(&goal), "{kind}: goal eliminated");
        }
        assert!(engine.is_resolved(), "{kind}: not resolved");
        // The inferred query must be instance-equivalent to the goal.
        let inferred = engine.result();
        assert!(
            inferred
                .instance_equivalent(&goal, engine.product())
                .unwrap(),
            "{kind}: inferred {inferred} not equivalent to goal {goal}"
        );
        steps
    }

    #[test]
    fn every_strategy_infers_q1() {
        for kind in StrategyKind::extended(7)
            .into_iter()
            .chain([StrategyKind::Optimal])
        {
            let steps = run_to_convergence(kind, &[(0, "To", 1, "City")]);
            assert!(steps >= 1, "{kind}");
        }
    }

    #[test]
    fn every_strategy_infers_q2() {
        for kind in StrategyKind::extended(7)
            .into_iter()
            .chain([StrategyKind::Optimal])
        {
            let steps =
                run_to_convergence(kind, &[(0, "To", 1, "City"), (0, "Airline", 1, "Discount")]);
            assert!(
                steps >= 2,
                "{kind}: Q2 needs at least a positive and a negative"
            );
        }
    }

    #[test]
    fn every_strategy_infers_the_empty_join() {
        // Goal selects nothing that shares values: use From ≍ Discount,
        // which no tuple of the instance satisfies -> all answers negative.
        for kind in StrategyKind::heuristics(3)
            .into_iter()
            .chain([StrategyKind::Optimal])
        {
            run_to_convergence(kind, &[(0, "From", 1, "Discount")]);
        }
    }

    #[test]
    fn strategies_only_propose_informative_tuples() {
        let f = flights();
        let h = hotels();
        for kind in StrategyKind::heuristics(11) {
            let p = Product::new(vec![&f, &h]).unwrap();
            let mut engine = Engine::new(p, &EngineOptions::default()).unwrap();
            let mut strategy = kind.build();
            // Label (3)+ to create uninformative tuples.
            engine.label(ProductId(2), Label::Positive).unwrap();
            for _ in 0..10 {
                match choose_next(strategy.as_mut(), &engine) {
                    None => break,
                    Some(id) => {
                        assert!(engine.is_informative(id).unwrap(), "{kind} proposed {id}");
                        engine.label(id, Label::Negative).ok();
                    }
                }
            }
        }
    }

    #[test]
    fn choose_returns_none_when_resolved() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut engine = Engine::new(p, &EngineOptions::default()).unwrap();
        engine.label(ProductId(2), Label::Positive).unwrap();
        engine.label(ProductId(6), Label::Negative).unwrap();
        engine.label(ProductId(7), Label::Negative).unwrap();
        assert!(engine.is_resolved());
        for kind in StrategyKind::heuristics(1)
            .into_iter()
            .chain([StrategyKind::Optimal])
        {
            assert_eq!(choose_next(kind.build().as_mut(), &engine), None, "{kind}");
        }
    }

    #[test]
    fn top_k_returns_distinct_informative() {
        let f = flights();
        let h = hotels();
        let p = Product::new(vec![&f, &h]).unwrap();
        let engine = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut s = StrategyKind::LookaheadMinPrune.build();
        let top = top_k_next(s.as_mut(), &engine, 3);
        assert_eq!(top.len(), 3);
        let set: std::collections::HashSet<_> = top.iter().collect();
        assert_eq!(set.len(), 3);
        for id in top {
            assert!(engine.is_informative(id).unwrap());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(StrategyKind::LocalGeneral.to_string(), "local-general");
        assert_eq!(
            StrategyKind::LookaheadEntropy { alpha: 2.0 }.to_string(),
            "lookahead-entropy(α=2)"
        );
        assert_eq!(StrategyKind::Random { seed: 1 }.to_string(), "random");
        assert_eq!(StrategyKind::Optimal.to_string(), "optimal");
        assert_eq!(
            StrategyKind::LookaheadTwoStep.to_string(),
            "lookahead-2step"
        );
        assert_eq!(StrategyKind::Hybrid { threshold: 16 }.to_string(), "hybrid");
    }

    #[test]
    fn extended_superset_of_heuristics() {
        let h = StrategyKind::heuristics(0).len();
        let e = StrategyKind::extended(0).len();
        assert_eq!(e, h + 3);
    }

    #[test]
    fn deterministic_strategies_repeat_choices() {
        let f = flights();
        let h = hotels();
        for kind in [
            StrategyKind::LocalGeneral,
            StrategyKind::LocalSpecific,
            StrategyKind::LocalFrequency,
            StrategyKind::LookaheadMinPrune,
            StrategyKind::LookaheadExpected,
            StrategyKind::LookaheadEntropy { alpha: 1.0 },
            StrategyKind::Random { seed: 99 },
        ] {
            let p1 = Product::new(vec![&f, &h]).unwrap();
            let e1 = Engine::new(p1, &EngineOptions::default()).unwrap();
            let p2 = Product::new(vec![&f, &h]).unwrap();
            let e2 = Engine::new(p2, &EngineOptions::default()).unwrap();
            assert_eq!(
                choose_next(kind.build().as_mut(), &e1),
                choose_next(kind.build().as_mut(), &e2),
                "{kind}"
            );
        }
    }
}
