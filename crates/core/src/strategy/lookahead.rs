//! Lookahead strategies: "take into account the quantity of information
//! that labeling an informative tuple could bring to the inference process,
//! by using a generalized notion of entropy" (paper, §2).
//!
//! All three score every informative candidate by simulating both answers
//! (closed-form on restricted signatures, see [`Engine::simulate`]) and/or
//! by the split it induces on the version-space mass.

use crate::engine::{CandidateView, Engine};
use crate::strategy::{ranked, Strategy};
use jim_relation::ProductId;

/// Maximize the **worst-case** prune count: `max_t min(prune⁺(t),
/// prune⁻(t))`. The adversarial answer still grays out as much as possible.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookaheadMinPrune;

impl Strategy for LookaheadMinPrune {
    fn name(&self) -> &'static str {
        "lookahead-minprune"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        self.top_k(engine, candidates, 1).first().copied()
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        let mut scratch = engine.sim_scratch();
        ranked(candidates.candidates(), |c| {
            let (pos, neg) = engine.simulate_in(&c.restricted_sig, &mut scratch);
            (pos.min(neg), pos + neg)
        })
        .into_iter()
        .take(k)
        .map(|c| c.representative)
        .collect()
    }
}

/// Maximize the **mean** prune count across the two answers (a uniform
/// prior over answers): `max_t (prune⁺(t) + prune⁻(t))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookaheadExpected;

impl Strategy for LookaheadExpected {
    fn name(&self) -> &'static str {
        "lookahead-expected"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        self.top_k(engine, candidates, 1).first().copied()
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        let mut scratch = engine.sim_scratch();
        ranked(candidates.candidates(), |c| {
            let (pos, neg) = engine.simulate_in(&c.restricted_sig, &mut scratch);
            pos + neg
        })
        .into_iter()
        .take(k)
        .map(|c| c.representative)
        .collect()
    }
}

/// Maximize the **generalized entropy** of the version-space split.
///
/// For a candidate selected by a fraction `p` of the consistent predicates,
/// the Tsallis entropy of order `α` is
///
/// * `α = 1`: `−p·ln p − (1−p)·ln(1−p)` (Shannon),
/// * `α ≠ 1`: `(1 − p^α − (1−p)^α) / (α − 1)`.
///
/// Maximal when `p = ½`: the answer halves the version space — a binary
/// search over predicates. Falls back to the maximin prune score when
/// counting exceeds its budget.
#[derive(Debug, Clone, Copy)]
pub struct LookaheadEntropy {
    alpha: f64,
}

impl LookaheadEntropy {
    /// Entropy of order `alpha` (must be positive).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "entropy order must be positive");
        LookaheadEntropy { alpha }
    }

    /// The Tsallis order.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn entropy(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let q = 1.0 - p;
        if (self.alpha - 1.0).abs() < 1e-9 {
            let term = |x: f64| if x <= 0.0 { 0.0 } else { -x * x.ln() };
            term(p) + term(q)
        } else {
            (1.0 - p.powf(self.alpha) - q.powf(self.alpha)) / (self.alpha - 1.0)
        }
    }
}

impl Default for LookaheadEntropy {
    fn default() -> Self {
        LookaheadEntropy::new(1.0)
    }
}

impl Strategy for LookaheadEntropy {
    fn name(&self) -> &'static str {
        "lookahead-entropy"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        self.top_k(engine, candidates, 1).first().copied()
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        let vs = engine.version_space();
        let mut scratch = engine.sim_scratch();
        ranked(candidates.candidates(), |c| {
            match vs.selecting_probability(&c.restricted_sig) {
                Some(p) => self.entropy(p),
                None => {
                    // Counting blew its budget: fall back to a prune score,
                    // squashed into (0, 1) so entropy scores still dominate
                    // ln 2 ≥ ... no — keep comparable by scaling to [0, ln2).
                    let (pos, neg) = engine.simulate_in(&c.restricted_sig, &mut scratch);
                    let worst = pos.min(neg) as f64;
                    std::f64::consts::LN_2 * worst / (worst + 1.0)
                }
            }
        })
        .into_iter()
        .take(k)
        .map(|c| c.representative)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::strategy::choose_next;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    #[test]
    fn minprune_picks_a_balanced_tuple() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let id = choose_next(&mut LookaheadMinPrune, &e).unwrap();
        let t = e.product().tuple(id).unwrap();
        let sig = e.universe().signature(&t);
        let (pos, neg) = e.simulate(&e.version_space().restrict(&sig));
        // The paper highlights tuple (12) (signature {AD}) with prune counts
        // (4, 4); no candidate does better than min = 4.
        assert!(pos.min(neg) >= 4, "got ({pos},{neg})");
    }

    #[test]
    fn expected_score_at_least_minprune_choice() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let id = choose_next(&mut LookaheadExpected, &e).unwrap();
        assert!(e.is_informative(id).unwrap());
    }

    #[test]
    fn shannon_entropy_properties() {
        let s = LookaheadEntropy::new(1.0);
        assert!((s.entropy(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(s.entropy(0.0), 0.0);
        assert_eq!(s.entropy(1.0), 0.0);
        assert!(s.entropy(0.5) > s.entropy(0.1));
    }

    #[test]
    fn tsallis_entropy_properties() {
        let s = LookaheadEntropy::new(2.0);
        // H_2(p) = 1 - p² - (1-p)² = 2p(1-p); max 0.5 at p = ½.
        assert!((s.entropy(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(s.entropy(0.0), 0.0);
        let s_half = LookaheadEntropy::new(0.5);
        assert!(s_half.entropy(0.5) > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_alpha_rejected() {
        LookaheadEntropy::new(0.0);
    }

    #[test]
    fn entropy_strategy_chooses_informative() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let id = choose_next(&mut LookaheadEntropy::default(), &e).unwrap();
        assert!(e.is_informative(id).unwrap());
    }

    #[test]
    fn alpha_accessor() {
        assert_eq!(LookaheadEntropy::new(2.0).alpha(), 2.0);
    }
}
