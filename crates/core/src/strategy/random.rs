//! The random baseline: "for comparison we have also introduced the random
//! strategy which chooses randomly an informative tuple" (paper, §2).

use crate::engine::{CandidateView, Engine};
use crate::strategy::Strategy;
use jim_relation::ProductId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses uniformly at random among the informative *tuples* (signature
/// classes weighted by their population, exactly as a user scrolling a
/// random row would).
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    rng: StdRng,
}

impl RandomStrategy {
    /// Seeded for reproducible experiments.
    pub fn seeded(seed: u64) -> Self {
        RandomStrategy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, _engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        let total: u64 = candidates.total_tuples();
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.gen_range(0..total);
        for c in candidates.iter() {
            if pick < c.count {
                return Some(c.representative);
            }
            pick -= c.count;
        }
        unreachable!("pick < total by construction")
    }

    fn top_k(
        &mut self,
        _engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        let mut reps: Vec<ProductId> = candidates.iter().map(|c| c.representative).collect();
        let mut out = Vec::with_capacity(k.min(reps.len()));
        while out.len() < k && !reps.is_empty() {
            let i = self.rng.gen_range(0..reps.len());
            out.push(reps.swap_remove(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::strategy::choose_next;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    /// Two candidate atoms (x≍y, x≍z); three signature groups, all
    /// informative: {x≍y}, {x≍z} and ∅.
    fn two_column_instance() -> (Relation, Relation) {
        let a = Relation::new(
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2]],
        )
        .unwrap();
        let b = Relation::new(
            RelationSchema::of("b", &[("y", DataType::Int), ("z", DataType::Int)]).unwrap(),
            vec![tup![1, 5], tup![3, 1]],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn same_seed_same_sequence() {
        let (a, b) = two_column_instance();
        let p = Product::new(vec![&a, &b]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let c1 = choose_next(&mut RandomStrategy::seeded(5), &e);
        let c2 = choose_next(&mut RandomStrategy::seeded(5), &e);
        assert_eq!(c1, c2);
        assert!(c1.is_some());
    }

    #[test]
    fn eventually_visits_all_groups() {
        let (a, b) = two_column_instance();
        let p = Product::new(vec![&a, &b]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut s = RandomStrategy::seeded(0);
        for _ in 0..200 {
            seen.insert(choose_next(&mut s, &e).unwrap());
        }
        // Three informative groups ({x≍y}, {x≍z}, ∅); all should be sampled.
        assert_eq!(seen.len(), 3);
    }
}
