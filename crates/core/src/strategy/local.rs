//! Local strategies: "rather simple and based on some fixed orders"
//! (paper, §2) — they rank informative signatures by a position in the
//! signature lattice, without simulating answers.

use crate::engine::{CandidateView, Engine};
use crate::strategy::{argmax_by_score, ranked, Strategy};
use jim_relation::ProductId;

/// Most **general** informative signature first (fewest atoms). A positive
/// answer on a small signature collapses `U` aggressively; a negative
/// answer discards a thin slice. Works well when the goal query is small.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalGeneral;

impl Strategy for LocalGeneral {
    fn name(&self) -> &'static str {
        "local-general"
    }

    fn choose(&mut self, _engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        argmax_by_score(candidates.candidates(), |c| {
            -(c.restricted_sig.len() as i64)
        })
    }

    fn top_k(
        &mut self,
        _engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        ranked(candidates.candidates(), |c| {
            -(c.restricted_sig.len() as i64)
        })
        .into_iter()
        .take(k)
        .map(|c| c.representative)
        .collect()
    }
}

/// Most **specific** informative signature first (most atoms). A negative
/// answer near the top of the lattice eliminates large down-sets; a
/// positive answer pins `U` precisely. Works well when the goal query is
/// large (complex).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSpecific;

impl Strategy for LocalSpecific {
    fn name(&self) -> &'static str {
        "local-specific"
    }

    fn choose(&mut self, _engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        argmax_by_score(candidates.candidates(), |c| c.restricted_sig.len() as i64)
    }

    fn top_k(
        &mut self,
        _engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        ranked(candidates.candidates(), |c| c.restricted_sig.len() as i64)
            .into_iter()
            .take(k)
            .map(|c| c.representative)
            .collect()
    }
}

/// Most **frequent** informative signature first: resolving the most
/// populated equivalence class grays out the most rows per answer in the
/// best case, regardless of lattice position.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalFrequency;

impl Strategy for LocalFrequency {
    fn name(&self) -> &'static str {
        "local-frequency"
    }

    fn choose(&mut self, _engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        argmax_by_score(candidates.candidates(), |c| c.count)
    }

    fn top_k(
        &mut self,
        _engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        ranked(candidates.candidates(), |c| c.count)
            .into_iter()
            .take(k)
            .map(|c| c.representative)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::strategy::{choose_next, top_k_next};
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    /// Figure-1 instance: signatures ∅×3, {FC}×3, {TC,AD}×2, {FC,AD}×1,
    /// {TC}×2, {AD}×1.
    fn engine_fixture() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    #[test]
    fn general_picks_empty_signature_first() {
        let (f, h) = engine_fixture();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        // The most general signature is ∅, first carried by tuple (1) = rank 0.
        let id = choose_next(&mut LocalGeneral, &e).unwrap();
        let t = e.product().tuple(id).unwrap();
        assert!(e.universe().signature(&t).is_empty());
    }

    #[test]
    fn specific_picks_two_atom_signature_first() {
        let (f, h) = engine_fixture();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let id = choose_next(&mut LocalSpecific, &e).unwrap();
        let t = e.product().tuple(id).unwrap();
        assert_eq!(e.universe().signature(&t).len(), 2);
    }

    #[test]
    fn frequency_picks_most_populated() {
        let (f, h) = engine_fixture();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let id = choose_next(&mut LocalFrequency, &e).unwrap();
        let t = e.product().tuple(id).unwrap();
        let sig = e.universe().signature(&t);
        // The ties at count 3 are ∅ and {FC}; tie-break is the smaller
        // signature lexicographically: ∅.
        assert!(sig.is_empty() || sig.len() == 1);
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let (f, h) = engine_fixture();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let ids = top_k_next(&mut LocalSpecific, &e, 6);
        assert_eq!(ids.len(), 6);
        let sizes: Vec<usize> = ids
            .iter()
            .map(|&id| {
                let t = e.product().tuple(id).unwrap();
                e.universe().signature(&t).len()
            })
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
    }
}
