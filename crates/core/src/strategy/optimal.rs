//! The optimal (exponential-time) planner.
//!
//! The paper notes: "there exists an algorithm that computes the optimal
//! strategy of showing tuples to the user, but it requires exponential
//! time, which unfortunately renders it unusable in practice". This module
//! implements that algorithm — memoized minimax over version-space states —
//! both as a [`Strategy`] and as a standalone depth oracle, so experiments
//! can quantify exactly *how* impractical it is (experiment E6) and how
//! close the heuristics come to optimal.

use crate::bitset::{maximal_antichain, AtomSet};
use crate::engine::{CandidateView, Engine};
use crate::error::{InferenceError, Result};
use crate::strategy::Strategy;
use jim_relation::ProductId;
use std::collections::HashMap;

/// A canonical version-space state: everything the worst-case interaction
/// count depends on. Tuple multiplicities are irrelevant (only *distinct*
/// informative signatures matter), which is what makes memoization bite.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Current upper bound `U`.
    upper: AtomSet,
    /// Maximal negative antichain, sorted.
    negs: Vec<AtomSet>,
    /// Distinct informative restricted signatures, sorted.
    sigs: Vec<AtomSet>,
}

impl State {
    fn from_engine(engine: &Engine) -> State {
        let vs = engine.version_space();
        let mut negs: Vec<AtomSet> = vs.negatives().to_vec();
        negs.sort();
        let mut sigs: Vec<AtomSet> = engine
            .candidates()
            .iter()
            .map(|c| c.restricted_sig.clone())
            .collect();
        sigs.sort();
        sigs.dedup();
        State {
            upper: vs.upper().clone(),
            negs,
            sigs,
        }
    }

    /// Is a restricted signature informative under `(upper, negs)`?
    fn informative(upper: &AtomSet, negs: &[AtomSet], sig: &AtomSet) -> bool {
        sig != upper && !negs.iter().any(|n| sig.is_subset(n))
    }

    /// The state after answering `+` on signature `s`.
    fn after_positive(&self, s: &AtomSet) -> State {
        let upper = s.clone();
        let mut negs =
            maximal_antichain(self.negs.iter().map(|n| n.intersection(&upper)).collect());
        negs.sort();
        let mut sigs: Vec<AtomSet> = self
            .sigs
            .iter()
            .map(|r| r.intersection(&upper))
            .filter(|r| State::informative(&upper, &negs, r))
            .collect();
        sigs.sort();
        sigs.dedup();
        State { upper, negs, sigs }
    }

    /// The state after answering `−` on signature `s`.
    fn after_negative(&self, s: &AtomSet) -> State {
        let mut with_s = self.negs.clone();
        with_s.push(s.clone());
        let mut negs = maximal_antichain(with_s);
        negs.sort();
        let mut sigs: Vec<AtomSet> = self
            .sigs
            .iter()
            .filter(|r| State::informative(&self.upper, &negs, r))
            .cloned()
            .collect();
        sigs.sort();
        sigs.dedup();
        State {
            upper: self.upper.clone(),
            negs,
            sigs,
        }
    }
}

/// Memoized minimax planner. Reusable across the steps of one inference run
/// (each real answer lands in a child state that is usually already
/// memoized).
#[derive(Debug)]
pub struct OptimalPlanner {
    memo: HashMap<State, u32>,
    /// Hard cap on distinct states explored; exceeding it returns
    /// [`InferenceError::BudgetExceeded`].
    max_states: usize,
}

impl Default for OptimalPlanner {
    fn default() -> Self {
        OptimalPlanner::with_budget(DEFAULT_MAX_STATES)
    }
}

impl OptimalPlanner {
    /// A planner with the given state budget.
    pub fn with_budget(max_states: usize) -> Self {
        OptimalPlanner {
            memo: HashMap::new(),
            max_states,
        }
    }

    /// Number of distinct states explored so far (the experiment E6
    /// "exponential blow-up" metric).
    pub fn states_explored(&self) -> usize {
        self.memo.len()
    }

    /// The optimal worst-case number of membership queries from the
    /// engine's current state.
    pub fn worst_case_depth(&mut self, engine: &Engine) -> Result<u32> {
        let state = State::from_engine(engine);
        self.depth(&state)
    }

    /// The signature to query next for optimal worst-case depth, with that
    /// depth. `None` when already resolved.
    pub fn best_move(&mut self, engine: &Engine) -> Result<Option<(AtomSet, u32)>> {
        let state = State::from_engine(engine);
        if state.sigs.is_empty() {
            return Ok(None);
        }
        let mut best: Option<(AtomSet, u32)> = None;
        for s in &state.sigs {
            let d_pos = self.depth(&state.after_positive(s))?;
            let d_neg = self.depth(&state.after_negative(s))?;
            let d = 1 + d_pos.max(d_neg);
            if best.as_ref().is_none_or(|(_, b)| d < *b) {
                best = Some((s.clone(), d));
            }
        }
        Ok(best)
    }

    fn depth(&mut self, state: &State) -> Result<u32> {
        if state.sigs.is_empty() {
            return Ok(0);
        }
        if let Some(&d) = self.memo.get(state) {
            return Ok(d);
        }
        if self.memo.len() >= self.max_states {
            return Err(InferenceError::BudgetExceeded {
                what: "optimal planner states",
            });
        }
        let mut best = u32::MAX;
        for s in &state.sigs {
            let d_pos = self.depth(&state.after_positive(s))?;
            if 1 + d_pos >= best {
                continue; // cannot improve even if the negative branch is free
            }
            let d_neg = self.depth(&state.after_negative(s))?;
            best = best.min(1 + d_pos.max(d_neg));
            if best == 1 {
                break; // one question resolves everything: optimal
            }
        }
        self.memo.insert(state.clone(), best);
        Ok(best)
    }
}

/// Default budget: enough for the tiny instances where the planner is
/// usable at all (the paper calls it "unusable in practice").
const DEFAULT_MAX_STATES: usize = 2_000_000;

/// The optimal planner wrapped as a [`Strategy`].
///
/// Panics inside `choose` are avoided: when the budget is exceeded, it
/// falls back to the first informative candidate (and records that it did).
#[derive(Debug)]
pub struct OptimalStrategy {
    planner: OptimalPlanner,
    fell_back: bool,
}

impl Default for OptimalStrategy {
    fn default() -> Self {
        OptimalStrategy {
            planner: OptimalPlanner::with_budget(DEFAULT_MAX_STATES),
            fell_back: false,
        }
    }
}

impl OptimalStrategy {
    /// A strategy with a custom planner budget.
    pub fn with_budget(max_states: usize) -> Self {
        OptimalStrategy {
            planner: OptimalPlanner::with_budget(max_states),
            fell_back: false,
        }
    }

    /// Did any `choose` call exceed the planner budget and fall back?
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Access the underlying planner (e.g. for state counts).
    pub fn planner(&self) -> &OptimalPlanner {
        &self.planner
    }
}

impl Strategy for OptimalStrategy {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        let candidates = candidates.candidates();
        if candidates.is_empty() {
            return None;
        }
        match self.planner.best_move(engine) {
            Ok(Some((sig, _depth))) => candidates
                .iter()
                .find(|c| c.restricted_sig == sig)
                .map(|c| c.representative),
            Ok(None) => None,
            Err(_) => {
                self.fell_back = true;
                Some(candidates[0].representative)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use crate::strategy::choose_next;
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    #[test]
    fn paper_instance_has_small_optimal_depth() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut planner = OptimalPlanner::with_budget(1_000_000);
        let d = planner.worst_case_depth(&e).unwrap();
        // 6 distinct signatures: between 3 and 6 questions resolve any goal.
        assert!(d >= 3, "depth {d}");
        assert!(d <= 6, "depth {d}");
        assert!(planner.states_explored() > 0);
    }

    #[test]
    fn depth_decreases_monotonically_along_optimal_play() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut planner = OptimalPlanner::with_budget(1_000_000);
        let mut prev = planner.worst_case_depth(&e).unwrap();
        // Adversarial answers can never push the remaining depth above
        // prev - 1.
        while let Some((sig, _)) = planner.best_move(&e).unwrap() {
            let rep = e
                .candidates()
                .iter()
                .find(|c| c.restricted_sig == sig)
                .unwrap()
                .representative;
            // Adversary: pick the branch with larger remaining depth.
            let mut e_pos = e.clone();
            e_pos.label(rep, Label::Positive).unwrap();
            let d_pos = planner.worst_case_depth(&e_pos).unwrap();
            let mut e_neg = e.clone();
            e_neg.label(rep, Label::Negative).unwrap();
            let d_neg = planner.worst_case_depth(&e_neg).unwrap();
            let (next, d) = if d_pos >= d_neg {
                (e_pos, d_pos)
            } else {
                (e_neg, d_neg)
            };
            assert!(d < prev, "depth {d} after a query from depth {prev}");
            prev = d;
            e = next;
            if prev == 0 {
                break;
            }
        }
        assert!(e.is_resolved());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut planner = OptimalPlanner::with_budget(1);
        assert!(matches!(
            planner.worst_case_depth(&e),
            Err(InferenceError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn strategy_falls_back_when_over_budget() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut s = OptimalStrategy::with_budget(1);
        let id = choose_next(&mut s, &e);
        assert!(id.is_some());
        assert!(s.fell_back());
    }

    #[test]
    fn resolved_state_is_depth_zero() {
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        e.label(ProductId(2), Label::Positive).unwrap();
        e.label(ProductId(6), Label::Negative).unwrap();
        e.label(ProductId(7), Label::Negative).unwrap();
        assert!(e.is_resolved());
        let mut planner = OptimalPlanner::default();
        assert_eq!(planner.worst_case_depth(&e).unwrap(), 0);
    }

    #[test]
    fn optimal_never_beaten_by_heuristics_on_worst_case() {
        // The optimal depth is a lower bound on every strategy's worst case
        // over all goals. Check: for each single-atom goal, the optimal
        // strategy uses at most `optimal depth` questions.
        let (f, h) = paper_instance();
        let p = Product::new(vec![&f, &h]).unwrap();
        let e0 = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut planner = OptimalPlanner::with_budget(1_000_000);
        let bound = planner.worst_case_depth(&e0).unwrap();

        let u = e0.universe().clone();
        for atom_idx in 0..u.len() {
            let goal = crate::predicate::JoinPredicate::of(
                u.clone(),
                [crate::atoms::AtomId(atom_idx as u32)],
            );
            let mut e = e0.clone();
            let mut s = OptimalStrategy::with_budget(1_000_000);
            let mut steps = 0;
            while let Some(id) = choose_next(&mut s, &e) {
                let t = e.product().tuple(id).unwrap();
                e.label(id, Label::from_bool(goal.selects(&t))).unwrap();
                steps += 1;
                assert!(
                    steps <= bound,
                    "goal {goal}: exceeded optimal bound {bound}"
                );
            }
            assert!(!s.fell_back());
            assert!(e.is_resolved());
        }
    }
}
