//! A data-aware strategy: use value statistics to ask about *key-like*
//! atoms first.
//!
//! JIM assumes no metadata, but the raw data itself hints at which
//! equalities are intentional: a foreign-key atom is **selective** (few
//! product tuples satisfy it), while accidental equalities over small
//! domains are common. This strategy scores each informative candidate by
//! the rarest atom its signature satisfies — tuples witnessing a rare
//! equality are the ones whose answer most directly confirms or kills a
//! key-join hypothesis. It is "local" in cost (statistics are collected
//! once, scoring is O(atoms)) but informed by the instance, sitting
//! between the paper's local and lookahead families; ablation A5 measures
//! where that lands.

use crate::engine::{CandidateView, Engine};
use crate::strategy::{ranked, Strategy};
use jim_relation::stats::JoinStats;
use jim_relation::ProductId;

/// Statistics-guided candidate selection (see module docs).
#[derive(Debug, Clone, Default)]
pub struct DataAware {
    /// Per-atom selectivity in `[0, 1]`, computed lazily from the engine's
    /// product on first use (the instance is immutable during a session —
    /// [`Engine::absorb_ids`] mid-session invalidates nothing structurally,
    /// it only makes these numbers slightly stale, so we keep them).
    selectivity: Option<Vec<f64>>,
}

impl DataAware {
    /// A fresh, not-yet-fitted strategy.
    pub fn new() -> Self {
        DataAware::default()
    }

    fn fit(&mut self, engine: &Engine) -> &[f64] {
        if self.selectivity.is_none() {
            let product = engine.product();
            let schema = product.schema();
            let universe = engine.universe();
            let stats = JoinStats::collect(product.relations(), schema)
                .expect("engine schema matches its relations");
            let sel: Vec<f64> = universe
                .atoms()
                .iter()
                .map(|atom| {
                    stats.atom_selectivity(atom.a, atom.b).unwrap_or_else(|_| {
                        // Intra-relation atom (AllPairs scope): selectivity
                        // by row scan of the one relation involved.
                        let (rel, la) = schema.locate(atom.a).expect("atom in schema");
                        let (_, lb) = schema.locate(atom.b).expect("atom in schema");
                        let r = &product.relations()[rel];
                        if r.is_empty() {
                            return 0.0;
                        }
                        let hits = r.rows().iter().filter(|t| t[la] == t[lb]).count();
                        hits as f64 / r.len() as f64
                    })
                })
                .collect();
            self.selectivity = Some(sel);
        }
        self.selectivity.as_deref().expect("just fitted")
    }
}

impl Strategy for DataAware {
    fn name(&self) -> &'static str {
        "data-aware"
    }

    fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
        self.top_k(engine, candidates, 1).first().copied()
    }

    fn top_k(
        &mut self,
        engine: &Engine,
        candidates: &CandidateView<'_>,
        k: usize,
    ) -> Vec<ProductId> {
        let sel = self.fit(engine);
        // Score: 1 − (selectivity of the rarest atom satisfied). A tuple
        // satisfying a near-key atom scores close to 1; the empty
        // signature (satisfies nothing interesting) scores 0.
        ranked(candidates.candidates(), |c| {
            c.restricted_sig
                .iter()
                .map(|i| 1.0 - sel[i])
                .fold(0.0f64, f64::max)
        })
        .into_iter()
        .take(k)
        .map(|c| c.representative)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::label::Label;
    use crate::predicate::JoinPredicate;
    use crate::strategy::{choose_next, top_k_next};
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    /// A relation pair with one key-like atom (id ≍ fk, selectivity 1/n)
    /// and one noisy atom (flag ≍ tag over a 2-value domain, selectivity
    /// ~1/2).
    fn keyed_instance() -> (Relation, Relation) {
        let left = Relation::new(
            RelationSchema::of("l", &[("id", DataType::Int), ("flag", DataType::Int)]).unwrap(),
            (0..8).map(|i| tup![i as i64, (i % 2) as i64]).collect(),
        )
        .unwrap();
        let right = Relation::new(
            RelationSchema::of("r", &[("fk", DataType::Int), ("tag", DataType::Int)]).unwrap(),
            (0..8)
                .map(|i| tup![i as i64, ((i / 2) % 2) as i64])
                .collect(),
        )
        .unwrap();
        (left, right)
    }

    #[test]
    fn first_question_witnesses_the_key_atom() {
        let (l, r) = keyed_instance();
        let p = Product::new(vec![&l, &r]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe().clone();
        let key = u.id_by_names((0, "id"), (1, "fk")).unwrap();

        let mut s = DataAware::new();
        let pick = choose_next(&mut s, &e).unwrap();
        let tuple = e.product().tuple(pick).unwrap();
        let sig = u.signature(&tuple);
        assert!(
            sig.contains(key.index()),
            "data-aware should probe the key atom first, picked {sig:?}"
        );
    }

    #[test]
    fn converges_on_fk_goal() {
        let (l, r) = keyed_instance();
        let p = Product::new(vec![&l, &r]).unwrap();
        let mut e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe().clone();
        let key = u.id_by_names((0, "id"), (1, "fk")).unwrap();
        let goal = JoinPredicate::of(u, [key]);

        let mut s = DataAware::new();
        let mut steps = 0;
        while let Some(id) = choose_next(&mut s, &e) {
            let t = e.product().tuple(id).unwrap();
            e.label(id, Label::from_bool(goal.selects(&t))).unwrap();
            steps += 1;
            assert!(steps <= 64);
        }
        assert!(e.is_resolved());
        assert!(e.result().instance_equivalent(&goal, e.product()).unwrap());
        assert!(steps <= 10, "{steps} steps");
    }

    #[test]
    fn statistics_fitted_once() {
        let (l, r) = keyed_instance();
        let p = Product::new(vec![&l, &r]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut s = DataAware::new();
        assert!(s.selectivity.is_none());
        let _ = choose_next(&mut s, &e);
        assert!(s.selectivity.is_some());
        let first = s.selectivity.clone();
        let _ = choose_next(&mut s, &e);
        assert_eq!(s.selectivity, first);
    }

    #[test]
    fn works_with_all_pairs_scope() {
        use crate::atoms::AtomScope;
        let (l, r) = keyed_instance();
        let p = Product::new(vec![&l, &r]).unwrap();
        let opts = EngineOptions {
            scope: AtomScope::AllPairs,
            ..Default::default()
        };
        let e = Engine::new(p, &opts).unwrap();
        // Intra-relation atoms take the row-scan selectivity path.
        let mut s = DataAware::new();
        assert!(choose_next(&mut s, &e).is_some());
        let sel = s.selectivity.as_ref().unwrap();
        assert_eq!(sel.len(), e.universe().len());
        assert!(sel.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn top_k_returns_distinct() {
        let (l, r) = keyed_instance();
        let p = Product::new(vec![&l, &r]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let ids = top_k_next(&mut DataAware::new(), &e, 3);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), set.len());
        assert!(!ids.is_empty());
    }
}
