//! Error types for the inference engine.

use jim_relation::{ProductId, RelationError};
use std::fmt;

/// Errors produced by the JIM inference engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The user gave a label that contradicts the labels given so far
    /// (e.g. labeled a certain-positive tuple as negative). The paper's
    /// interactive scenario assumes a consistent user; surfacing this as an
    /// error lets sessions detect careless answers instead of silently
    /// corrupting the version space.
    InconsistentLabel {
        /// The tuple that was labeled.
        tuple: ProductId,
        /// `true` if the offending label was positive.
        positive: bool,
    },
    /// A tuple id was labeled twice.
    AlreadyLabeled {
        /// The tuple that was labeled before.
        tuple: ProductId,
    },
    /// One answer batch contained the same tuple id with *both* labels.
    /// Duplicates with equal labels collapse silently; a contradiction
    /// rejects the whole batch atomically (no label of it is applied).
    ConflictingBatchLabels {
        /// The tuple that appeared with both labels.
        tuple: ProductId,
    },
    /// The tuple id does not belong to the engine's instance.
    UnknownTuple {
        /// The offending tuple id.
        tuple: ProductId,
    },
    /// The atom universe is empty (no type-compatible attribute pairs), so
    /// there is nothing to infer.
    EmptyUniverse,
    /// The instance's cartesian product exceeded the configured bound.
    ProductTooLarge {
        /// Number of tuples in the product.
        size: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Factorized construction gave up: the relations' block structure is
    /// too rich to sweep within the configured budget. Callers should fall
    /// back to sampling the product.
    FactorizationTooLarge {
        /// The estimated sweep cost (block combinations or candidate block
        /// pairs).
        cost: u64,
        /// The configured limit (`EngineOptions::max_combos`).
        limit: u64,
    },
    /// An exact computation (consistent-predicate count, optimal planner)
    /// exceeded its configured budget.
    BudgetExceeded {
        /// What was being computed.
        what: &'static str,
    },
    /// A persisted artifact (JSON transcript, wire message) failed to
    /// decode.
    Decode {
        /// What went wrong.
        message: String,
    },
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::InconsistentLabel { tuple, positive } => {
                let sign = if *positive { "+" } else { "-" };
                write!(
                    f,
                    "label {sign} on tuple {tuple} contradicts the labels given so far"
                )
            }
            InferenceError::AlreadyLabeled { tuple } => {
                write!(f, "tuple {tuple} is already labeled")
            }
            InferenceError::ConflictingBatchLabels { tuple } => {
                write!(f, "batch labels tuple {tuple} both + and -")
            }
            InferenceError::UnknownTuple { tuple } => {
                write!(f, "tuple {tuple} is not part of this instance")
            }
            InferenceError::EmptyUniverse => {
                f.write_str("no candidate equality atoms: the relations share no type-compatible attribute pairs")
            }
            InferenceError::ProductTooLarge { size, limit } => {
                write!(f, "cartesian product has {size} tuples, above the limit of {limit}; sample it first")
            }
            InferenceError::FactorizationTooLarge { cost, limit } => {
                write!(f, "factorization too large: sweep cost {cost} exceeds limit {limit}; sample the product instead")
            }
            InferenceError::BudgetExceeded { what } => {
                write!(f, "exact computation of {what} exceeded its budget")
            }
            InferenceError::Decode { message } => write!(f, "decode error: {message}"),
            InferenceError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InferenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferenceError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for InferenceError {
    fn from(e: RelationError) -> Self {
        InferenceError::Relation(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, InferenceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_tuple() {
        let e = InferenceError::InconsistentLabel {
            tuple: ProductId(7),
            positive: false,
        };
        assert!(e.to_string().contains("t7"));
        assert!(e.to_string().contains('-'));
    }

    #[test]
    fn relation_error_converts() {
        let r = RelationError::UnknownRelation {
            relation: "x".into(),
        };
        let e: InferenceError = r.clone().into();
        assert_eq!(e, InferenceError::Relation(r));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
