//! Interactive sessions: the four interaction types of the paper's
//! Figure 3, driven to completion against an [`Oracle`].
//!
//! 1. **Free labeling** — the user picks any unlabeled tuple, in any order;
//!    nothing is grayed out, so effort is routinely wasted on uninformative
//!    tuples.
//! 2. **Free labeling with gray-out** — same, but after each label JIM
//!    interactively grays out the tuples that became uninformative.
//! 3. **Top-k proposals** — JIM computes the top-k informative tuples and
//!    the user labels the whole batch.
//! 4. **Most informative** — the core loop of Figure 2: JIM proposes one
//!    maximally informative tuple at a time.
//!
//! All four stop the moment the goal is identified (no informative tuple
//! left); the differences in interaction counts are exactly what the demo's
//! Figure 4 visualizes.

use crate::engine::Engine;
use crate::error::Result;
use crate::label::Label;
use crate::oracle::Oracle;
use crate::predicate::JoinPredicate;
use crate::stats::ProgressStats;
use crate::strategy::{choose_next, top_k_next, Strategy};
use jim_relation::ProductId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a free-form user (modes 1 and 2) picks the next tuple to label from
/// the rows still shown on screen.
pub trait TuplePicker {
    /// Choose one of `visible` (non-empty) to label next.
    fn pick(&mut self, visible: &[ProductId]) -> ProductId;
}

/// Scans the table top-to-bottom — the diligent reader.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialPicker;

impl TuplePicker for SequentialPicker {
    fn pick(&mut self, visible: &[ProductId]) -> ProductId {
        visible[0]
    }
}

/// Clicks around uniformly at random — the browsing reader.
#[derive(Debug, Clone)]
pub struct RandomPicker {
    rng: StdRng,
}

impl RandomPicker {
    /// Seeded for reproducible experiments.
    pub fn seeded(seed: u64) -> Self {
        RandomPicker {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TuplePicker for RandomPicker {
    fn pick(&mut self, visible: &[ProductId]) -> ProductId {
        visible[self.rng.gen_range(0..visible.len())]
    }
}

/// The result of a completed session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The engine in its final state (inspect stats, entailed tuples, …).
    pub engine: Engine,
    /// The inferred query (the canonical consistent predicate).
    pub inferred: JoinPredicate,
    /// Number of membership queries the user answered (= oracle questions
    /// posed; skipped proposals never reach the oracle).
    pub interactions: u64,
    /// Elementary questions asked of the oracle (≥ `interactions` for
    /// majority-vote crowd oracles).
    pub questions: u64,
    /// Proposed-batch entries dropped **before** the oracle saw them — an
    /// id the engine already had a label for, or a duplicate inside one
    /// batch (a strategy is free to repeat itself). These are engine-side
    /// skips, not user interactions; keeping them explicit is what lets
    /// `interactions` count oracle questions rather than engine mutations.
    pub skipped: u64,
    /// Whether the session reached the unique-query termination condition.
    pub resolved: bool,
}

impl SessionOutcome {
    /// Final progress statistics.
    pub fn stats(&self) -> &ProgressStats {
        self.engine.stats()
    }
}

fn ask(engine: &mut Engine, oracle: &mut dyn Oracle, id: ProductId) -> Result<()> {
    let tuple = engine.product().tuple(id)?;
    let label = oracle.label(&tuple);
    engine.label(id, label)?;
    Ok(())
}

/// Mode 4 — the core interactive scenario (Figure 2): repeatedly ask the
/// most informative tuple according to `strategy` until the query is
/// uniquely identified.
pub fn run_most_informative(
    mut engine: Engine,
    strategy: &mut dyn Strategy,
    oracle: &mut dyn Oracle,
) -> Result<SessionOutcome> {
    while let Some(id) = choose_next(strategy, &engine) {
        ask(&mut engine, oracle, id)?;
    }
    finish(engine, oracle)
}

/// Mode 3 — top-k proposals: JIM proposes the `k` most informative tuples,
/// the user labels the whole batch (even entries that sibling answers in
/// the same batch make uninformative — that slack is the point of the
/// demonstration), then a fresh batch is computed.
///
/// The whole batch of answers is collected **first** and propagated with
/// one [`Engine::label_batch`] pass, so a k-label round costs one
/// candidate-index maintenance pass instead of k. Proposals the engine
/// already has a label for (or duplicates inside one batch) are skipped
/// *before* the oracle sees them and surface in
/// [`SessionOutcome::skipped`] — they cost no question.
pub fn run_top_k(
    mut engine: Engine,
    k: usize,
    strategy: &mut dyn Strategy,
    oracle: &mut dyn Oracle,
) -> Result<SessionOutcome> {
    assert!(k > 0, "k must be positive");
    let mut skipped = 0u64;
    loop {
        let batch = top_k_next(strategy, &engine, k);
        if batch.is_empty() {
            break;
        }
        let mut asked: Vec<ProductId> = Vec::with_capacity(batch.len());
        for id in batch {
            if engine.label_of(id).is_some() || asked.contains(&id) {
                skipped += 1;
            } else {
                asked.push(id);
            }
        }
        if asked.is_empty() {
            break;
        }
        let tuples = asked
            .iter()
            .map(|&id| engine.product().tuple(id))
            .collect::<jim_relation::Result<Vec<_>>>()?;
        let answers = oracle.label_batch(&tuples);
        // A short answer vector would silently zip-truncate the batch and
        // loop forever re-proposing the unanswered tail — fail fast on a
        // broken oracle contract instead.
        assert_eq!(answers.len(), asked.len(), "one label per question");
        let labels: Vec<(ProductId, Label)> = asked.into_iter().zip(answers).collect();
        let outcome = engine.label_batch(&labels)?;
        if outcome.resolved {
            break;
        }
    }
    finish_with_skips(engine, oracle, skipped)
}

/// Modes 1 and 2 — free labeling. With `gray_out` the user only sees (and
/// can only pick) informative tuples; without it they may waste effort.
/// Stops when the query is identified or nothing is left to label.
pub fn run_free(
    mut engine: Engine,
    gray_out: bool,
    picker: &mut dyn TuplePicker,
    oracle: &mut dyn Oracle,
) -> Result<SessionOutcome> {
    while !engine.is_resolved() {
        let visible = engine.visible_ids(gray_out);
        if visible.is_empty() {
            break;
        }
        let id = picker.pick(&visible);
        ask(&mut engine, oracle, id)?;
    }
    finish(engine, oracle)
}

fn finish(engine: Engine, oracle: &mut dyn Oracle) -> Result<SessionOutcome> {
    finish_with_skips(engine, oracle, 0)
}

fn finish_with_skips(
    engine: Engine,
    oracle: &mut dyn Oracle,
    skipped: u64,
) -> Result<SessionOutcome> {
    let outcome = SessionOutcome {
        inferred: engine.result(),
        interactions: engine.stats().interactions(),
        questions: oracle.questions_asked(),
        skipped,
        resolved: engine.is_resolved(),
        engine,
    };
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::oracle::GoalOracle;
    use crate::strategy::{LookaheadMinPrune, StrategyKind};
    use jim_relation::{tup, DataType, Product, Relation, RelationSchema};

    fn paper_instance() -> (Relation, Relation) {
        let flights = Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap();
        let hotels = Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap();
        (flights, hotels)
    }

    fn q2_goal(engine: &Engine) -> JoinPredicate {
        let u = engine.universe().clone();
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        JoinPredicate::of(u, [tc, ad])
    }

    fn fresh_engine(f: &Relation, h: &Relation) -> Engine {
        let p = Product::new(vec![f, h]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    #[test]
    fn mode4_infers_q2() {
        let (f, h) = paper_instance();
        let engine = fresh_engine(&f, &h);
        let goal = q2_goal(&engine);
        let mut oracle = GoalOracle::new(goal.clone());
        let out = run_most_informative(engine, &mut LookaheadMinPrune, &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(out
            .inferred
            .instance_equivalent(&goal, out.engine.product())
            .unwrap());
        assert_eq!(out.interactions, out.questions);
        assert!(out.interactions <= 6);
    }

    #[test]
    fn mode3_batches_until_resolved() {
        let (f, h) = paper_instance();
        let engine = fresh_engine(&f, &h);
        let goal = q2_goal(&engine);
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        let mut oracle = GoalOracle::new(goal.clone());
        let out = run_top_k(engine, 3, strategy.as_mut(), &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(out
            .inferred
            .instance_equivalent(&goal, out.engine.product())
            .unwrap());
    }

    #[test]
    fn mode1_wastes_effort_mode2_does_not() {
        let (f, h) = paper_instance();
        // Mode 1: sequential labeling of everything visible.
        let e1 = fresh_engine(&f, &h);
        let goal = q2_goal(&e1);
        let mut oracle1 = GoalOracle::new(goal.clone());
        let out1 = run_free(e1, false, &mut SequentialPicker, &mut oracle1).unwrap();
        // Mode 2: same picker, but gray-out hides uninformative tuples.
        let e2 = fresh_engine(&f, &h);
        let mut oracle2 = GoalOracle::new(goal.clone());
        let out2 = run_free(e2, true, &mut SequentialPicker, &mut oracle2).unwrap();

        assert!(out1.resolved && out2.resolved);
        assert!(
            out2.interactions <= out1.interactions,
            "gray-out should never cost more ({} vs {})",
            out2.interactions,
            out1.interactions
        );
        assert_eq!(out2.stats().wasted_interactions(), 0);
    }

    #[test]
    fn mode2_never_worse_than_mode1_random_picker() {
        let (f, h) = paper_instance();
        let goal = q2_goal(&fresh_engine(&f, &h));
        for seed in 0..5u64 {
            let out1 = run_free(
                fresh_engine(&f, &h),
                false,
                &mut RandomPicker::seeded(seed),
                &mut GoalOracle::new(goal.clone()),
            )
            .unwrap();
            let out2 = run_free(
                fresh_engine(&f, &h),
                true,
                &mut RandomPicker::seeded(seed),
                &mut GoalOracle::new(goal.clone()),
            )
            .unwrap();
            assert!(out1.resolved && out2.resolved);
            assert_eq!(out2.stats().wasted_interactions(), 0, "seed {seed}");
        }
    }

    #[test]
    fn mode4_never_worse_than_mode2() {
        let (f, h) = paper_instance();
        let goal = q2_goal(&fresh_engine(&f, &h));
        let out4 = run_most_informative(
            fresh_engine(&f, &h),
            &mut LookaheadMinPrune,
            &mut GoalOracle::new(goal.clone()),
        )
        .unwrap();
        for seed in 0..5u64 {
            let out2 = run_free(
                fresh_engine(&f, &h),
                true,
                &mut RandomPicker::seeded(seed),
                &mut GoalOracle::new(goal.clone()),
            )
            .unwrap();
            assert!(
                out4.interactions <= out2.interactions + 1,
                "strategy should be competitive (mode4 {} vs mode2 {})",
                out4.interactions,
                out2.interactions
            );
        }
    }

    #[test]
    fn sessions_work_for_every_heuristic() {
        let (f, h) = paper_instance();
        let goal = q2_goal(&fresh_engine(&f, &h));
        for kind in StrategyKind::heuristics(3) {
            let mut s = kind.build();
            let out = run_most_informative(
                fresh_engine(&f, &h),
                s.as_mut(),
                &mut GoalOracle::new(goal.clone()),
            )
            .unwrap();
            assert!(out.resolved, "{kind}");
            assert!(
                out.inferred
                    .instance_equivalent(&goal, out.engine.product())
                    .unwrap(),
                "{kind}"
            );
        }
    }

    /// A strategy whose batches repeat themselves: every proposal is the
    /// full candidate list twice over, so half of every batch (and every
    /// re-proposed id across rounds, were the engine not to prune them)
    /// must be skipped without ever reaching the oracle.
    struct RepeatingTopK;

    impl Strategy for RepeatingTopK {
        fn name(&self) -> &'static str {
            "repeating"
        }

        fn choose(
            &mut self,
            _engine: &Engine,
            candidates: &crate::engine::CandidateView<'_>,
        ) -> Option<jim_relation::ProductId> {
            candidates.candidates().first().map(|c| c.representative)
        }

        fn top_k(
            &mut self,
            _engine: &Engine,
            candidates: &crate::engine::CandidateView<'_>,
            k: usize,
        ) -> Vec<jim_relation::ProductId> {
            let once: Vec<_> = candidates
                .iter()
                .take(k)
                .map(|c| c.representative)
                .collect();
            let mut twice = once.clone();
            twice.extend(once);
            twice
        }
    }

    /// The skip is explicit: `interactions` counts oracle questions, not
    /// engine mutations, and duplicate proposals land in `skipped`.
    #[test]
    fn top_k_skips_are_accounted_not_asked() {
        let (f, h) = paper_instance();
        let engine = fresh_engine(&f, &h);
        let goal = q2_goal(&engine);
        let mut oracle = GoalOracle::new(goal.clone());
        let out = run_top_k(engine, 3, &mut RepeatingTopK, &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(out.skipped > 0, "duplicate proposals must be skipped");
        // Every question the oracle answered became exactly one engine
        // label; skipped entries cost nothing.
        assert_eq!(out.interactions, out.questions);
        assert_eq!(out.interactions, out.engine.stats().interactions());
        assert_eq!(oracle.questions_asked(), out.questions);
    }

    /// Mode 3 drives the oracle through its batch hook — a bulk-answer
    /// oracle sees whole batches, not single questions.
    #[test]
    fn top_k_asks_the_oracle_in_batches() {
        struct BatchSizes<O> {
            inner: O,
            sizes: Vec<usize>,
        }
        impl<O: Oracle> Oracle for BatchSizes<O> {
            fn label(&mut self, tuple: &jim_relation::Tuple) -> crate::label::Label {
                self.inner.label(tuple)
            }
            fn label_batch(&mut self, tuples: &[jim_relation::Tuple]) -> Vec<crate::label::Label> {
                self.sizes.push(tuples.len());
                self.inner.label_batch(tuples)
            }
            fn questions_asked(&self) -> u64 {
                self.inner.questions_asked()
            }
        }
        let (f, h) = paper_instance();
        let engine = fresh_engine(&f, &h);
        let goal = q2_goal(&engine);
        let mut oracle = BatchSizes {
            inner: GoalOracle::new(goal),
            sizes: Vec::new(),
        };
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        let out = run_top_k(engine, 3, strategy.as_mut(), &mut oracle).unwrap();
        assert!(out.resolved);
        assert!(!oracle.sizes.is_empty());
        assert!(
            oracle.sizes.iter().any(|&s| s > 1),
            "k=3 must produce at least one multi-question batch: {:?}",
            oracle.sizes
        );
        assert_eq!(oracle.sizes.iter().sum::<usize>() as u64, out.interactions);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn top_k_zero_rejected() {
        let (f, h) = paper_instance();
        let engine = fresh_engine(&f, &h);
        let goal = q2_goal(&engine);
        let mut s = StrategyKind::LocalGeneral.build();
        let mut o = GoalOracle::new(goal);
        let _ = run_top_k(engine, 0, s.as_mut(), &mut o);
    }
}
