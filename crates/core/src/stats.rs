//! Progress statistics — the paper's "basic statistics about the progress of
//! learning: the total number (and the relative percentage) of tuples that
//! have been explicitly labeled by the user or deemed as uninformative".

use crate::label::Label;
use jim_relation::ProductId;
use std::fmt;

/// One user interaction (an answered membership query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteractionRecord {
    /// The tuple that was labeled.
    pub tuple: ProductId,
    /// The label the user gave.
    pub label: Label,
    /// Whether the tuple was informative when labeled (mode-1 users may
    /// waste effort on uninformative tuples; strategies never do).
    pub informative: bool,
    /// Tuples that became certain (were grayed out) due to this label,
    /// including the labeled tuple itself. For labels applied as one
    /// batch (`Engine::label_batch`) propagation is shared and the prune
    /// count is not attributable per label: the batch's final record
    /// carries the batch total, earlier records carry 0.
    pub pruned: u64,
}

/// Cumulative progress of one inference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgressStats {
    /// Total number of candidate tuples in the instance.
    pub total_tuples: u64,
    /// Explicit positive labels given.
    pub labeled_positive: u64,
    /// Explicit negative labels given.
    pub labeled_negative: u64,
    /// Tuples currently entailed (uninformative) but not explicitly
    /// labeled — the grayed-out rows.
    pub pruned: u64,
    /// Tuples still informative.
    pub informative: u64,
    /// Interaction log, in order.
    pub log: Vec<InteractionRecord>,
}

impl ProgressStats {
    /// Total explicit labels (= number of user interactions).
    pub fn interactions(&self) -> u64 {
        self.labeled_positive + self.labeled_negative
    }

    /// Interactions that carried no information (labels on already-certain
    /// tuples) — what a strategy saves over free-form labeling.
    pub fn wasted_interactions(&self) -> u64 {
        self.log.iter().filter(|r| !r.informative).count() as u64
    }

    /// Fraction of the instance resolved (labeled or entailed), in `[0,1]`.
    pub fn resolved_fraction(&self) -> f64 {
        if self.total_tuples == 0 {
            return 1.0;
        }
        let resolved = self.labeled_positive + self.labeled_negative + self.pruned;
        resolved as f64 / self.total_tuples as f64
    }

    /// Percentage of tuples explicitly labeled.
    pub fn labeled_percent(&self) -> f64 {
        if self.total_tuples == 0 {
            return 0.0;
        }
        100.0 * self.interactions() as f64 / self.total_tuples as f64
    }

    /// Percentage of tuples deemed uninformative without labeling.
    pub fn pruned_percent(&self) -> f64 {
        if self.total_tuples == 0 {
            return 0.0;
        }
        100.0 * self.pruned as f64 / self.total_tuples as f64
    }
}

impl fmt::Display for ProgressStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interactions ({}+ / {}-), {} tuples grayed out ({:.1}%), {} informative left of {} total ({:.1}% resolved)",
            self.interactions(),
            self.labeled_positive,
            self.labeled_negative,
            self.pruned,
            self.pruned_percent(),
            self.informative,
            self.total_tuples,
            100.0 * self.resolved_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ProgressStats {
        ProgressStats {
            total_tuples: 12,
            labeled_positive: 1,
            labeled_negative: 2,
            pruned: 9,
            informative: 0,
            log: vec![
                InteractionRecord {
                    tuple: ProductId(2),
                    label: Label::Positive,
                    informative: true,
                    pruned: 3,
                },
                InteractionRecord {
                    tuple: ProductId(6),
                    label: Label::Negative,
                    informative: true,
                    pruned: 4,
                },
                InteractionRecord {
                    tuple: ProductId(7),
                    label: Label::Negative,
                    informative: false,
                    pruned: 0,
                },
            ],
        }
    }

    #[test]
    fn derived_quantities() {
        let s = stats();
        assert_eq!(s.interactions(), 3);
        assert_eq!(s.wasted_interactions(), 1);
        assert!((s.resolved_fraction() - 1.0).abs() < 1e-12);
        assert!((s.labeled_percent() - 25.0).abs() < 1e-12);
        assert!((s.pruned_percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_is_fully_resolved() {
        let s = ProgressStats::default();
        assert_eq!(s.resolved_fraction(), 1.0);
        assert_eq!(s.labeled_percent(), 0.0);
        assert_eq!(s.pruned_percent(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = stats();
        let text = s.to_string();
        assert!(text.contains("3 interactions"));
        assert!(text.contains("grayed out"));
    }
}
