//! Oracles: answerers of membership queries.
//!
//! The paper observes that "the user providing the examples in the
//! experiments from \[3\] is in fact a program that labels tuples w.r.t. a
//! goal join query" — that program is [`GoalOracle`]. [`NoisyOracle`] and
//! [`MajorityOracle`] model crowd workers (the paper's crowdsourcing
//! motivation), who answer wrongly with some probability and whose errors
//! are mitigated by redundant voting.

use crate::label::Label;
use crate::predicate::JoinPredicate;
use jim_relation::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anything that can answer a Boolean membership query about a candidate
/// (concatenated) product tuple.
pub trait Oracle {
    /// Label one tuple.
    fn label(&mut self, tuple: &Tuple) -> Label;

    /// Label a whole proposed batch — the unit of work of the top-k
    /// interaction mode, where the user answers every proposed tuple
    /// before the engine propagates anything. The default asks
    /// [`Oracle::label`] once per tuple; oracles with cheaper bulk access
    /// (a crowd front end shipping one HIT carrying k questions, a UI
    /// form submitted whole) can override it. Must return exactly one
    /// label per input tuple, in order.
    fn label_batch(&mut self, tuples: &[Tuple]) -> Vec<Label> {
        tuples.iter().map(|t| self.label(t)).collect()
    }

    /// How many elementary questions the previous answers cost in total
    /// (a plain oracle costs one per answer; a majority-vote oracle costs
    /// `votes` per answer). Used by the crowd cost model.
    fn questions_asked(&self) -> u64;
}

/// The paper's simulated user: labels truthfully w.r.t. a goal query.
#[derive(Debug, Clone)]
pub struct GoalOracle {
    goal: JoinPredicate,
    asked: u64,
}

impl GoalOracle {
    /// An oracle that has `goal` "in mind".
    pub fn new(goal: JoinPredicate) -> Self {
        GoalOracle { goal, asked: 0 }
    }

    /// The goal query.
    pub fn goal(&self) -> &JoinPredicate {
        &self.goal
    }
}

impl Oracle for GoalOracle {
    fn label(&mut self, tuple: &Tuple) -> Label {
        self.asked += 1;
        Label::from_bool(self.goal.selects(tuple))
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

/// A crowd worker: truthful with probability `1 − error_rate`, flipped
/// otherwise.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    goal: JoinPredicate,
    error_rate: f64,
    rng: StdRng,
    asked: u64,
}

impl NoisyOracle {
    /// A worker with the given per-answer error probability.
    pub fn new(goal: JoinPredicate, error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate must be a probability"
        );
        NoisyOracle {
            goal,
            error_rate,
            rng: StdRng::seed_from_u64(seed),
            asked: 0,
        }
    }
}

impl Oracle for NoisyOracle {
    fn label(&mut self, tuple: &Tuple) -> Label {
        self.asked += 1;
        let truth = Label::from_bool(self.goal.selects(tuple));
        if self.rng.gen_bool(self.error_rate) {
            truth.flip()
        } else {
            truth
        }
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

/// Crowd redundancy: ask `votes` independent noisy workers, return the
/// majority answer. With odd `votes` and error rate `ε < ½`, the effective
/// error rate drops exponentially in `votes` — the standard quality/cost
/// trade-off of crowdsourced joins.
#[derive(Debug, Clone)]
pub struct MajorityOracle {
    worker: NoisyOracle,
    votes: u32,
    answers: u64,
}

impl MajorityOracle {
    /// Majority over `votes` answers (must be odd so ties are impossible).
    pub fn new(goal: JoinPredicate, error_rate: f64, votes: u32, seed: u64) -> Self {
        assert!(votes % 2 == 1, "vote count must be odd");
        MajorityOracle {
            worker: NoisyOracle::new(goal, error_rate, seed),
            votes,
            answers: 0,
        }
    }

    /// The vote count per question.
    pub fn votes(&self) -> u32 {
        self.votes
    }
}

impl Oracle for MajorityOracle {
    fn label(&mut self, tuple: &Tuple) -> Label {
        self.answers += 1;
        let mut positive = 0u32;
        for _ in 0..self.votes {
            if self.worker.label(tuple).is_positive() {
                positive += 1;
            }
        }
        Label::from_bool(positive * 2 > self.votes)
    }

    fn questions_asked(&self) -> u64 {
        self.worker.questions_asked()
    }
}

/// Adapter for closures (handy in tests and interactive UIs).
pub struct FnOracle<F: FnMut(&Tuple) -> Label> {
    f: F,
    asked: u64,
}

impl<F: FnMut(&Tuple) -> Label> FnOracle<F> {
    /// Wrap a closure as an oracle.
    pub fn new(f: F) -> Self {
        FnOracle { f, asked: 0 }
    }
}

impl<F: FnMut(&Tuple) -> Label> Oracle for FnOracle<F> {
    fn label(&mut self, tuple: &Tuple) -> Label {
        self.asked += 1;
        (self.f)(tuple)
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::AtomUniverse;
    use jim_relation::{tup, DataType, JoinSchema, RelationSchema};

    fn goal() -> JoinPredicate {
        let js = JoinSchema::new(vec![
            RelationSchema::of("a", &[("x", DataType::Int)]).unwrap(),
            RelationSchema::of("b", &[("y", DataType::Int)]).unwrap(),
        ])
        .unwrap();
        let u = AtomUniverse::cross_relation(js).unwrap();
        let id = u.id_by_names((0, "x"), (1, "y")).unwrap();
        JoinPredicate::of(u, [id])
    }

    fn sel() -> Tuple {
        tup![1, 1]
    }

    fn unsel() -> Tuple {
        tup![1, 2]
    }

    #[test]
    fn goal_oracle_is_truthful() {
        let mut o = GoalOracle::new(goal());
        assert_eq!(o.label(&sel()), Label::Positive);
        assert_eq!(o.label(&unsel()), Label::Negative);
        assert_eq!(o.questions_asked(), 2);
        assert_eq!(o.goal(), &goal());
    }

    #[test]
    fn zero_noise_oracle_is_truthful() {
        let mut o = NoisyOracle::new(goal(), 0.0, 42);
        for _ in 0..20 {
            assert_eq!(o.label(&sel()), Label::Positive);
        }
    }

    #[test]
    fn full_noise_oracle_always_flips() {
        let mut o = NoisyOracle::new(goal(), 1.0, 42);
        for _ in 0..20 {
            assert_eq!(o.label(&sel()), Label::Negative);
        }
    }

    #[test]
    fn noise_rate_is_approximately_respected() {
        let mut o = NoisyOracle::new(goal(), 0.3, 7);
        let flips = (0..2000)
            .filter(|_| o.label(&sel()) == Label::Negative)
            .count();
        let rate = flips as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed {rate}");
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let mut single = NoisyOracle::new(goal(), 0.2, 1);
        let mut majority = MajorityOracle::new(goal(), 0.2, 5, 1);
        let n = 500;
        let single_errors = (0..n)
            .filter(|_| single.label(&sel()) != Label::Positive)
            .count();
        let majority_errors = (0..n)
            .filter(|_| majority.label(&sel()) != Label::Positive)
            .count();
        assert!(
            majority_errors * 2 < single_errors,
            "majority {majority_errors} vs single {single_errors}"
        );
        // Cost accounting: 5 questions per answer.
        assert_eq!(majority.questions_asked(), 5 * n as u64);
        assert_eq!(majority.votes(), 5);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_votes_rejected() {
        MajorityOracle::new(goal(), 0.1, 4, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_error_rate_rejected() {
        NoisyOracle::new(goal(), 1.5, 0);
    }

    #[test]
    fn label_batch_defaults_to_per_tuple_answers() {
        let mut o = GoalOracle::new(goal());
        let answers = o.label_batch(&[sel(), unsel(), sel()]);
        assert_eq!(
            answers,
            vec![Label::Positive, Label::Negative, Label::Positive]
        );
        assert_eq!(o.questions_asked(), 3);
        // The majority oracle's cost accounting flows through the default
        // batch hook too: `votes` questions per batch entry.
        let mut m = MajorityOracle::new(goal(), 0.1, 3, 9);
        assert_eq!(m.label_batch(&[sel(), unsel()]).len(), 2);
        assert_eq!(m.questions_asked(), 6);
    }

    #[test]
    fn fn_oracle_adapts_closures() {
        let mut o = FnOracle::new(|t: &Tuple| Label::from_bool(t[0] == t[1]));
        assert_eq!(o.label(&sel()), Label::Positive);
        assert_eq!(o.label(&unsel()), Label::Negative);
        assert_eq!(o.questions_asked(), 2);
    }
}
