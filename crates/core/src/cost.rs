//! Crowdsourcing cost accounting.
//!
//! The paper's §1: "minimizing the number of interactions entails lower
//! financial costs" for crowdsourced joins. This module prices a session's
//! question volume so experiment E7 can express strategy differences in
//! money instead of counts.

use std::fmt;

/// A simple crowd pricing model: a flat price per elementary question
/// (each vote of a majority-vote scheme is one question).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Price of one question, in hundredths of a cent (micro-pricing is
    /// common on crowd platforms; 100 = 1¢).
    pub price_per_question_centicents: u64,
}

impl CostModel {
    /// A model priced in whole cents per question.
    pub fn cents_per_question(cents: u64) -> Self {
        CostModel {
            price_per_question_centicents: cents * 100,
        }
    }

    /// Total cost of `questions` elementary questions.
    pub fn cost(&self, questions: u64) -> Cost {
        Cost {
            centicents: questions * self.price_per_question_centicents,
        }
    }
}

impl Default for CostModel {
    /// The commonly cited micro-task price point: 1¢ per question.
    fn default() -> Self {
        CostModel::cents_per_question(1)
    }
}

/// A monetary amount (exact, in hundredths of a cent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Cost {
    centicents: u64,
}

impl Cost {
    /// The amount in dollars (lossy, for display and plotting).
    pub fn dollars(&self) -> f64 {
        self.centicents as f64 / 10_000.0
    }

    /// The exact amount in hundredths of a cent.
    pub fn centicents(&self) -> u64 {
        self.centicents
    }

    /// Saturating difference (how much one strategy saves over another).
    pub fn saving_over(&self, more_expensive: &Cost) -> Cost {
        Cost {
            centicents: more_expensive.centicents.saturating_sub(self.centicents),
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            centicents: self.centicents + rhs.centicents,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}", self.dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing() {
        let m = CostModel::cents_per_question(2);
        let c = m.cost(50);
        assert_eq!(c.dollars(), 1.0);
        assert_eq!(c.centicents(), 10_000);
        assert_eq!(c.to_string(), "$1.0000");
    }

    #[test]
    fn default_is_one_cent() {
        let c = CostModel::default().cost(100);
        assert_eq!(c.dollars(), 1.0);
    }

    #[test]
    fn savings_and_addition() {
        let m = CostModel::default();
        let cheap = m.cost(10);
        let pricey = m.cost(60);
        assert_eq!(cheap.saving_over(&pricey).dollars(), 0.5);
        assert_eq!(pricey.saving_over(&cheap).dollars(), 0.0); // saturates
        assert_eq!((cheap + pricey).dollars(), 0.7);
    }
}
