//! Join predicates: atom sets with semantics, display, execution and
//! containment/equivalence reasoning.

use crate::atoms::{AtomId, AtomUniverse};
use crate::bitset::AtomSet;
use crate::error::Result;
use jim_relation::{sql, Product, ProductId, Relation, Tuple};
use std::fmt;
use std::sync::Arc;

/// An equi-join predicate: a set of atoms over a shared [`AtomUniverse`].
///
/// Semantics: the predicate *selects* a product tuple `t` iff every one of
/// its atoms holds in `t` — equivalently, iff `atoms ⊆ Θ(t)`.
#[derive(Clone)]
pub struct JoinPredicate {
    universe: Arc<AtomUniverse>,
    atoms: AtomSet,
}

impl JoinPredicate {
    /// Build from an atom set (must come from `universe`).
    pub fn new(universe: Arc<AtomUniverse>, atoms: AtomSet) -> Self {
        assert_eq!(
            atoms.capacity(),
            universe.len(),
            "atom set does not belong to this universe"
        );
        JoinPredicate { universe, atoms }
    }

    /// The always-true predicate (selects the whole product).
    pub fn always(universe: Arc<AtomUniverse>) -> Self {
        let atoms = universe.empty_set();
        JoinPredicate { universe, atoms }
    }

    /// Build from atom ids.
    pub fn of(universe: Arc<AtomUniverse>, ids: impl IntoIterator<Item = AtomId>) -> Self {
        let atoms = universe.set_of(ids);
        JoinPredicate { universe, atoms }
    }

    /// The shared universe.
    pub fn universe(&self) -> &Arc<AtomUniverse> {
        &self.universe
    }

    /// The atom set.
    pub fn atoms(&self) -> &AtomSet {
        &self.atoms
    }

    /// Number of atoms (the paper's measure of query complexity).
    pub fn arity(&self) -> usize {
        self.atoms.len()
    }

    /// Does this predicate select the concatenated tuple `t`?
    pub fn selects(&self, t: &Tuple) -> bool {
        self.atoms.is_subset(&self.universe.signature(t))
    }

    /// Does this predicate select a tuple with signature `sig`?
    pub fn selects_sig(&self, sig: &AtomSet) -> bool {
        self.atoms.is_subset(sig)
    }

    /// Evaluate on a product (hash join), returning selected tuple ids.
    pub fn eval(&self, product: &Product) -> Result<Vec<ProductId>> {
        Ok(self.universe.to_spec(&self.atoms).eval_hash(product)?)
    }

    /// Materialize the selected tuples as a relation.
    pub fn materialize(&self, product: &Product, name: &str) -> Result<Relation> {
        let spec = self.universe.to_spec(&self.atoms);
        let ids = spec.eval_hash(product)?;
        Ok(spec.materialize(product, &ids, name)?)
    }

    /// **Result containment** (on every instance): `self ⊑ other` iff every
    /// tuple selected by `self` is selected by `other`, which for equi-join
    /// predicates holds iff `other`'s atoms are a subset of `self`'s
    /// (more atoms = more constrained = fewer results). The paper uses this
    /// to argue negatives are necessary: `Q2 ⊑ Q1`.
    pub fn contained_in(&self, other: &JoinPredicate) -> bool {
        other.atoms.is_subset(&self.atoms)
    }

    /// **Instance equivalence** (the paper's termination criterion): do the
    /// two predicates select exactly the same tuples of this product?
    pub fn instance_equivalent(&self, other: &JoinPredicate, product: &Product) -> Result<bool> {
        Ok(self.eval(product)? == other.eval(product)?)
    }

    /// Render as SQL over the universe's schema.
    pub fn to_sql(&self) -> String {
        sql::to_select(self.universe.schema(), &self.universe.to_spec(&self.atoms))
            .expect("atoms come from the schema")
    }

    /// Render as a GAV mapping rule with the given target name.
    pub fn to_gav(&self, target: &str) -> String {
        sql::to_gav_rule(
            self.universe.schema(),
            &self.universe.to_spec(&self.atoms),
            target,
        )
        .expect("atoms come from the schema")
    }
}

impl PartialEq for JoinPredicate {
    fn eq(&self, other: &Self) -> bool {
        self.atoms == other.atoms
    }
}

impl Eq for JoinPredicate {}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.universe.set_name(&self.atoms))
    }
}

impl fmt::Debug for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinPredicate({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_relation::{tup, DataType, JoinSchema, RelationSchema};

    fn universe() -> Arc<AtomUniverse> {
        let js = JoinSchema::new(vec![
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
        ])
        .unwrap();
        AtomUniverse::cross_relation(js).unwrap()
    }

    fn flights_rel() -> Relation {
        Relation::new(
            RelationSchema::of(
                "flights",
                &[
                    ("From", DataType::Text),
                    ("To", DataType::Text),
                    ("Airline", DataType::Text),
                ],
            )
            .unwrap(),
            vec![
                tup!["Paris", "Lille", "AF"],
                tup!["Lille", "NYC", "AA"],
                tup!["NYC", "Paris", "AA"],
                tup!["Paris", "NYC", "AF"],
            ],
        )
        .unwrap()
    }

    fn hotels_rel() -> Relation {
        Relation::new(
            RelationSchema::of(
                "hotels",
                &[("City", DataType::Text), ("Discount", DataType::Text)],
            )
            .unwrap(),
            vec![
                tup!["NYC", "AA"],
                tup!["Paris", "None"],
                tup!["Lille", "AF"],
            ],
        )
        .unwrap()
    }

    fn q1(u: &Arc<AtomUniverse>) -> JoinPredicate {
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        JoinPredicate::of(u.clone(), [tc])
    }

    fn q2(u: &Arc<AtomUniverse>) -> JoinPredicate {
        let tc = u.id_by_names((0, "To"), (1, "City")).unwrap();
        let ad = u.id_by_names((0, "Airline"), (1, "Discount")).unwrap();
        JoinPredicate::of(u.clone(), [tc, ad])
    }

    #[test]
    fn selects_by_signature_subset() {
        let u = universe();
        let t3 = tup!["Paris", "Lille", "AF", "Lille", "AF"];
        let t8 = tup!["NYC", "Paris", "AA", "Paris", "None"];
        assert!(q1(&u).selects(&t3));
        assert!(q2(&u).selects(&t3));
        assert!(q1(&u).selects(&t8));
        assert!(!q2(&u).selects(&t8)); // the paper's distinguishing tuple
    }

    #[test]
    fn always_selects_everything() {
        let u = universe();
        let p = JoinPredicate::always(u);
        assert!(p.selects(&tup!["a", "b", "c", "d", "e"]));
        assert_eq!(p.arity(), 0);
    }

    #[test]
    fn q2_contained_in_q1() {
        let u = universe();
        assert!(q2(&u).contained_in(&q1(&u)));
        assert!(!q1(&u).contained_in(&q2(&u)));
        assert!(q1(&u).contained_in(&q1(&u)));
    }

    #[test]
    fn eval_against_paper_instance() {
        let u = universe();
        let f = flights_rel();
        let h = hotels_rel();
        let p = Product::new(vec![&f, &h]).unwrap();
        let ids1 = q1(&u).eval(&p).unwrap();
        let ids2 = q2(&u).eval(&p).unwrap();
        assert_eq!(
            ids1.iter().map(|i| i.0).collect::<Vec<_>>(),
            vec![2, 3, 7, 9]
        );
        assert_eq!(ids2.iter().map(|i| i.0).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn instance_equivalence_detects_difference() {
        let u = universe();
        let f = flights_rel();
        let h = hotels_rel();
        let p = Product::new(vec![&f, &h]).unwrap();
        assert!(!q1(&u).instance_equivalent(&q2(&u), &p).unwrap());
        assert!(q1(&u).instance_equivalent(&q1(&u), &p).unwrap());
    }

    #[test]
    fn sql_and_gav_rendering() {
        let u = universe();
        let sql = q2(&u).to_sql();
        assert!(sql.contains("r1.To = r2.City"));
        assert!(sql.contains("r1.Airline = r2.Discount"));
        let gav = q1(&u).to_gav("Package");
        assert!(gav.starts_with("Package("));
        assert!(gav.contains(":- flights("));
    }

    #[test]
    fn equality_ignores_universe_pointer() {
        let u = universe();
        assert_eq!(q1(&u), q1(&u));
        assert_ne!(q1(&u), q2(&u));
    }

    #[test]
    fn materialize_selected_rows() {
        let u = universe();
        let f = flights_rel();
        let h = hotels_rel();
        let p = Product::new(vec![&f, &h]).unwrap();
        let rel = q2(&u).materialize(&p, "packages").unwrap();
        assert_eq!(rel.len(), 2);
    }
}
