//! User labels: the answers to JIM's Boolean membership queries.

use std::fmt;

/// The answer a user gives about one candidate tuple — the paper's `+` / `−`
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The tuple belongs to the desired join result.
    Positive,
    /// The tuple does not belong to the desired join result.
    Negative,
}

impl Label {
    /// True iff positive.
    pub fn is_positive(self) -> bool {
        self == Label::Positive
    }

    /// The opposite label.
    pub fn flip(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }

    /// Build from a boolean (`true` = positive).
    pub fn from_bool(b: bool) -> Label {
        if b {
            Label::Positive
        } else {
            Label::Negative
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Label::Positive => "+",
            Label::Negative => "-",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_and_bool() {
        assert_eq!(Label::Positive.flip(), Label::Negative);
        assert_eq!(Label::Negative.flip(), Label::Positive);
        assert_eq!(Label::from_bool(true), Label::Positive);
        assert!(Label::Positive.is_positive());
        assert!(!Label::Negative.is_positive());
    }

    #[test]
    fn display() {
        assert_eq!(Label::Positive.to_string(), "+");
        assert_eq!(Label::Negative.to_string(), "-");
    }
}
