//! Factorized construction is observationally equivalent to enumeration.
//!
//! [`Engine::from_factorized`] computes the signature-group partition from
//! the base relations without materializing the product; these properties
//! pin it against [`Engine::new`] on random small instances: identical
//! candidates, identical [`ProgressStats`], and an identical question
//! sequence under every strategy — plus the edge cases (empty relation,
//! all-rows-one-block, self-join with duplicate rows).

#![forbid(unsafe_code)]

use jim_core::strategy::choose_next;
use jim_core::{AtomScope, Engine, EngineOptions, InferenceError, Label, StrategyKind};
use jim_relation::{DataType, Product, Relation, RelationSchema, Tuple, Value};
use proptest::prelude::*;

fn relation(name: &str, arity: usize, rows: &[Vec<i64>]) -> Relation {
    let cols: Vec<(String, DataType)> = (0..arity)
        .map(|i| (format!("c{i}"), DataType::Int))
        .collect();
    let refs: Vec<(&str, DataType)> = cols.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    let schema = RelationSchema::of(name, &refs).unwrap();
    let tuples = rows
        .iter()
        .map(|r| Tuple::new(r.iter().map(|&v| Value::Int(v)).collect()))
        .collect();
    Relation::new(schema, tuples).unwrap()
}

/// Build both engines over the same relations; `None` when the instance is
/// degenerate for that scope (both constructions must agree on that too).
fn both(rels: &[&Relation], scope: AtomScope) -> Option<(Engine, Engine)> {
    let opts = EngineOptions {
        scope,
        ..Default::default()
    };
    let fe = Engine::from_factorized(Product::new(rels.to_vec()).unwrap(), &opts);
    let ee = Engine::new(Product::new(rels.to_vec()).unwrap(), &opts);
    match (fe, ee) {
        (Ok(fe), Ok(ee)) => Some((fe, ee)),
        (Err(InferenceError::EmptyUniverse), Err(InferenceError::EmptyUniverse)) => None,
        (fe, ee) => panic!("construction modes disagree: {fe:?} vs {ee:?}"),
    }
}

/// The construction-time invariants: same stats, same candidate index.
fn assert_same_state(fe: &Engine, ee: &Engine, context: &str) {
    assert_eq!(fe.stats(), ee.stats(), "{context}: stats");
    assert_eq!(fe.num_groups(), ee.num_groups(), "{context}: group count");
    assert_eq!(
        fe.candidates().candidates(),
        ee.candidates().candidates(),
        "{context}: candidates"
    );
    assert_eq!(fe.is_resolved(), ee.is_resolved(), "{context}: resolved");
}

/// Drive one full session under `kind` on clones of both engines, asserting
/// the question sequence and the post-label state match step by step.
/// Labels are an arbitrary deterministic function of the asked id — any
/// label of an informative tuple is consistent.
fn assert_same_session(fe: &Engine, ee: &Engine, kind: StrategyKind) {
    let (mut fe, mut ee) = (fe.clone(), ee.clone());
    let mut fs = kind.build();
    let mut es = kind.build();
    let mut steps = 0usize;
    loop {
        let fq = choose_next(fs.as_mut(), &fe);
        let eq = choose_next(es.as_mut(), &ee);
        assert_eq!(fq, eq, "question {steps} under {kind}");
        let Some(id) = fq else { break };
        let label = Label::from_bool(id.0 % 3 != 0);
        let fo = fe.label(id, label).unwrap();
        let eo = ee.label(id, label).unwrap();
        assert_eq!(fo, eo, "label outcome {steps} under {kind}");
        assert_same_state(&fe, &ee, &format!("after step {steps} under {kind}"));
        steps += 1;
        assert!(steps <= 1000, "session under {kind} did not terminate");
    }
    assert!(fe.is_resolved() && ee.is_resolved());
    assert_eq!(fe.result(), ee.result(), "inferred predicate under {kind}");
}

fn rows_strategy(max_rows: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::vec(proptest::collection::vec(0i64..4, 2), 0..max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random binary instances: identical state at construction and an
    /// identical question sequence under every strategy, in both scopes.
    #[test]
    fn random_instances_match_under_every_strategy(
        rows_a in rows_strategy(6),
        rows_b in rows_strategy(6),
    ) {
        let a = relation("a", 2, &rows_a);
        let b = relation("b", 2, &rows_b);
        for scope in [AtomScope::CrossRelation, AtomScope::AllPairs] {
            let Some((fe, ee)) = both(&[&a, &b], scope) else { continue };
            assert_same_state(&fe, &ee, &format!("{scope:?} construction"));
            for kind in StrategyKind::extended(11) {
                assert_same_session(&fe, &ee, kind);
            }
        }
    }

    /// Ternary instances exercise the dense mixed-radix sweep.
    #[test]
    fn ternary_instances_match(
        rows_a in rows_strategy(4),
        rows_b in rows_strategy(4),
        rows_c in rows_strategy(4),
    ) {
        let a = relation("a", 2, &rows_a);
        let b = relation("b", 2, &rows_b);
        let c = relation("c", 2, &rows_c);
        let Some((fe, ee)) = both(&[&a, &b, &c], AtomScope::CrossRelation) else { return Ok(()) };
        assert_same_state(&fe, &ee, "ternary construction");
        assert_same_session(&fe, &ee, StrategyKind::LookaheadMinPrune);
        assert_same_session(&fe, &ee, StrategyKind::LocalGeneral);
    }

    /// Self-joins (the same relation twice, duplicate rows allowed) share
    /// the occurrence structure the sparse sweep's classes rely on.
    #[test]
    fn self_joins_with_duplicates_match(rows in rows_strategy(5)) {
        let mut doubled = rows.clone();
        doubled.extend(rows.iter().cloned());
        let r = relation("r", 2, &doubled);
        let Some((fe, ee)) = both(&[&r, &r], AtomScope::CrossRelation) else { return Ok(()) };
        assert_same_state(&fe, &ee, "self-join construction");
        for kind in StrategyKind::heuristics(5) {
            assert_same_session(&fe, &ee, kind);
        }
    }
}

#[test]
fn empty_relation_matches() {
    let a = relation("a", 2, &[vec![1, 2], vec![3, 3]]);
    let b = relation("b", 2, &[]);
    let (fe, ee) = both(&[&a, &b], AtomScope::CrossRelation).unwrap();
    assert_same_state(&fe, &ee, "empty relation");
    assert!(fe.is_resolved(), "empty product resolves immediately");
    assert_eq!(fe.stats().total_tuples, 0);
}

#[test]
fn all_rows_one_block_matches() {
    // Values never overlap across relations: every cross pair fails, the
    // whole product is a single empty-signature group.
    let a = relation("a", 2, &[vec![1, 2], vec![3, 4], vec![5, 6]]);
    let b = relation("b", 2, &[vec![10, 11], vec![12, 13]]);
    let (fe, ee) = both(&[&a, &b], AtomScope::CrossRelation).unwrap();
    assert_same_state(&fe, &ee, "one block");
    assert_eq!(fe.num_groups(), 1);
    assert_eq!(fe.candidates().candidates()[0].count, 6);
    for kind in StrategyKind::heuristics(3) {
        assert_same_session(&fe, &ee, kind);
    }
}

#[test]
fn paper_instance_matches_under_optimal_planner() {
    let a = relation("a", 2, &[vec![1, 2], vec![2, 3], vec![3, 1]]);
    let b = relation("b", 2, &[vec![2, 2], vec![3, 0]]);
    let (fe, ee) = both(&[&a, &b], AtomScope::CrossRelation).unwrap();
    assert_same_state(&fe, &ee, "optimal planner instance");
    assert_same_session(&fe, &ee, StrategyKind::Optimal);
}
