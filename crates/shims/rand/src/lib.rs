//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched; this shim keeps call sites source-compatible. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the real `StdRng` (ChaCha12),
//! so seeded sequences differ from upstream `rand`, but every consumer in
//! this workspace only relies on determinism-per-seed and rough uniformity.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive integer range).
    ///
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be a probability, got {p}"
        );
        // 53 random mantissa bits in [0, 1); strictly below 1.0, so p = 1.0
        // always fires and p = 0.0 never does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (shim; upstream
    /// `StdRng` is ChaCha12).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7).gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5u64..5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixed point with ~1/50! chance"
        );
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
