//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. This shim keeps `tests/proptests.rs` source-compatible: the
//! [`proptest!`] macro runs each property over `cases` deterministic random
//! inputs (seeded from the test name, so failures reproduce run-to-run).
//! There is **no shrinking** — a failing case panics with the plain
//! `assert!` message of [`prop_assert!`] / [`prop_assert_eq!`].

#![forbid(unsafe_code)]

pub mod strategy;

/// Runner configuration and case-level control flow.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields we need).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    /// The name the prelude exports it under.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A case rejected by [`prop_assume!`](crate::prop_assume); the runner
    /// draws a fresh input instead of failing.
    #[derive(Debug, Clone)]
    pub struct Reject;

    /// Deterministic per-test RNG: FNV-1a over the test name, mixed with the
    /// case index by the generator itself as cases draw values in sequence.
    pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        rand::rngs::StdRng::seed_from_u64(h)
    }
}

/// Value generators ("strategies").
pub mod collection {
    use crate::strategy::Strategy;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`]: a fixed length or a range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a property; failure aborts the whole run (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property; failure aborts the run.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Reject the current case (draw a fresh input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // Allow up to 20x rejections (prop_assume) before giving up,
            // like the real runner's rejection budget.
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "too many prop_assume rejections in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                // The closure gives `prop_assume!` a scope to `return` from.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3i64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vectors_and_maps(v in crate::collection::vec(0i64..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments on properties must parse.
        #[test]
        fn flat_map_composes(v in (1usize..=3, 2usize..=4).prop_flat_map(|(a, b)| {
            crate::collection::vec(0i64..(a as i64 + b as i64), a + b)
        })) {
            prop_assert!(v.len() >= 3 && v.len() <= 7);
        }

        #[test]
        fn any_bool_and_u64(b in any::<bool>(), x in any::<u64>()) {
            prop_assert_eq!(b as u64 <= 1, true);
            let _ = x;
        }

        #[test]
        fn map_transforms(s in (0i64..10).prop_map(|x| x.to_string())) {
            prop_assert!(s.parse::<i64>().unwrap() < 10);
        }
    }
}
