//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer ranges, `any::<T>()`, tuples, `prop_map`, `prop_flat_map`.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values (mirror of `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-domain strategy (mirror of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draw from the full domain of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_range(0u64..=1) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `proptest::prelude::any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
