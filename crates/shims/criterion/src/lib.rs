//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. The build container has no crates.io access, so the real
//! harness cannot be fetched; this shim keeps the bench sources compiling
//! and running under `cargo bench`, reporting a simple mean ns/iteration
//! (no statistical analysis, no HTML reports).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Prevent the optimizer from discarding a value (re-export shape of
/// `criterion::black_box`; the benches mostly use `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for throughput display.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Drives the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement (criterion's statistical sample count is
    /// reinterpreted as a plain iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Record the per-iteration workload size.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Measure one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Measure a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        self.run_one(&id, 10, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        iterations: u64,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            iterations,
            elapsed_ns: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed_ns / u128::from(iterations.max(1));
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / per_iter as f64)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 * 1e9 / (per_iter as f64 * 1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("bench {id}: {per_iter} ns/iter over {iterations} iters{rate}");
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
