//! Kernel-level bench for `jim-simd`: every backend available on this
//! host, at the two widths the acceptance bar names — 256-atom (4-word)
//! and 1024-atom (16-word) universes — across the three kernels the
//! engine's hot paths dispatch: `popcount`, the pairwise subset test,
//! and the batched `subsumed_mask` antichain sweep.
//!
//! Unlike the other benches this one needs the measured numbers (to
//! compute backend speedups and emit `BENCH_simd.json`), which the
//! offline criterion shim does not expose — so it carries its own
//! `Instant`-based harness and prints the same `bench …: … ns/iter`
//! lines the shim does. Output lands in `BENCH_simd.json` at the
//! workspace root (override with `--out <path>`; `--no-write` skips).

#![forbid(unsafe_code)]

use jim_simd::Backend;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::time::Instant;

/// The strict one-word-at-a-time baseline the speedup figures compare
/// against. The shipped `off` backend is plain Rust too, but LLVM
/// autovectorizes its loops to SSE2 (4 words per step, early exit and
/// all) — so `off` is *not* a scalar measurement. Each word here passes
/// through `black_box`, pinning the loops to genuine scalar code.
mod scalar_ref {
    use std::hint::black_box;

    pub fn popcount(a: &[u64]) -> u64 {
        let mut acc = 0u64;
        for &w in a {
            acc += black_box(w).count_ones() as u64;
        }
        acc
    }

    fn subset(a: &[u64], b: &[u64]) -> bool {
        for (&x, &y) in a.iter().zip(b.iter()) {
            if black_box(x) & !y != 0 {
                return false;
            }
        }
        true
    }

    pub fn subset_pair(a: &[u64], b: &[u64]) -> bool {
        subset(a, b)
    }

    pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
        out.clear();
        if width == 0 {
            return;
        }
        // Same division hoist and single-negative specialization as the
        // shipped kernels, so the baseline differs only in
        // word-at-a-time vs vector scanning.
        let nnegs = negs.len() / width;
        if nnegs == 1 {
            let neg = &negs[..width];
            out.extend(rows.chunks_exact(width).map(|row| subset(row, neg)));
            return;
        }
        out.extend(
            rows.chunks_exact(width)
                .map(|row| (0..nnegs).any(|j| subset(row, &negs[j * width..j * width + width]))),
        );
    }
}

/// One measured sample: minimum over `REPEATS` timed runs of `iters`
/// calls each — minimum, not mean, because on a busy single-core host
/// the interesting number is the undisturbed kernel cost.
const REPEATS: usize = 5;

fn measure<O, F: FnMut() -> O>(iters: u64, mut f: F) -> f64 {
    std::hint::black_box(f()); // warm-up (and first-dispatch resolution)
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

/// Random words with roughly half the bits set — the dense mid-session
/// signature shape, where popcount has real work per word.
fn random_words(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

/// A row-major pack of `rows` random sets, each `width` words, where the
/// sweep finds few subsumptions (sparse hits — the common case: most
/// candidates survive a fresh negative).
fn random_pack(rng: &mut StdRng, rows: usize, width: usize) -> Vec<u64> {
    random_words(rng, rows * width)
}

struct Sample {
    kernel: &'static str,
    bits: usize,
    backend: &'static str,
    ns_per_iter: f64,
    /// Work items per iteration (pairs for subset, rows×negs for the
    /// sweep, words for popcount) — for like-for-like rate comparison.
    items: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_write = args.iter().any(|a| a == "--no-write");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_simd.json", env!("CARGO_MANIFEST_DIR")));
    // `cargo bench` passes harness flags like `--bench`; ignore them.

    let backends: Vec<Backend> = Backend::ALL.into_iter().filter(|b| b.available()).collect();
    eprintln!(
        "simd bench: backends {:?}, active {}",
        backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
        jim_simd::active_name()
    );

    let mut rng = StdRng::seed_from_u64(42);
    let mut samples: Vec<Sample> = Vec::new();

    for &bits in &[256usize, 1024] {
        let width = bits / 64;
        // Popcount input: a packed arena of 256 sets, counted in ONE
        // kernel call per iteration — the packed-rows layout the engine's
        // batch sweeps iterate, where the backend dispatch is paid once,
        // not per set.
        const SETS: usize = 256;
        let arena = random_pack(&mut rng, SETS, width);
        // Subsumption sweep: a candidate block against the FRESH negatives
        // of one label batch — the exact shape of
        // `drop_subsumed_candidates`, which sweeps against the negatives
        // the batch just added (not the whole antichain). The most common
        // batch adds exactly one negative, so NEGS = 1 here. A session's
        // signatures are highly correlated (they all live inside `U` and
        // share atoms), so the tests scan deep into the words: half the
        // rows are genuine subsets of the fresh negative (subsumed —
        // full-width scan), half differ from it by a single stray atom at
        // a random position (barely-surviving candidates — scan until the
        // stray word).
        const ROWS: usize = 512;
        const NEGS: usize = 1;
        let negs: Vec<u64> = {
            // Dense antichain entries: union of two random patterns.
            let x = random_pack(&mut rng, NEGS, width);
            let y = random_pack(&mut rng, NEGS, width);
            x.iter().zip(y.iter()).map(|(&a, &b)| a | b).collect()
        };
        let rows: Vec<u64> = {
            let m = random_pack(&mut rng, ROWS, width);
            let mut rows = Vec::with_capacity(ROWS * width);
            for i in 0..ROWS {
                let parent = &negs[..width];
                let mask = &m[i * width..(i + 1) * width];
                let mut row: Vec<u64> = parent
                    .iter()
                    .zip(mask.iter())
                    .map(|(&n, &k)| n & k)
                    .collect();
                if i % 2 == 1 {
                    // One stray atom the parent lacks, at a random
                    // position: the subset test fails, but only at the
                    // word holding the stray.
                    for _ in 0..256 {
                        let p = (rng.next_u64() as usize) % bits;
                        if parent[p / 64] >> (p % 64) & 1 == 0 {
                            row[p / 64] |= 1 << (p % 64);
                            break;
                        }
                    }
                }
                rows.extend_from_slice(&row);
            }
            rows
        };
        let mut mask = Vec::with_capacity(ROWS);

        // Pairwise subset over the same strided arenas (per-pair calls
        // through the dispatch layer — the `AtomSet::is_subset` shape),
        // reported for completeness; the batch kernels above are the
        // headline.
        let arena_b = random_pack(&mut rng, SETS, width);

        // The scalar baseline row, measured on the exact same inputs.
        let ns = measure(2_000, || scalar_ref::popcount(&arena));
        println!("bench simd/popcount/{bits}b/scalar: {ns:.0} ns/iter ({SETS} packed sets)");
        samples.push(Sample {
            kernel: "popcount",
            bits,
            backend: "scalar",
            ns_per_iter: ns,
            items: SETS as u64,
        });
        let ns = measure(500, || {
            scalar_ref::subsumed_mask(&rows, &negs, width, &mut mask);
            mask.len()
        });
        println!("bench simd/subsumed_mask/{bits}b/scalar: {ns:.0} ns/iter ({ROWS}x{NEGS} sweep)");
        samples.push(Sample {
            kernel: "subsumed_mask",
            bits,
            backend: "scalar",
            ns_per_iter: ns,
            items: (ROWS * NEGS) as u64,
        });
        let ns = measure(2_000, || {
            let mut acc = 0u32;
            for i in 0..SETS {
                let a = &rows[(i % ROWS) * width..((i % ROWS) + 1) * width];
                let b = &arena_b[i * width..(i + 1) * width];
                acc += scalar_ref::subset_pair(a, b) as u32;
            }
            acc
        });
        println!("bench simd/subset/{bits}b/scalar: {ns:.0} ns/iter ({SETS} pairs)");
        samples.push(Sample {
            kernel: "subset",
            bits,
            backend: "scalar",
            ns_per_iter: ns,
            items: SETS as u64,
        });

        for &backend in &backends {
            let name = backend.name();

            let ns = measure(2_000, || backend.popcount(&arena));
            println!(
                "bench simd/popcount/{bits}b/{name}: {ns:.0} ns/iter \
                 ({SETS} packed sets, one dispatch)"
            );
            samples.push(Sample {
                kernel: "popcount",
                bits,
                backend: name,
                ns_per_iter: ns,
                items: SETS as u64,
            });

            let ns = measure(500, || {
                backend.subsumed_mask(&rows, &negs, width, &mut mask);
                mask.len()
            });
            println!(
                "bench simd/subsumed_mask/{bits}b/{name}: {ns:.0} ns/iter ({ROWS}x{NEGS} sweep)"
            );
            samples.push(Sample {
                kernel: "subsumed_mask",
                bits,
                backend: name,
                ns_per_iter: ns,
                items: (ROWS * NEGS) as u64,
            });

            let ns = measure(2_000, || {
                let mut acc = 0u32;
                for i in 0..SETS {
                    let a = &rows[(i % ROWS) * width..((i % ROWS) + 1) * width];
                    let b = &arena_b[i * width..(i + 1) * width];
                    acc += backend.subset(a, b) as u32;
                }
                acc
            });
            println!("bench simd/subset/{bits}b/{name}: {ns:.0} ns/iter ({SETS} pairs)");
            samples.push(Sample {
                kernel: "subset",
                bits,
                backend: name,
                ns_per_iter: ns,
                items: SETS as u64,
            });
        }
    }

    // Speedups vs the strict scalar baseline, per kernel × width.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for s in &samples {
        if s.backend == "scalar" {
            continue;
        }
        if let Some(base) = samples
            .iter()
            .find(|b| b.backend == "scalar" && b.kernel == s.kernel && b.bits == s.bits)
        {
            let x = base.ns_per_iter / s.ns_per_iter;
            println!(
                "bench simd/speedup/{}/{}b/{}: {x:.2}x vs scalar",
                s.kernel, s.bits, s.backend
            );
            speedups.push((format!("{}/{}b/{}", s.kernel, s.bits, s.backend), x));
        }
    }

    if no_write {
        return;
    }
    let mut json = String::from("{\n  \"bench\": \"simd\",\n");
    json.push_str(&format!(
        "  \"active_backend\": \"{}\",\n  \"samples\": [\n",
        jim_simd::active_name()
    ));
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"bits\": {}, \"backend\": \"{}\", \
             \"ns_per_iter\": {:.1}, \"items_per_iter\": {}}}{}\n",
            s.kernel,
            s.bits,
            s.backend,
            s.ns_per_iter,
            s.items,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedup_vs_scalar\": {\n");
    for (i, (k, x)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "    \"{k}\": {x:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("simd bench: wrote {out_path}"),
        Err(e) => eprintln!("simd bench: could not write {out_path}: {e}"),
    }
}
