//! Criterion bench for experiment E4 (timing half): strategy-choice
//! latency and full-inference wall time per strategy, on the TPC-H
//! customer × orders instance.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jim_bench::runner::{run_instrumented, Workbench};
use jim_core::strategy::StrategyKind;
use jim_core::JoinPredicate;
use jim_synth::tpch;

fn fixture(scale: f64) -> (Workbench, JoinPredicate) {
    let db = tpch::generate(tpch::TpchConfig { scale, seed: 21 });
    let wb = Workbench::new(db, &["customer", "orders"]);
    let u = wb.engine().universe().clone();
    let fk = u
        .id_by_names((0, "c_custkey"), (1, "o_custkey"))
        .expect("schema attr");
    (wb, JoinPredicate::of(u, [fk]))
}

fn strategy_kinds() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Random { seed: 1 },
        StrategyKind::LocalGeneral,
        StrategyKind::LocalSpecific,
        StrategyKind::LookaheadMinPrune,
        StrategyKind::LookaheadEntropy { alpha: 1.0 },
    ]
}

/// One `choose` call on a fresh engine (the paper's per-interaction cost).
fn bench_choose(c: &mut Criterion) {
    let (wb, _) = fixture(1.0);
    let engine = wb.engine();
    let mut group = c.benchmark_group("choose");
    for kind in strategy_kinds() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut strategy = kind.build();
            b.iter(|| {
                jim_core::strategy::choose_next(strategy.as_mut(), std::hint::black_box(&engine))
            });
        });
    }
    group.finish();
}

/// Complete inference runs (engine build excluded), scale sweep.
fn bench_full_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_inference");
    group.sample_size(20);
    for scale in [0.5f64, 1.0, 2.0] {
        let (wb, goal) = fixture(scale);
        let size = wb.product().size();
        group.bench_with_input(
            BenchmarkId::new("lookahead-minprune", size),
            &size,
            |b, _| b.iter(|| run_instrumented(&wb, StrategyKind::LookaheadMinPrune, &goal)),
        );
        group.bench_with_input(BenchmarkId::new("local-general", size), &size, |b, _| {
            b.iter(|| run_instrumented(&wb, StrategyKind::LocalGeneral, &goal))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_choose, bench_full_inference);
criterion_main!(benches);
