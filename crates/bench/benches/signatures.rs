//! Criterion bench for ablation A2: signature computation and
//! signature-grouped engine construction vs product size — the cost of the
//! "group tuples by Θ(t)" design against a per-tuple strawman.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jim_bench::runner::Workbench;
use jim_core::{AtomUniverse, Engine, EngineOptions};
use jim_synth::tpch;

fn workbench(scale: f64) -> Workbench {
    let db = tpch::generate(tpch::TpchConfig { scale, seed: 21 });
    Workbench::new(db, &["customer", "orders"])
}

/// Raw signature computation throughput (tuples/second).
fn bench_signature_computation(c: &mut Criterion) {
    let wb = workbench(1.0);
    let product = wb.product();
    let universe = AtomUniverse::cross_relation(product.schema().clone()).expect("atoms exist");
    let tuples: Vec<_> = product.iter().map(|(_, t)| t).collect();

    let mut group = c.benchmark_group("signature");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("compute_all", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in &tuples {
                acc += universe.signature(std::hint::black_box(t)).len();
            }
            acc
        })
    });
    group.finish();
}

/// Engine construction (signature grouping) across product sizes.
fn bench_engine_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_build");
    group.sample_size(10);
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let wb = workbench(scale);
        let size = wb.product().size();
        group.throughput(Throughput::Elements(size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &wb, |b, wb| {
            b.iter(|| Engine::new(wb.product(), &EngineOptions::default()).expect("in bounds"))
        });
    }
    group.finish();
}

/// A2 strawman: classify every tuple individually through the version
/// space (no signature grouping) — what label propagation would cost per
/// answer without the signature table.
fn bench_per_tuple_classification(c: &mut Criterion) {
    let wb = workbench(1.0);
    let engine = wb.engine();
    let product = wb.product();
    let universe = engine.universe().clone();
    let vs = engine.version_space().clone();
    let tuples: Vec<_> = product.iter().map(|(_, t)| t).collect();

    let mut group = c.benchmark_group("propagation");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("per_tuple_strawman", |b| {
        b.iter(|| {
            let mut informative = 0u64;
            for t in &tuples {
                let sig = universe.signature(std::hint::black_box(t));
                if vs.classify(&sig) == jim_core::TupleClass::Informative {
                    informative += 1;
                }
            }
            informative
        })
    });
    group.bench_function("grouped_rebuild", |b| {
        // The old propagation path: reclassify signature groups from
        // scratch (kept as the reference implementation).
        b.iter(|| {
            let groups = engine.recompute_candidates();
            groups.iter().map(|c| c.count).sum::<u64>()
        })
    });
    group.bench_function("grouped_engine", |b| {
        // The maintained candidate index: a borrowed view, no rebuild.
        b.iter(|| engine.candidates().total_tuples())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_signature_computation,
    bench_engine_build,
    bench_per_tuple_classification
);
criterion_main!(benches);
