//! Factorized-construction bench: the headline experiment of the
//! full-fidelity path — build an engine over products from 10⁶ up to
//! 10¹² tuples and show that **build cost stays flat in product size**
//! (it scales with the base relations' block structure instead), while
//! `Engine::new` — measured at the smallest sizes only, where it is
//! still feasible — pays for every product tuple.
//!
//! Two series:
//!
//! * `social_log` — `follows_log(32, events, ·)` self-joined: an
//!   event-log-shaped edge stream whose distinct-row count saturates at
//!   `32·31` no matter how long the log runs. `events` sweeps 10³→10⁶,
//!   so the product sweeps 10⁶→10¹².
//! * `tpch` — `customer × orders` at scale 30→3000 (product
//!   1.2·10⁶→1.2·10¹⁰): key-joined relations whose blocks are the rows
//!   themselves, the adversarial end for factorization (cost grows with
//!   rows — but rows grow with √product, so the build still flattens).
//!
//! After each factorized build, a full goal-driven session resolves the
//! instance and the per-question step cost is reported — inference over
//! counted groups must stay interactive at 10¹² tuples.
//!
//! Like the simd bench this needs the measured numbers (to emit
//! `BENCH_factorized.json` at the workspace root; `--out <path>`
//! overrides, `--no-write` skips), so it carries its own `Instant`-based
//! harness and prints the shim's `bench …: … ns/iter` lines.

#![forbid(unsafe_code)]

use jim_core::session::run_most_informative;
use jim_core::strategy::StrategyKind;
use jim_core::{Engine, EngineOptions, GoalOracle, JoinPredicate};
use jim_relation::{IntoSharedRelation, Product};
use jim_synth::{social, tpch};
use std::time::Instant;

/// Minimum over `REPEATS` single-shot builds — these are second-scale
/// operations at the big sizes, so one call per timed run.
const REPEATS: usize = 3;

fn measure<O, F: FnMut() -> O>(mut f: F) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let value = std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
        out = Some(value);
    }
    (best, out.expect("REPEATS >= 1"))
}

struct Sample {
    series: &'static str,
    /// Series parameter: log events, or TPC-H scale.
    param: u64,
    product_size: u64,
    mode: &'static str,
    build_ns: f64,
    groups: usize,
    /// Per-question step cost of a resolving session (factorized rows
    /// only), and how many questions it took.
    question_ns: Option<f64>,
    interactions: Option<u64>,
}

/// Resolve a goal-driven session and return (ns per question, questions).
fn session_step(engine: Engine, goal: JoinPredicate) -> (f64, u64) {
    let mut oracle = GoalOracle::new(goal);
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let start = Instant::now();
    let out =
        run_most_informative(engine, strategy.as_mut(), &mut oracle).expect("session resolves");
    let ns = start.elapsed().as_nanos() as f64;
    assert!(out.resolved, "goal session must resolve");
    let n = out.interactions.max(1) as u64;
    (ns / n as f64, n)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_write = args.iter().any(|a| a == "--no-write");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_factorized.json", env!("CARGO_MANIFEST_DIR")));
    // `cargo bench` passes harness flags like `--bench`; ignore them.

    let options = EngineOptions::default();
    let mut samples: Vec<Sample> = Vec::new();

    // ── Series A: the social event log, product 10⁶ → 10¹². ──────────
    // Only the smallest size is enumerable at all; Engine::new at 10⁸
    // would already blow the product ceiling a hundredfold.
    for &events in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let shared = social::follows_log(32, events, 7).into_shared();
        let product = Product::new(vec![shared.clone(), shared]).expect("self-join");
        let size = product.size();
        let (build_ns, engine) =
            measure(|| Engine::from_factorized(product.clone(), &options).expect("factorizes"));
        let groups = engine.num_groups();
        println!(
            "bench factorize/social_log/{events}ev/factorized: {build_ns:.0} ns/iter \
             ({size} product tuples, {groups} groups)"
        );
        let goal = social::two_hop_goal(engine.universe());
        let (question_ns, interactions) = session_step(engine, goal);
        println!(
            "bench factorize/social_log/{events}ev/question: {question_ns:.0} ns/iter \
             ({interactions} questions to resolve)"
        );
        samples.push(Sample {
            series: "social_log",
            param: events as u64,
            product_size: size,
            mode: "factorized",
            build_ns,
            groups,
            question_ns: Some(question_ns),
            interactions: Some(interactions),
        });

        if size <= options.max_product {
            let (build_ns, engine) =
                measure(|| Engine::new(product.clone(), &options).expect("enumerable"));
            println!(
                "bench factorize/social_log/{events}ev/enumerated: {build_ns:.0} ns/iter \
                 ({size} product tuples, {} groups)",
                engine.num_groups()
            );
            samples.push(Sample {
                series: "social_log",
                param: events as u64,
                product_size: size,
                mode: "enumerated",
                build_ns,
                groups: engine.num_groups(),
                question_ns: None,
                interactions: None,
            });
        }
    }

    // ── Series B: TPC-H customer × orders, product 1.2·10⁶ → 1.2·10¹⁰. ─
    for &scale in &[30u64, 300, 3000] {
        let db = tpch::generate(tpch::TpchConfig {
            scale: scale as f64,
            seed: 42,
        });
        let (rels, _) = db.join_view(&["customer", "orders"]).expect("tpch core");
        let product = Product::new(rels).expect("customer × orders");
        let size = product.size();
        let (build_ns, engine) =
            measure(|| Engine::from_factorized(product.clone(), &options).expect("factorizes"));
        let groups = engine.num_groups();
        println!(
            "bench factorize/tpch/sf{scale}/factorized: {build_ns:.0} ns/iter \
             ({size} product tuples, {groups} groups)"
        );
        let goal = {
            let u = engine.universe();
            let fk = u
                .id_by_names((0, "c_custkey"), (1, "o_custkey"))
                .expect("fk atom exists");
            JoinPredicate::of(u.clone(), [fk])
        };
        let (question_ns, interactions) = session_step(engine, goal);
        println!(
            "bench factorize/tpch/sf{scale}/question: {question_ns:.0} ns/iter \
             ({interactions} questions to resolve)"
        );
        samples.push(Sample {
            series: "tpch",
            param: scale,
            product_size: size,
            mode: "factorized",
            build_ns,
            groups,
            question_ns: Some(question_ns),
            interactions: Some(interactions),
        });

        if size <= options.max_product {
            let (build_ns, engine) =
                measure(|| Engine::new(product.clone(), &options).expect("enumerable"));
            println!(
                "bench factorize/tpch/sf{scale}/enumerated: {build_ns:.0} ns/iter \
                 ({size} product tuples, {} groups)",
                engine.num_groups()
            );
            samples.push(Sample {
                series: "tpch",
                param: scale,
                product_size: size,
                mode: "enumerated",
                build_ns,
                groups: engine.num_groups(),
                question_ns: None,
                interactions: None,
            });
        }
    }

    // The headline: how much the build slowed down across each series
    // versus how much the product grew.
    let mut flatness: Vec<(String, f64, f64)> = Vec::new();
    for series in ["social_log", "tpch"] {
        let pts: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.series == series && s.mode == "factorized")
            .collect();
        if let (Some(first), Some(last)) = (pts.first(), pts.last()) {
            let growth = last.product_size as f64 / first.product_size as f64;
            let slowdown = last.build_ns / first.build_ns;
            println!(
                "bench factorize/flatness/{series}: {slowdown:.1}x build over \
                 {growth:.0}x product"
            );
            flatness.push((series.to_string(), growth, slowdown));
        }
    }

    if no_write {
        return;
    }
    let mut json = String::from("{\n  \"bench\": \"factorize\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let step = match (s.question_ns, s.interactions) {
            (Some(ns), Some(n)) => {
                format!(", \"question_ns\": {ns:.0}, \"interactions\": {n}")
            }
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"param\": {}, \"product_size\": {}, \
             \"mode\": \"{}\", \"build_ns\": {:.0}, \"groups\": {}{}}}{}\n",
            s.series,
            s.param,
            s.product_size,
            s.mode,
            s.build_ns,
            s.groups,
            step,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"build_flatness\": [\n");
    for (i, (series, growth, slowdown)) in flatness.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{series}\", \"product_growth\": {growth:.0}, \
             \"build_slowdown\": {slowdown:.2}}}{}\n",
            if i + 1 < flatness.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("factorize bench: wrote {out_path}"),
        Err(e) => eprintln!("factorize bench: could not write {out_path}: {e}"),
    }
}
