//! Criterion bench for the incremental candidate index: the per-question
//! strategy step on a large synthetic product, incremental (the maintained
//! [`Engine::candidates`] view + `simulate_in`) vs the pre-index behavior
//! (re-materialize the candidate list for the ranking **and** once per
//! `simulate` call). The "rebuild" arm reproduces the old code path via
//! [`Engine::recompute_candidates`], which is kept in the engine exactly as
//! the reference implementation; the property tests prove the two paths
//! pick identical candidates.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jim_bench::runner::Workbench;
use jim_core::strategy::StrategyKind;
use jim_core::{Candidate, Engine, Label};
use jim_relation::ProductId;
use jim_synth::random_db::{generate, RandomDbConfig};

/// A random 2-relation instance: `rows`² product tuples over a small
/// domain, so the signature lattice is rich (many distinct candidates).
fn fixture(rows: usize) -> Engine {
    fixture_with(3, rows)
}

/// Same, with a chosen per-relation arity: the cross-relation universe
/// has `arity²` atoms, so arity 16 → 256 atoms (4 bitset words) and
/// arity 32 → 1024 atoms (16 words) — the widths where the `jim-simd`
/// batch kernels, not the per-group bookkeeping, dominate the sweeps.
fn fixture_with(arity: usize, rows: usize) -> Engine {
    let db = generate(&RandomDbConfig::uniform(2, arity, rows, 3, 42));
    let wb = Workbench::new(db, &["r1", "r2"]);
    let mut engine = wb.engine();
    // One negative label so the version space has a non-trivial antichain
    // (the shape mid-session questions are actually scored under).
    if let Some(c) = engine.candidates().candidates().first().cloned() {
        engine.label(c.representative, Label::Negative).unwrap();
    }
    engine
}

/// The pre-index per-question step: materialize the candidate list, then
/// score every candidate with a `simulate` that re-materializes it again —
/// the exact shape of the old `LookaheadMinPrune::choose`.
fn rebuild_choose(engine: &Engine) -> Option<ProductId> {
    let candidates = engine.recompute_candidates();
    let negs = engine.version_space().negatives();
    let score = |c: &Candidate| {
        let fresh = engine.recompute_candidates();
        let mut pos = 0u64;
        let mut neg = 0u64;
        for d in &fresh {
            let inter = d.restricted_sig.intersection(&c.restricted_sig);
            let becomes_pos = c.restricted_sig.is_subset(&d.restricted_sig);
            let becomes_neg = negs.iter().any(|n| inter.is_subset(n));
            if becomes_pos || becomes_neg {
                pos += d.count;
            }
            if d.restricted_sig.is_subset(&c.restricted_sig) {
                neg += d.count;
            }
        }
        (pos.min(neg), pos + neg)
    };
    // Same argmax + tie-break as `strategy::ranked`.
    let mut best: Option<((u64, u64), &Candidate)> = None;
    for c in &candidates {
        let s = score(c);
        let better = match &best {
            None => true,
            Some((bs, bc)) => {
                s > *bs
                    || (s == *bs
                        && (c.restricted_sig < bc.restricted_sig
                            || (c.restricted_sig == bc.restricted_sig
                                && c.representative < bc.representative)))
            }
        };
        if better {
            best = Some((s, c));
        }
    }
    best.map(|(_, c)| c.representative)
}

/// The incremental per-question step: borrow the maintained view, rank it
/// with one reusable scratch.
fn incremental_choose(engine: &Engine) -> Option<ProductId> {
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    jim_core::strategy::choose_next(strategy.as_mut(), engine)
}

fn bench_per_question(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_question");
    group.sample_size(10);
    for rows in [60usize, 120] {
        let engine = fixture(rows);
        let (tuples, cands) = (engine.stats().total_tuples, engine.candidates().len());
        // Both paths must agree before we time them.
        assert_eq!(incremental_choose(&engine), rebuild_choose(&engine));
        let label = format!("{tuples}t_{cands}c");
        group.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &engine,
            |b, engine| b.iter(|| incremental_choose(std::hint::black_box(engine))),
        );
        group.bench_with_input(BenchmarkId::new("rebuild", &label), &engine, |b, engine| {
            b.iter(|| rebuild_choose(std::hint::black_box(engine)))
        });
    }
    group.finish();
}

/// The raw cost of obtaining the candidate list: borrowed view vs full
/// rematerialization (what every strategy paid per call before the index).
fn bench_candidate_access(c: &mut Criterion) {
    let engine = fixture(120);
    let mut group = c.benchmark_group("candidate_access");
    group.bench_function("view", |b| {
        b.iter(|| std::hint::black_box(&engine).candidates().total_tuples())
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            std::hint::black_box(&engine)
                .recompute_candidates()
                .iter()
                .map(|c| c.count)
                .sum::<u64>()
        })
    });
    group.finish();
}

/// Label absorption with the incremental index (the other half of the
/// per-question round trip: Answer → propagate → next view).
fn bench_label_step(c: &mut Criterion) {
    let engine = fixture(120);
    let mut group = c.benchmark_group("label_step");
    group.sample_size(10);
    group.bench_function("negative_then_view", |b| {
        b.iter(|| {
            let mut e = engine.clone();
            let c = e.candidates().candidates()[0].clone();
            e.label(c.representative, Label::Negative).unwrap();
            e.candidates().len()
        })
    });
    group.bench_function("positive_then_view", |b| {
        b.iter(|| {
            let mut e = engine.clone();
            let c = e.candidates().candidates()[0].clone();
            e.label(c.representative, Label::Positive).unwrap();
            e.candidates().len()
        })
    });
    group.finish();
}

/// The per-question step and label absorption on wide atom universes
/// (256 and 1024 atoms), where every subset test spans 4 / 16 words and
/// the antichain sweeps run through the `jim-simd` batch kernels.
fn bench_wide_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("wide_universe");
    group.sample_size(10);
    for arity in [16usize, 32] {
        let engine = fixture_with(arity, 40);
        let atoms = engine.universe().len();
        let label = format!("{atoms}atoms_{}c", engine.candidates().len());
        group.bench_with_input(BenchmarkId::new("choose", &label), &engine, |b, engine| {
            b.iter(|| incremental_choose(std::hint::black_box(engine)))
        });
        group.bench_with_input(
            BenchmarkId::new("negative_label", &label),
            &engine,
            |b, engine| {
                b.iter(|| {
                    let mut e = engine.clone();
                    let c = e.candidates().candidates()[0].clone();
                    e.label(c.representative, Label::Negative).unwrap();
                    e.candidates().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_question,
    bench_candidate_access,
    bench_label_step,
    bench_wide_universe
);
criterion_main!(benches);
