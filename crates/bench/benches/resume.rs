//! Criterion bench for resume-by-replay: how fast can an evicted session
//! come back? Three ways to reconstruct the same resolved session state:
//!
//! * `replay_batched` — engine build + **one** [`Transcript::replay_batched`]
//!   pass over the whole label log (what journal rehydration amortizes to);
//! * `replay_sequential` — engine build + one [`jim_core::Engine::label`]
//!   call per recorded label, each paying its own version-space update,
//!   candidate-index maintenance pass and generation bump;
//! * `live_session_build` — engine build + actually re-running the strategy
//!   loop against an oracle (what "resume" would cost with no transcript at
//!   all: every strategy choice is re-paid).
//!
//! All arms include the engine construction from the shared product (the
//! honest cost of rehydrating from nothing); the `engine_build` baseline
//! measures that shared part so it can be subtracted when reading the
//! numbers. Equal final states are asserted before timing.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use jim_bench::runner::Workbench;
use jim_core::session::run_most_informative;
use jim_core::{GoalOracle, JoinPredicate, StrategyKind, Transcript};
use jim_relation::ProductId;
use jim_synth::random_db::{generate, RandomDbConfig};

/// A random 2-relation instance (the `answers`/`candidates` bench
/// fixture), a goal selecting a nontrivial subset, and the transcript of
/// one complete strategy-driven session inferring it.
fn fixture() -> (Workbench, Transcript, JoinPredicate) {
    let db = generate(&RandomDbConfig::uniform(2, 3, 120, 3, 42));
    let wb = Workbench::new(db, &["r1", "r2"]);
    let engine = wb.engine();
    let universe = engine.universe().clone();
    let witness = engine
        .product()
        .tuple(ProductId(0))
        .expect("non-empty product");
    let goal = JoinPredicate::new(universe.clone(), universe.signature(&witness));
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let mut oracle = GoalOracle::new(goal.clone());
    let out = run_most_informative(wb.engine(), strategy.as_mut(), &mut oracle)
        .expect("truthful labels are consistent");
    assert!(out.resolved);
    let transcript = Transcript::capture(&out.engine);
    assert!(!transcript.labels.is_empty());
    (wb, transcript, goal)
}

/// The replay comparison itself, isolated from instance construction:
/// both arms clone a pre-built unlabeled engine (cheap next to a build —
/// the `clone_baseline` of the `answers` bench measures it) and replay
/// the same transcript.
fn bench_replay(c: &mut Criterion) {
    let (wb, transcript, _) = fixture();
    let fresh = wb.engine();

    // Both reconstructions must land in the same state before we time
    // either of them.
    let mut batched = fresh.clone();
    transcript.replay_batched(&mut batched).unwrap();
    let mut sequential = fresh.clone();
    transcript.replay(&mut sequential).unwrap();
    assert!(batched.is_resolved() && sequential.is_resolved());
    assert_eq!(batched.result(), sequential.result());
    assert_eq!(batched.stats().pruned, sequential.stats().pruned);

    let mut group = c.benchmark_group("replay");
    group.sample_size(50);
    group.bench_function("replay_batched", |b| {
        b.iter(|| {
            let mut e = fresh.clone();
            transcript
                .replay_batched(std::hint::black_box(&mut e))
                .unwrap();
            e.generation()
        })
    });
    group.bench_function("replay_sequential", |b| {
        b.iter(|| {
            let mut e = fresh.clone();
            transcript.replay(std::hint::black_box(&mut e)).unwrap();
            e.generation()
        })
    });
    group.finish();
}

/// The whole-resume picture, from nothing: rebuilding the instance plus
/// replaying (what journal rehydration pays), versus re-running the live
/// strategy loop (what "resume" would cost with no transcript at all —
/// every strategy choice re-paid), over the shared `engine_build` cost.
fn bench_resume_from_nothing(c: &mut Criterion) {
    let (wb, transcript, goal) = fixture();
    let mut group = c.benchmark_group("resume");
    group.sample_size(20);
    group.bench_function("rebuild_and_replay_batched", |b| {
        b.iter(|| {
            let mut e = wb.engine();
            transcript
                .replay_batched(std::hint::black_box(&mut e))
                .unwrap();
            e.generation()
        })
    });
    group.bench_function("live_session_build", |b| {
        b.iter(|| {
            let mut strategy = StrategyKind::LookaheadMinPrune.build();
            let mut oracle = GoalOracle::new(goal.clone());
            run_most_informative(wb.engine(), strategy.as_mut(), &mut oracle)
                .expect("truthful labels are consistent")
                .questions
        })
    });
    group.bench_function("engine_build", |b| b.iter(|| wb.engine().generation()));
    group.finish();
}

criterion_group!(benches, bench_replay, bench_resume_from_nothing);
criterion_main!(benches);
