//! Criterion bench for the TCP front ends: requests/sec over one live
//! connection and the cost of *idle* connections, threads vs epoll.
//!
//! Two arms per transport:
//!
//! * `round_trip` — one client, one persistent connection, one cheap
//!   request (`ListSessions`) per iteration, and the same with a
//!   session-touching request (`Stats`). This is the protocol's serving
//!   latency floor: framing + dispatch + store lookup + response write.
//!   On the epoll transport each round trip additionally crosses the
//!   reactor→worker→reactor handoff; the bench shows what that costs.
//! * `round_trip_with_idle_conns` — the same round trip while
//!   `IDLE_CONNS` other connections sit parked. This is the workload the
//!   event loop exists for (many mostly-idle interactive sessions): the
//!   threads transport pays a stack per parked socket, the reactor pays
//!   a buffer. The bench also prints the measured per-idle-connection
//!   RSS/VSZ delta from `/proc/self/status` (linux) next to the timing.
//!
//! * `reactor_sweep` — the epoll transport at 1, 2 and 4 reactors under
//!   pipelined multi-connection traffic (16 connections, 32 requests in
//!   flight each), plus a self-timed aggregate req/s print per reactor
//!   count. **Honesty caveat:** reactor scaling is core scaling; on a
//!   single-core host every reactor thread shares the one CPU and the
//!   sweep shows flat numbers (it then proves extra reactors cost
//!   nothing). Run on an N-core machine to see the 1→N rps climb.
//!
//! Both transports serve the identical handler and store, so any
//! difference is pure transport overhead.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use jim_server::handler::Handler;
use jim_server::serve::{serve_with, Shutdown, Transport, TransportLimits};
use jim_server::store::{SessionStore, StoreConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE_CONNS: usize = 256;

/// Reactor-sweep shape: enough connections to spread across 4 reactors
/// and enough pipelining to keep every worker pool saturated.
const SWEEP_CONNS: usize = 16;
const PIPELINE_DEPTH: usize = 32;
const SWEEP_ROUNDS: usize = 20;

struct BenchServer {
    addr: SocketAddr,
    shutdown: Shutdown,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl BenchServer {
    fn start(transport: Transport) -> BenchServer {
        BenchServer::start_with_limits(transport, TransportLimits::default())
    }

    fn start_with_limits(transport: Transport, limits: TransportLimits) -> BenchServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind bench port");
        let addr = listener.local_addr().expect("local addr");
        let store = Arc::new(SessionStore::new(StoreConfig {
            max_sessions: 16,
            ttl: Duration::from_secs(600),
            ..Default::default()
        }));
        let handler = Arc::new(Handler::new(store));
        let shutdown = Shutdown::new();
        let serve_shutdown = shutdown.clone();
        let thread = std::thread::spawn(move || {
            serve_with(listener, handler, transport, serve_shutdown, limits)
        });
        BenchServer {
            addr,
            shutdown,
            thread: Some(thread),
        }
    }
}

impl Drop for BenchServer {
    fn drop(&mut self) {
        self.shutdown.trigger();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.set_nodelay(true).expect("nodelay");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, line: &str) -> usize {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        assert!(response.contains("\"ok\":true"), "{response}");
        response.len()
    }
}

fn transports() -> Vec<Transport> {
    let mut all = vec![Transport::Threads];
    if jim_aio::SUPPORTED {
        all.push(Transport::Epoll);
    }
    all
}

/// `(VmRSS, VmSize)` in KiB, when the platform exposes them.
fn memory_kib() -> Option<(u64, u64)> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |name: &str| {
        status
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse::<u64>().ok())
    };
    Some((field("VmRSS:")?, field("VmSize:")?))
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    group.sample_size(300);
    for transport in transports() {
        let server = BenchServer::start(transport);
        let mut conn = Conn::open(server.addr);
        let r = conn.round_trip(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        assert!(r > 0);
        group.bench_function(format!("round_trip/{transport}"), |b| {
            b.iter(|| conn.round_trip(r#"{"op":"ListSessions"}"#))
        });
        group.bench_function(format!("stats_round_trip/{transport}"), |b| {
            b.iter(|| conn.round_trip(r#"{"op":"Stats","session":1}"#))
        });
    }
    group.finish();
}

fn bench_idle_connections(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_idle");
    group.sample_size(300);
    for transport in transports() {
        let server = BenchServer::start(transport);
        let mut conn = Conn::open(server.addr);
        conn.round_trip(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );

        let before = memory_kib();
        let idle: Vec<Conn> = (0..IDLE_CONNS).map(|_| Conn::open(server.addr)).collect();
        // One round trip *after* the idle fleet proves they are all
        // accepted (accepts are FIFO) before memory is sampled.
        conn.round_trip(r#"{"op":"ListSessions"}"#);
        if let (Some((rss0, vsz0)), Some((rss1, vsz1))) = (before, memory_kib()) {
            println!(
                "bench transport_idle/{transport}: {IDLE_CONNS} idle conns cost \
                 ~{} KiB RSS, ~{} KiB VSZ per connection (process: {rss0}->{rss1} RSS, \
                 {vsz0}->{vsz1} VSZ)",
                rss1.saturating_sub(rss0) / IDLE_CONNS as u64,
                vsz1.saturating_sub(vsz0) / IDLE_CONNS as u64,
            );
        }
        group.bench_function(
            format!("round_trip_with_{IDLE_CONNS}_idle/{transport}"),
            |b| b.iter(|| conn.round_trip(r#"{"op":"ListSessions"}"#)),
        );
        drop(idle);
    }
    group.finish();
}

/// Write `depth` requests in one burst, then read all `depth` responses
/// — the pipelined shape the reactor's in-flight window exists for.
fn pipelined_burst(conn: &mut Conn, depth: usize) {
    let mut batch = String::new();
    for _ in 0..depth {
        batch.push_str("{\"op\":\"ListSessions\"}\n");
    }
    conn.writer
        .write_all(batch.as_bytes())
        .expect("write burst");
    conn.writer.flush().expect("flush burst");
    let mut response = String::new();
    for _ in 0..depth {
        response.clear();
        conn.reader.read_line(&mut response).expect("read response");
        assert!(response.contains("\"ok\":true"), "{response}");
    }
}

fn bench_reactor_scaling(c: &mut Criterion) {
    if !jim_aio::SUPPORTED {
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("transport_reactors");
    group.sample_size(60);
    for reactors in [1usize, 2, 4] {
        let server = BenchServer::start_with_limits(
            Transport::Epoll,
            TransportLimits {
                reactors,
                ..TransportLimits::default()
            },
        );
        // The aggregate sweep: SWEEP_CONNS concurrent clients, each
        // pushing SWEEP_ROUNDS bursts of PIPELINE_DEPTH pipelined
        // requests. Self-timed (criterion times one closure on one
        // thread; reactor scaling only shows across *many* connections).
        let start = Instant::now();
        let clients: Vec<_> = (0..SWEEP_CONNS)
            .map(|_| {
                let addr = server.addr;
                std::thread::spawn(move || {
                    let mut conn = Conn::open(addr);
                    for _ in 0..SWEEP_ROUNDS {
                        pipelined_burst(&mut conn, PIPELINE_DEPTH);
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("sweep client");
        }
        let elapsed = start.elapsed();
        let total = (SWEEP_CONNS * SWEEP_ROUNDS * PIPELINE_DEPTH) as f64;
        println!(
            "bench transport_reactors/{reactors}: {SWEEP_CONNS} conns x {SWEEP_ROUNDS} bursts \
             x {PIPELINE_DEPTH} pipelined = {total} requests in {elapsed:.2?} -> {:.0} req/s \
             (host has {cores} core(s); rps climbs with reactors only when cores >= reactors)",
            total / elapsed.as_secs_f64().max(1e-9),
        );
        // The criterion arm: one connection's pipelined burst latency at
        // this reactor count, for the regression-tracked record.
        let mut conn = Conn::open(server.addr);
        group.bench_function(
            format!("pipelined_burst_x{PIPELINE_DEPTH}/reactors_{reactors}"),
            |b| b.iter(|| pipelined_burst(&mut conn, PIPELINE_DEPTH)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_trip,
    bench_idle_connections,
    bench_reactor_scaling
);
criterion_main!(benches);
