//! Criterion bench for experiment E6 (timing half): the exponential blow-up
//! of the optimal minimax planner as signature diversity grows.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jim_bench::runner::Workbench;
use jim_core::strategy::optimal::OptimalPlanner;
use jim_synth::random_db::{generate, RandomDbConfig};

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_planner");
    group.sample_size(10);
    for (arity, rows) in [(1usize, 8usize), (2, 8), (2, 16), (3, 8)] {
        let db = generate(&RandomDbConfig::uniform(2, arity, rows, 2, 7));
        let wb = Workbench::new(db, &["r1", "r2"]);
        let engine = wb.engine();
        let sigs = engine.num_groups();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{arity}x{rows}_sigs{sigs}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    // Fresh planner each iteration: memo reuse would hide
                    // the exponential cost being measured. The budget keeps
                    // iterations bounded; instances that overflow it are
                    // timed as "time to burn the budget" (the cliff).
                    let mut planner = OptimalPlanner::with_budget(50_000);
                    planner.worst_case_depth(std::hint::black_box(engine))
                })
            },
        );
    }
    group.finish();
}

/// The heuristic the planner is compared against, for scale.
fn bench_lookahead_choice(c: &mut Criterion) {
    let db = generate(&RandomDbConfig::uniform(2, 3, 8, 2, 7));
    let wb = Workbench::new(db, &["r1", "r2"]);
    let engine = wb.engine();
    c.bench_function("lookahead_choice_same_instance", |b| {
        let mut s = jim_core::strategy::StrategyKind::LookaheadMinPrune.build();
        b.iter(|| jim_core::strategy::choose_next(s.as_mut(), std::hint::black_box(&engine)));
    });
}

criterion_group!(benches, bench_planner, bench_lookahead_choice);
criterion_main!(benches);
