//! Criterion bench for batched label propagation: answering a k-label
//! batch with **one** [`Engine::label_batch`] pass versus the sequential
//! path (k calls to [`Engine::label`], each paying its own version-space
//! update, candidate-index maintenance pass and generation bump) — the
//! wire-level difference between one `AnswerBatch` request and k `Answer`
//! requests. Labels are truthful w.r.t. a goal predicate, so both paths
//! are consistent and end in the identical engine state (asserted before
//! timing).
//!
//! Both arms clone the engine per iteration; the `clone_baseline` group
//! measures that shared cost so it can be subtracted when reading the
//! numbers.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jim_bench::runner::Workbench;
use jim_core::{Engine, JoinPredicate, Label};
use jim_relation::ProductId;
use jim_synth::random_db::{generate, RandomDbConfig};

/// A random 2-relation instance with a rich signature lattice, plus a
/// goal that selects a nontrivial subset (the signature of one product
/// tuple), mirroring the `candidates` bench fixture.
fn fixture() -> (Engine, JoinPredicate) {
    fixture_with(3, 120)
}

/// Same, with a chosen per-relation arity: the cross-relation universe
/// has `arity²` atoms (16 → 256 atoms, 32 → 1024), the widths where the
/// version-space sweeps run multi-word `jim-simd` kernels per pair.
fn fixture_with(arity: usize, rows: usize) -> (Engine, JoinPredicate) {
    let db = generate(&RandomDbConfig::uniform(2, arity, rows, 3, 42));
    let wb = Workbench::new(db, &["r1", "r2"]);
    let engine = wb.engine();
    let universe = engine.universe().clone();
    let witness = engine
        .product()
        .tuple(ProductId(0))
        .expect("non-empty product");
    let goal = JoinPredicate::new(universe.clone(), universe.signature(&witness));
    (engine, goal)
}

/// The k-label batch a top-k round would pose: the first `k` candidate
/// representatives, each answered truthfully w.r.t. the goal.
fn truthful_batch(engine: &Engine, goal: &JoinPredicate, k: usize) -> Vec<(ProductId, Label)> {
    engine
        .candidates()
        .iter()
        .take(k)
        .map(|c| {
            let tuple = engine
                .product()
                .tuple(c.representative)
                .expect("candidate ids are valid");
            (c.representative, Label::from_bool(goal.selects(&tuple)))
        })
        .collect()
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let (engine, goal) = fixture();
    let mut group = c.benchmark_group("answer_batch");
    group.sample_size(20);
    for k in [4usize, 16, 64] {
        let batch = truthful_batch(&engine, &goal, k);
        assert_eq!(batch.len(), k, "fixture must offer at least {k} candidates");

        // Both paths must land in the same state before we time them.
        let mut batched = engine.clone();
        batched.label_batch(&batch).unwrap();
        let mut sequential = engine.clone();
        for &(id, label) in &batch {
            sequential.label(id, label).unwrap();
        }
        assert_eq!(batched.result(), sequential.result());
        assert_eq!(
            batched.stats().informative,
            sequential.stats().informative,
            "k={k}: batched and sequential propagation must agree"
        );

        group.bench_with_input(BenchmarkId::new("batched", k), &batch, |b, batch| {
            b.iter(|| {
                let mut e = engine.clone();
                e.label_batch(std::hint::black_box(batch)).unwrap();
                e.generation()
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", k), &batch, |b, batch| {
            b.iter(|| {
                let mut e = engine.clone();
                for &(id, label) in std::hint::black_box(batch) {
                    e.label(id, label).unwrap();
                }
                e.generation()
            })
        });
    }
    group.finish();
}

/// The per-iteration engine clone both arms above pay — subtract this to
/// read the pure propagation cost.
fn bench_clone_baseline(c: &mut Criterion) {
    let (engine, _) = fixture();
    let mut group = c.benchmark_group("clone_baseline");
    group.sample_size(20);
    group.bench_function("engine_clone", |b| {
        b.iter(|| std::hint::black_box(&engine).clone().generation())
    });
    group.finish();
}

/// Batched propagation on wide atom universes (256 / 1024 atoms): the
/// subsumption sweep after a negative-only batch is exactly the packed
/// `subsumed_mask` kernel path.
fn bench_batch_wide_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_batch_wide");
    group.sample_size(10);
    for arity in [16usize, 32] {
        let (engine, goal) = fixture_with(arity, 40);
        let atoms = engine.universe().len();
        let batch = truthful_batch(&engine, &goal, 16);
        let mut check = engine.clone();
        check.label_batch(&batch).unwrap();
        group.bench_with_input(
            BenchmarkId::new("batched", format!("{atoms}atoms")),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut e = engine.clone();
                    e.label_batch(std::hint::black_box(batch)).unwrap();
                    e.generation()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_sequential,
    bench_clone_baseline,
    bench_batch_wide_universe
);
criterion_main!(benches);
