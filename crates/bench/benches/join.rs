//! Criterion bench for the relational substrate: hash-fold equi-join vs
//! the nested-loop reference, across join shapes.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use jim_relation::{spec_by_names, Product};
use jim_synth::tpch;

fn bench_join_evaluators(c: &mut Criterion) {
    let db = tpch::generate(tpch::TpchConfig {
        scale: 2.0,
        seed: 3,
    });
    let (rels, schema) = db
        .join_view(&["orders", "lineitem"])
        .expect("relations exist");
    let product = Product::new(rels).expect("non-empty");
    let fk = spec_by_names(&schema, &[((0, "o_orderkey"), (1, "l_orderkey"))]).expect("attrs");

    let mut group = c.benchmark_group("join_fk");
    group.sample_size(20);
    group.bench_function("hash", |b| {
        b.iter(|| {
            fk.eval_hash(std::hint::black_box(&product))
                .expect("valid spec")
        })
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| {
            fk.eval_nested_loop(std::hint::black_box(&product))
                .expect("valid spec")
        })
    });
    group.bench_function("sort_merge", |b| {
        b.iter(|| {
            fk.eval_sort_merge(std::hint::black_box(&product))
                .expect("valid spec")
        })
    });
    group.finish();
}

fn bench_three_way(c: &mut Criterion) {
    let db = tpch::generate(tpch::TpchConfig {
        scale: 1.0,
        seed: 3,
    });
    let (rels, schema) = db
        .join_view(&["customer", "orders", "lineitem"])
        .expect("relations exist");
    let product = Product::new(rels).expect("non-empty");
    let spec = spec_by_names(
        &schema,
        &[
            ((0, "c_custkey"), (1, "o_custkey")),
            ((1, "o_orderkey"), (2, "l_orderkey")),
        ],
    )
    .expect("attrs");

    let mut group = c.benchmark_group("join_3way");
    group.sample_size(10);
    group.bench_function("hash", |b| {
        b.iter(|| {
            spec.eval_hash(std::hint::black_box(&product))
                .expect("valid spec")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join_evaluators, bench_three_way);
criterion_main!(benches);
