//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! Usage:
//!   reproduce            # run everything
//!   reproduce e1 e3 a1   # run selected experiments
//!   reproduce --list     # list experiment ids
//!   reproduce --smoke    # fast CI sanity subset (e1 + e5)

#![forbid(unsafe_code)]

use jim_bench::experiments as ex;
use jim_bench::tables::Table;

/// One experiment: id, description, generator.
type Entry = (&'static str, &'static str, fn() -> Table);

fn catalog() -> Vec<Entry> {
    vec![
        (
            "e1",
            "paper §2 walkthrough (Figure 1)",
            ex::e1_walkthrough as fn() -> Table,
        ),
        (
            "e2",
            "benefit of a strategy (Figures 3–4)",
            ex::e2_interaction_modes,
        ),
        (
            "e3",
            "strategy comparison across complexity",
            ex::e3_strategy_comparison,
        ),
        (
            "e4",
            "scalability: time per interaction",
            ex::e4_scalability,
        ),
        (
            "e5",
            "joining sets of pictures (Figure 5)",
            ex::e5_set_cards,
        ),
        ("e6", "optimal planner blow-up", ex::e6_optimal),
        ("e7", "crowd cost under noise", ex::e7_crowd_cost),
        (
            "e8",
            "batched top-k answer propagation",
            ex::e8_batched_topk,
        ),
        (
            "e9",
            "durable sessions: evict/resume mid-session",
            ex::e9_evict_resume,
        ),
        ("a1", "ablation: pruning off/on", ex::a1_pruning_ablation),
        ("a3", "ablation: entropy order α", ex::a3_alpha_sweep),
        (
            "a4",
            "ablation: lookahead depth / hybrid",
            ex::a4_lookahead_depth,
        ),
        (
            "a5",
            "ablation: statistics-guided strategy",
            ex::a5_data_aware,
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let catalog = catalog();

    if args.iter().any(|a| a == "--list" || a == "-l") {
        for (id, what, _) in &catalog {
            println!("{id}  {what}");
        }
        return;
    }

    // CI smoke: the fastest experiments, enough to prove the whole bench
    // crate (runner, experiments, tables) still works end to end — e8
    // additionally drives complete top-k sessions through the batched
    // label path, e9 a full evict/restart/resume lifecycle through the
    // journaled server.
    let args: Vec<String> = if args.iter().any(|a| a == "--smoke") {
        vec!["e1".into(), "e5".into(), "e8".into(), "e9".into()]
    } else {
        args
    };

    let selected: Vec<&Entry> = if args.is_empty() {
        catalog.iter().collect()
    } else {
        let mut picked = Vec::new();
        for a in &args {
            match catalog.iter().find(|(id, _, _)| id == &a.to_lowercase()) {
                Some(entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment `{a}` (try --list)");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    println!("JIM reproduction — experiment tables (see EXPERIMENTS.md)\n");
    for (id, _, run) in selected {
        let start = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("[{id} regenerated in {:?}]\n", start.elapsed());
    }
}
