//! Plain-text result tables — the rows/series each experiment prints, in
//! the same layout EXPERIMENTS.md records.

use std::fmt;

/// A titled ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + description, printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (ragged rows are padded when printed).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}\n", self.title)?;
        let body = jim_relation::display::ascii_table(&self.headers, &self.rows, None);
        f.write_str(&body)
    }
}

/// Format a float with sensible precision for interaction counts.
pub fn fnum(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// Format a duration in adaptive units.
pub fn fdur(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_and_rows() {
        let mut t = Table::new("E0 — smoke", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0 — smoke"));
        assert!(s.contains("| a"));
        assert!(s.contains("| 1"));
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(3.17), "3.2");
        assert_eq!(fnum(250.4), "250");
    }

    #[test]
    fn duration_formats() {
        use std::time::Duration;
        assert_eq!(fdur(Duration::from_micros(120)), "120µs");
        assert_eq!(fdur(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fdur(Duration::from_secs(2)), "2.00s");
    }
}
