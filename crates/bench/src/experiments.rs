//! The experiment suite: one function per table/figure of EXPERIMENTS.md.
//!
//! Each function is deterministic (seeded) and returns a [`Table`] whose
//! rows are exactly what the `reproduce` binary prints and what
//! EXPERIMENTS.md records. Experiment ids follow DESIGN.md §6.

use crate::runner::{free_mode_interactions, mean_interactions, run_instrumented, Workbench};
use crate::tables::{fdur, fnum, Table};
use jim_core::session::{run_most_informative, run_top_k};
use jim_core::strategy::optimal::OptimalPlanner;
use jim_core::strategy::StrategyKind;
use jim_core::{CostModel, GoalOracle, JoinPredicate, MajorityOracle, Oracle};
use jim_synth::{flights, goals, random_db, setgame, tpch};
use std::time::Instant;

/// The fixed strategy used wherever a single "JIM strategy" is needed.
const DEFAULT_STRATEGY: StrategyKind = StrategyKind::LookaheadMinPrune;

/// E1 — the §2 walkthrough on Figure 1: label events and their pruning
/// effect, ending in the unique query Q2.
pub fn e1_walkthrough() -> Table {
    let wb = Workbench::new(flights::database(), &["flights", "hotels"]);
    let mut engine = wb.engine();
    let mut t = Table::new(
        "E1 — paper §2 walkthrough (Figure 1 instance)",
        &[
            "step",
            "tuple",
            "label",
            "grayed out",
            "informative left",
            "consistent queries",
        ],
    );
    for (step, (id, label)) in flights::walkthrough_labels().into_iter().enumerate() {
        let out = engine
            .label(id, label)
            .expect("paper labels are consistent");
        let count = engine
            .version_space()
            .count_consistent_exact()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        t.push(vec![
            (step + 1).to_string(),
            format!("({})", id.0 + 1),
            label.to_string(),
            out.pruned.to_string(),
            out.informative_remaining.to_string(),
            count,
        ]);
    }
    t.push(vec![
        "result".into(),
        engine.result().to_string(),
        "".into(),
        "".into(),
        "".into(),
        "1".into(),
    ]);
    t
}

/// The workloads E2 compares, with their goals.
fn e2_workloads() -> Vec<(&'static str, Workbench, JoinPredicate)> {
    let mut out = Vec::new();

    let wb = Workbench::new(flights::database(), &["flights", "hotels"]);
    let q1 = flights::q1(wb.engine().universe());
    let q2 = flights::q2(wb.engine().universe());
    out.push(("flights Q1", wb.clone(), q1));
    out.push(("flights Q2", wb, q2));

    let wb = Workbench::new(
        tpch::generate(tpch::TpchConfig::default()),
        &["customer", "orders"],
    );
    let u = wb.engine().universe().clone();
    let fk = u
        .id_by_names((0, "c_custkey"), (1, "o_custkey"))
        .expect("schema attr");
    out.push(("tpch cust⋈ord", wb, JoinPredicate::of(u, [fk])));

    let deck = setgame::subdeck(20, 5);
    let db = jim_relation::Database::from_relations(vec![deck]).expect("one relation");
    let wb = Workbench::new(db, &["cards", "cards"]);
    let goal = setgame::same_features_goal(wb.engine().universe(), &["color"]);
    out.push(("set same-color", wb, goal));

    out
}

/// E2 — Figures 3 & 4: interactions per interaction type. The shape to
/// reproduce: mode 1 ≥ mode 2 ≥ mode 3 ≥ mode 4.
pub fn e2_interaction_modes() -> Table {
    let mut t = Table::new(
        "E2 — benefit of using a strategy (Figures 3–4): interactions per mode",
        &[
            "workload",
            "tuples",
            "1 free",
            "2 gray-out",
            "3 top-3",
            "4 most-informative",
        ],
    );
    for (name, wb, goal) in e2_workloads() {
        let total = wb.engine().stats().total_tuples;
        let m1 = free_mode_interactions(&wb, &goal, false, 8);
        let m2 = free_mode_interactions(&wb, &goal, true, 8);
        let mut strategy = DEFAULT_STRATEGY.build();
        let mut oracle = GoalOracle::new(goal.clone());
        let m3 = run_top_k(wb.engine(), 3, strategy.as_mut(), &mut oracle)
            .expect("consistent")
            .interactions;
        let m4 = run_instrumented(&wb, DEFAULT_STRATEGY, &goal).interactions;
        t.push(vec![
            name.to_string(),
            total.to_string(),
            fnum(m1),
            fnum(m2),
            m3.to_string(),
            m4.to_string(),
        ]);
    }
    t
}

/// The complexity grid of E3/A3: (label, domain, goal atoms).
fn e3_grid() -> Vec<(String, i64, usize)> {
    let mut grid = Vec::new();
    for domain in [16i64, 4, 2] {
        for atoms in [1usize, 2, 3] {
            grid.push((format!("d{domain}/k{atoms}"), domain, atoms));
        }
    }
    grid
}

/// Mean interactions of `kind` over the E3 cell's instances and goals.
fn e3_cell(kind: StrategyKind, domain: i64, atoms: usize) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0u32;
    for seed in 0..3u64 {
        let db = random_db::generate(&random_db::RandomDbConfig::uniform(2, 3, 12, domain, seed));
        let wb = Workbench::new(db, &["r1", "r2"]);
        let goal_list = goals::satisfiable_goals(&wb.product(), atoms, 2, seed);
        for goal in goal_list {
            total += mean_interactions(&wb, kind, &goal, 2);
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

/// E3 — strategy comparison across instance density (domain size) and goal
/// complexity (atom count). The claim: local strategies win on simple
/// cells, lookahead on complex ones.
pub fn e3_strategy_comparison() -> Table {
    let grid = e3_grid();
    let mut headers: Vec<&str> = vec!["strategy"];
    let cols: Vec<String> = grid.iter().map(|(label, _, _)| label.clone()).collect();
    headers.extend(cols.iter().map(String::as_str));
    let mut t = Table::new(
        "E3 — mean interactions by strategy × (domain density d, goal atoms k)",
        &headers,
    );
    for kind in StrategyKind::heuristics(2024) {
        let mut row = vec![kind.to_string()];
        for (_, domain, atoms) in &grid {
            row.push(match e3_cell(kind, *domain, *atoms) {
                Some(v) => fnum(v),
                None => "-".into(),
            });
        }
        t.push(row);
    }
    t
}

/// E4 — scalability: wall time per strategy choice and total inference time
/// as the instance grows (TPC-H customer × orders at scale s).
pub fn e4_scalability() -> Table {
    let mut t = Table::new(
        "E4 — scalability: time per interaction vs product size (customer × orders)",
        &[
            "scale",
            "product",
            "strategy",
            "interactions",
            "mean choose",
            "total",
        ],
    );
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let db = tpch::generate(tpch::TpchConfig { scale, seed: 21 });
        let wb = Workbench::new(db, &["customer", "orders"]);
        let product_size = wb.product().size();
        let u = wb.engine().universe().clone();
        let fk = u
            .id_by_names((0, "c_custkey"), (1, "o_custkey"))
            .expect("schema attr");
        let goal = JoinPredicate::of(u, [fk]);
        for kind in [
            StrategyKind::LocalGeneral,
            StrategyKind::LookaheadMinPrune,
            StrategyKind::LookaheadEntropy { alpha: 1.0 },
            StrategyKind::Random { seed: 1 },
        ] {
            let m = run_instrumented(&wb, kind, &goal);
            t.push(vec![
                format!("{scale}"),
                product_size.to_string(),
                kind.to_string(),
                m.interactions.to_string(),
                fdur(m.mean_choose),
                fdur(m.total),
            ]);
        }
    }
    t
}

/// E5 — Figure 5: joining sets of pictures (the Set deck).
pub fn e5_set_cards() -> Table {
    let mut t = Table::new(
        "E5 — joining sets of pictures (Figure 5): interactions to infer tag joins",
        &["deck", "pairs", "goal", "strategy", "interactions"],
    );
    for deck_size in [20usize, 40, 81] {
        let deck = setgame::subdeck(deck_size, 13);
        let db = jim_relation::Database::from_relations(vec![deck]).expect("one relation");
        let wb = Workbench::new(db, &["cards", "cards"]);
        let pairs = wb.product().size();
        for features in [
            &["color"][..],
            &["color", "shading"],
            &["number", "symbol", "shading"],
        ] {
            let goal = setgame::same_features_goal(wb.engine().universe(), features);
            for kind in [
                DEFAULT_STRATEGY,
                StrategyKind::LocalGeneral,
                StrategyKind::Random { seed: 4 },
            ] {
                let m = run_instrumented(&wb, kind, &goal);
                assert!(m.correct, "E5 inference incorrect for {kind}");
                t.push(vec![
                    deck_size.to_string(),
                    pairs.to_string(),
                    features.join("+"),
                    kind.to_string(),
                    m.interactions.to_string(),
                ]);
            }
        }
    }
    t
}

/// E6 — the optimal strategy is exponential: planner states/time blow up
/// with instance size while heuristics stay near-optimal in quality.
pub fn e6_optimal() -> Table {
    e6_optimal_with_budget(300_000)
}

/// [`e6_optimal`] with an explicit planner state budget (tests use a small
/// one; the budget is the experiment's "unusable in practice" cliff).
pub fn e6_optimal_with_budget(planner_budget: usize) -> Table {
    let mut t = Table::new(
        "E6 — optimal (exponential) planner vs heuristic quality",
        &[
            "arity×rows",
            "distinct sigs",
            "optimal depth",
            "planner states",
            "planner time",
            "lookahead worst",
            "local worst",
        ],
    );
    // Signature diversity (the planner's state-space driver) is controlled
    // by the relation arity: `a` attributes per side give `a²` atoms.
    for (arity, rows) in [(1usize, 8usize), (2, 8), (2, 16), (3, 8), (3, 16)] {
        let db = random_db::generate(&random_db::RandomDbConfig::uniform(2, arity, rows, 2, 7));
        let wb = Workbench::new(db, &["r1", "r2"]);
        let engine = wb.engine();
        let sigs = engine.num_groups();

        // A deliberately finite budget: the experiment's message is that
        // the exact planner stops fitting *any* budget almost immediately,
        // while the heuristics below stay microseconds-fast.
        let mut planner = OptimalPlanner::with_budget(planner_budget);
        let start = Instant::now();
        let depth = planner.worst_case_depth(&engine);
        let elapsed = start.elapsed();
        let (depth_s, states) = match depth {
            Ok(d) => (d.to_string(), planner.states_explored().to_string()),
            Err(_) => ("> budget".into(), format!(">{planner_budget}")),
        };

        // Heuristic worst case over all satisfiable goals of arity ≤ 2.
        let mut goal_list = goals::satisfiable_goals(&wb.product(), 1, 6, 3);
        goal_list.extend(goals::satisfiable_goals(&wb.product(), 2, 6, 3));
        let worst = |kind: StrategyKind| {
            goal_list
                .iter()
                .map(|g| run_instrumented(&wb, kind, g).interactions)
                .max()
                .unwrap_or(0)
        };
        t.push(vec![
            format!("{arity}×{rows}"),
            sigs.to_string(),
            depth_s,
            states,
            fdur(elapsed),
            worst(DEFAULT_STRATEGY).to_string(),
            worst(StrategyKind::LocalGeneral).to_string(),
        ]);
    }
    t
}

/// E7 — crowdsourcing: questions, dollars and success rate under worker
/// noise, with and without majority voting.
pub fn e7_crowd_cost() -> Table {
    let mut t = Table::new(
        "E7 — crowd cost: strategy × worker error × votes (TPC-H cust⋈ord, 10 trials, 1¢/question)",
        &[
            "strategy",
            "error",
            "votes",
            "success",
            "mean questions",
            "mean cost",
        ],
    );
    let pricing = CostModel::cents_per_question(1);
    let wb = Workbench::new(
        tpch::generate(tpch::TpchConfig::default()),
        &["customer", "orders"],
    );
    let u = wb.engine().universe().clone();
    let fk = u
        .id_by_names((0, "c_custkey"), (1, "o_custkey"))
        .expect("schema attr");
    let goal = JoinPredicate::of(u, [fk]);
    const TRIALS: u64 = 10;

    for kind in [StrategyKind::Random { seed: 0 }, DEFAULT_STRATEGY] {
        for (error, votes) in [(0.0, 1u32), (0.1, 1), (0.1, 3), (0.1, 5), (0.2, 5)] {
            let mut successes = 0u64;
            let mut questions = 0u64;
            for trial in 0..TRIALS {
                let engine = wb.engine();
                let kind = match kind {
                    StrategyKind::Random { .. } => StrategyKind::Random { seed: trial },
                    other => other,
                };
                let mut strategy = kind.build();
                let mut oracle = MajorityOracle::new(goal.clone(), error, votes, 100 + trial);
                match run_most_informative(engine, strategy.as_mut(), &mut oracle) {
                    Ok(out) => {
                        questions += out.questions;
                        if out
                            .inferred
                            .instance_equivalent(&goal, out.engine.product())
                            .expect("evaluable")
                        {
                            successes += 1;
                        }
                    }
                    Err(_) => {
                        // Conflict detected: the noisy run aborted. The
                        // questions answered up to the conflict were paid.
                        questions += oracle.questions_asked();
                    }
                }
            }
            let mean_q = questions as f64 / TRIALS as f64;
            t.push(vec![
                kind.to_string(),
                format!("{:.0}%", error * 100.0),
                votes.to_string(),
                format!("{}/{}", successes, TRIALS),
                fnum(mean_q),
                pricing.cost(mean_q.round() as u64).to_string(),
            ]);
        }
    }
    t
}

/// A1 — pruning ablation: effort with gray-out disabled vs enabled, as a
/// waste ratio (Figure 4's message in one number per workload).
pub fn a1_pruning_ablation() -> Table {
    let mut t = Table::new(
        "A1 — ablation: interactive pruning off vs on (free labeling, 8 seeds)",
        &["workload", "no gray-out", "gray-out", "waste ratio"],
    );
    for (name, wb, goal) in e2_workloads() {
        let off = free_mode_interactions(&wb, &goal, false, 8);
        let on = free_mode_interactions(&wb, &goal, true, 8);
        t.push(vec![
            name.to_string(),
            fnum(off),
            fnum(on),
            format!("{:.2}×", off / on.max(1.0)),
        ]);
    }
    t
}

/// A4 — lookahead depth: what do depth-2 minimax and the local/lookahead
/// hybrid buy over the paper's one-step lookahead, on the E3 grid?
pub fn a4_lookahead_depth() -> Table {
    let grid = e3_grid();
    let mut headers: Vec<&str> = vec!["strategy"];
    let cols: Vec<String> = grid.iter().map(|(label, _, _)| label.clone()).collect();
    headers.extend(cols.iter().map(String::as_str));
    let mut t = Table::new(
        "A4 — ablation: lookahead depth and hybrid switching (mean interactions)",
        &headers,
    );
    for kind in [
        StrategyKind::LookaheadMinPrune,
        StrategyKind::LookaheadTwoStep,
        StrategyKind::Hybrid { threshold: 16 },
        StrategyKind::LocalSpecific,
    ] {
        let mut row = vec![kind.to_string()];
        for (_, domain, atoms) in &grid {
            row.push(match e3_cell(kind, *domain, *atoms) {
                Some(v) => fnum(v),
                None => "-".into(),
            });
        }
        t.push(row);
    }
    t
}

/// A5 — the statistics-guided strategy: does knowing which atoms are
/// key-like (selective) substitute for lookahead? Compared on the E3 grid
/// plus the TPC-H FK workload, where keys actually exist.
pub fn a5_data_aware() -> Table {
    let grid = e3_grid();
    let mut headers: Vec<&str> = vec!["strategy"];
    let cols: Vec<String> = grid.iter().map(|(label, _, _)| label.clone()).collect();
    headers.extend(cols.iter().map(String::as_str));
    headers.push("tpch-fk");
    let mut t = Table::new(
        "A5 — ablation: statistics-guided (data-aware) strategy (mean interactions)",
        &headers,
    );

    // The TPC-H FK column: a workload with a genuine key atom.
    let tpch_wb = Workbench::new(
        tpch::generate(tpch::TpchConfig::default()),
        &["customer", "orders"],
    );
    let u = tpch_wb.engine().universe().clone();
    let fk = u
        .id_by_names((0, "c_custkey"), (1, "o_custkey"))
        .expect("schema attr");
    let tpch_goal = JoinPredicate::of(u, [fk]);

    for kind in [
        StrategyKind::DataAware,
        StrategyKind::LocalSpecific,
        StrategyKind::LookaheadMinPrune,
        StrategyKind::Random { seed: 9 },
    ] {
        let mut row = vec![kind.to_string()];
        for (_, domain, atoms) in &grid {
            row.push(match e3_cell(kind, *domain, *atoms) {
                Some(v) => fnum(v),
                None => "-".into(),
            });
        }
        row.push(fnum(mean_interactions(&tpch_wb, kind, &tpch_goal, 3)));
        t.push(row);
    }
    t
}

/// A3 — the generalized-entropy order α: does the Tsallis order matter?
pub fn a3_alpha_sweep() -> Table {
    let mut t = Table::new(
        "A3 — ablation: lookahead-entropy order α (mean interactions)",
        &["α", "d16/k1", "d4/k2", "d2/k3"],
    );
    for alpha in [0.5f64, 1.0, 2.0] {
        let kind = StrategyKind::LookaheadEntropy { alpha };
        let mut row = vec![format!("{alpha}")];
        for (domain, atoms) in [(16i64, 1usize), (4, 2), (2, 3)] {
            row.push(match e3_cell(kind, domain, atoms) {
                Some(v) => fnum(v),
                None => "-".into(),
            });
        }
        t.push(row);
    }
    t
}

/// E8 — batched answer propagation: the top-k mode driven through
/// `Engine::label_batch`, one engine pass per answered batch. The
/// "passes" column is the engine's generation counter at the end of the
/// session — with batching it equals the number of batches, not the
/// number of labels (k=1 degenerates to one pass per label).
pub fn e8_batched_topk() -> Table {
    let mut t = Table::new(
        "E8 — batched top-k sessions: one propagation pass per answer batch",
        &[
            "workload",
            "k",
            "interactions",
            "passes",
            "skipped",
            "resolved",
        ],
    );
    let mut workloads: Vec<(&str, Workbench, JoinPredicate)> = Vec::new();
    {
        let wb = Workbench::new(flights::database(), &["flights", "hotels"]);
        let q2 = flights::q2(wb.engine().universe());
        workloads.push(("flights Q2", wb, q2));
    }
    {
        let db = random_db::generate(&random_db::RandomDbConfig::uniform(2, 3, 12, 3, 11));
        let wb = Workbench::new(db, &["r1", "r2"]);
        let goal =
            goals::satisfiable_goal(&wb.product(), 2, 11).expect("random instance has goals");
        workloads.push(("random d3", wb, goal));
    }
    for (name, wb, goal) in &workloads {
        for k in [1usize, 4, 10] {
            let mut strategy = DEFAULT_STRATEGY.build();
            let mut oracle = GoalOracle::new(goal.clone());
            let out = run_top_k(wb.engine(), k, strategy.as_mut(), &mut oracle)
                .expect("truthful labels are consistent");
            t.push(vec![
                name.to_string(),
                k.to_string(),
                out.interactions.to_string(),
                out.engine.generation().to_string(),
                out.skipped.to_string(),
                out.resolved.to_string(),
            ]);
        }
    }
    t
}

/// E9 — durable sessions: a mid-session evict **and a full process
/// restart** (fresh store over the same data dir) lose nothing — the
/// resumed session finishes to the paper's unique query Q2. Each row is
/// one lifecycle step of the same session, driven entirely over the wire
/// protocol against journaled `jim-server` stores.
pub fn e9_evict_resume() -> Table {
    use jim_json::Json;
    use jim_server::handler::Handler;
    use jim_server::journal::JournalStore;
    use jim_server::store::{SessionStore, StoreConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("jim-e9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ttl = Duration::from_secs(60);
    let journaled = |dir: &std::path::Path| {
        Handler::new(Arc::new(SessionStore::with_journal(
            StoreConfig {
                max_sessions: 8,
                ttl,
                ..Default::default()
            },
            JournalStore::open(dir).expect("journal dir"),
        )))
    };
    let send = |h: &Handler, line: &str| -> Json {
        let r = Json::parse(&h.handle_line(line)).expect("valid response");
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "{line} -> {r}"
        );
        r
    };

    let mut t = Table::new(
        "E9 — durable sessions: evict + restart mid-session still yields Q2",
        &["step", "resident", "on disk", "interactions", "outcome"],
    );
    let mut row = |step: &str, h: &Handler, outcome: String| {
        let list = send(h, r#"{"op":"ListSessions"}"#);
        let sessions = list.get("sessions").unwrap().as_array().unwrap();
        let resident = sessions
            .iter()
            .filter(|s| s.get("resident").and_then(Json::as_bool) == Some(true))
            .count();
        let interactions: u64 = sessions
            .iter()
            .filter_map(|s| s.get("interactions").and_then(Json::as_u64))
            .sum();
        t.push(vec![
            step.to_string(),
            resident.to_string(),
            (sessions.len() - resident).to_string(),
            interactions.to_string(),
            outcome,
        ]);
    };

    // Phase 1: create + first walkthrough label, then evict to disk.
    let h1 = journaled(&dir);
    let r = send(
        &h1,
        r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"lookahead-minprune"}"#,
    );
    let session = r.get("session").unwrap().as_u64().unwrap();
    assert_eq!(r.get("persisted").unwrap().as_bool(), Some(true));
    row("create", &h1, "persisted:true".into());
    send(
        &h1,
        &format!(r#"{{"op":"Answer","session":{session},"tuple":2,"label":"+"}}"#),
    );
    row("label (3)+", &h1, "journaled before ack".into());
    let future = std::time::Instant::now() + ttl + Duration::from_secs(1);
    h1.store().sweep_at(future);
    row("evict (TTL)", &h1, "no write needed: WAL".into());
    drop(h1);

    // Phase 2: a fresh store over the same directory — the restart.
    let h2 = journaled(&dir);
    row("restart", &h2, "fresh store, same dir".into());
    let r = send(
        &h2,
        &format!(r#"{{"op":"ResumeSession","session":{session}}}"#),
    );
    assert_eq!(r.get("interactions").unwrap().as_u64(), Some(1));
    row("resume", &h2, "1 label replayed".into());

    // Finish with the truthful Q2 user (To ≍ City ∧ Airline ≍ Discount).
    let sql = loop {
        let q = send(
            &h2,
            &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
        );
        if q.get("resolved").unwrap().as_bool() == Some(true) {
            break q.get("sql").unwrap().as_str().unwrap().to_string();
        }
        let v: Vec<&str> = q
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        let sign = if v[1] == v[3] && v[2] == v[4] {
            '+'
        } else {
            '-'
        };
        let a = send(
            &h2,
            &format!(r#"{{"op":"Answer","session":{session},"label":"{sign}"}}"#),
        );
        if a.get("resolved").unwrap().as_bool() == Some(true) {
            break a.get("sql").unwrap().as_str().unwrap().to_string();
        }
    };
    assert!(
        sql.contains("r1.To = r2.City"),
        "E9 did not infer Q2: {sql}"
    );
    assert!(
        sql.contains("r1.Airline = r2.Discount"),
        "E9 did not infer Q2: {sql}"
    );
    let predicate = send(&h2, &format!(r#"{{"op":"Sql","session":{session}}}"#));
    row(
        "finish",
        &h2,
        predicate
            .get("predicate")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string(),
    );
    let _ = std::fs::remove_dir_all(&dir);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_ends_with_q2() {
        let t = e1_walkthrough();
        assert_eq!(t.rows.len(), 4);
        let last = t.rows.last().unwrap();
        assert!(last[1].contains("To ≍ hotels.City"));
        assert!(last[1].contains("Airline ≍ hotels.Discount"));
        // After the third label exactly one consistent query remains.
        assert_eq!(t.rows[2][5], "1");
    }

    #[test]
    fn e2_modes_are_ordered() {
        let t = e2_interaction_modes();
        for row in &t.rows {
            let m1: f64 = row[2].parse().unwrap();
            let m2: f64 = row[3].parse().unwrap();
            let m4: f64 = row[5].parse().unwrap();
            assert!(m2 <= m1 + 1e-9, "{row:?}");
            assert!(m4 <= m1 + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn e3_has_all_cells() {
        let t = e3_strategy_comparison();
        assert_eq!(t.rows.len(), StrategyKind::heuristics(0).len());
        for row in &t.rows {
            assert_eq!(row.len(), 10); // strategy + 9 cells
        }
    }

    #[test]
    fn e6_planner_blows_up_monotonically() {
        // Small budget keeps the debug-mode test fast; the blow-up pattern
        // is the same.
        let t = e6_optimal_with_budget(5_000);
        let states: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_start_matches('>').parse().unwrap_or(f64::MAX))
            .collect();
        // Larger instances never need fewer states.
        assert!(states.windows(2).all(|w| w[0] <= w[1] * 2.0), "{states:?}");
        // The biggest instances must overflow the budget (the paper's
        // "unusable in practice").
        assert!(t.rows.last().unwrap()[2].contains("budget"));
    }

    #[test]
    fn e9_survives_evict_and_restart() {
        let t = e9_evict_resume();
        assert_eq!(t.rows.len(), 6);
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "finish");
        assert_eq!(last[1], "1", "resumed session resident at the end");
        assert!(last[4].contains("To ≍ hotels.City"), "{last:?}");
        assert!(last[4].contains("Airline ≍ hotels.Discount"), "{last:?}");
        // The evict and restart rows see the session on disk, not resident.
        let evict = &t.rows[2];
        assert_eq!(
            (evict[1].as_str(), evict[2].as_str()),
            ("0", "1"),
            "{evict:?}"
        );
    }

    #[test]
    fn a1_waste_ratio_at_least_one() {
        let t = a1_pruning_ablation();
        for row in &t.rows {
            let ratio: f64 = row[3].trim_end_matches('×').parse().unwrap();
            assert!(ratio >= 0.99, "{row:?}");
        }
    }
}
