//! # `jim-bench` — the reproduction harness
//!
//! Regenerates every table and figure claimed in EXPERIMENTS.md:
//!
//! * the `reproduce` binary prints the experiment tables (interaction
//!   counts, crowd costs, planner blow-up — quantities criterion cannot
//!   express),
//! * the criterion benches (`strategies`, `signatures`, `join`, `optimal`)
//!   measure the timing figures.
//!
//! The [`experiments`] functions are deterministic (seeded) so EXPERIMENTS.md
//! stays reproducible run-to-run on the same machine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod tables;
