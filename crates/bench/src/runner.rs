//! Instrumented inference runs shared by the `reproduce` binary and the
//! criterion benches.

use jim_core::session::{run_free, RandomPicker};
use jim_core::strategy::StrategyKind;
use jim_core::{Engine, EngineOptions, GoalOracle, JoinPredicate, Label};
use jim_relation::{Database, Product};
use std::time::{Duration, Instant};

/// A database plus the relation occurrences to join — owns the data so
/// experiments can build fresh borrowing engines repeatedly.
#[derive(Debug, Clone)]
pub struct Workbench {
    /// The instance.
    pub db: Database,
    /// Relation names (may repeat for self-joins).
    pub view: Vec<String>,
}

impl Workbench {
    /// Bundle a database with the join view to infer over.
    pub fn new(db: Database, view: &[&str]) -> Self {
        Workbench {
            db,
            view: view.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The cartesian product of the view.
    pub fn product(&self) -> Product {
        let names: Vec<&str> = self.view.iter().map(String::as_str).collect();
        let (rels, _) = self.db.join_view(&names).expect("view names exist");
        Product::new(rels).expect("non-empty view")
    }

    /// A fresh engine over the full product.
    pub fn engine(&self) -> Engine {
        self.engine_with(&EngineOptions::default())
    }

    /// A fresh engine with custom options.
    pub fn engine_with(&self, options: &EngineOptions) -> Engine {
        Engine::new(self.product(), options).expect("product within bounds")
    }
}

/// Metrics of one instrumented inference run.
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Membership queries answered.
    pub interactions: u64,
    /// Wall time of the whole run (engine steps + strategy choices).
    pub total: Duration,
    /// Mean strategy-choice latency (the paper's "time per interaction").
    pub mean_choose: Duration,
    /// Whether the inferred predicate is instance-equivalent to the goal.
    pub correct: bool,
}

/// Run strategy-driven inference (interaction mode 4) with timing.
pub fn run_instrumented(
    workbench: &Workbench,
    kind: StrategyKind,
    goal: &JoinPredicate,
) -> RunMetrics {
    let mut engine = workbench.engine();
    let mut strategy = kind.build();
    let start = Instant::now();
    let mut choose_total = Duration::ZERO;
    let mut interactions = 0u64;
    loop {
        let t0 = Instant::now();
        let pick = jim_core::strategy::choose_next(strategy.as_mut(), &engine);
        choose_total += t0.elapsed();
        let Some(id) = pick else { break };
        let tuple = engine
            .product()
            .tuple(id)
            .expect("strategy returns valid ids");
        let label = Label::from_bool(goal.selects(&tuple));
        engine
            .label(id, label)
            .expect("truthful labels are consistent");
        interactions += 1;
    }
    let total = start.elapsed();
    let correct = engine
        .result()
        .instance_equivalent(goal, engine.product())
        .expect("evaluable predicates");
    RunMetrics {
        interactions,
        total,
        mean_choose: if interactions > 0 {
            choose_total / (interactions as u32 + 1)
        } else {
            choose_total
        },
        correct,
    }
}

/// Number of interactions a free-form user (mode 1 / mode 2) needs,
/// averaged over picker seeds.
pub fn free_mode_interactions(
    workbench: &Workbench,
    goal: &JoinPredicate,
    gray_out: bool,
    seeds: u64,
) -> f64 {
    let mut total = 0u64;
    for seed in 0..seeds {
        let engine = workbench.engine();
        let mut picker = RandomPicker::seeded(seed);
        let mut oracle = GoalOracle::new(goal.clone());
        let out = run_free(engine, gray_out, &mut picker, &mut oracle)
            .expect("truthful labels are consistent");
        total += out.interactions;
    }
    total as f64 / seeds as f64
}

/// Mean interactions of mode 4 for a strategy over fresh engines (random
/// strategies get distinct seeds).
pub fn mean_interactions(
    workbench: &Workbench,
    kind: StrategyKind,
    goal: &JoinPredicate,
    repeats: u64,
) -> f64 {
    let mut total = 0u64;
    for r in 0..repeats {
        let kind = match kind {
            StrategyKind::Random { seed } => StrategyKind::Random { seed: seed ^ r },
            other => other,
        };
        total += run_instrumented(workbench, kind, goal).interactions;
    }
    total as f64 / repeats as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_synth::flights;

    fn bench_fixture() -> (Workbench, JoinPredicate) {
        let wb = Workbench::new(flights::database(), &["flights", "hotels"]);
        let goal = flights::q2(wb.engine().universe());
        (wb, goal)
    }

    #[test]
    fn instrumented_run_converges_correctly() {
        let (wb, goal) = bench_fixture();
        let m = run_instrumented(&wb, StrategyKind::LookaheadMinPrune, &goal);
        assert!(m.correct);
        assert!(m.interactions >= 2);
        assert!(m.total >= m.mean_choose);
    }

    #[test]
    fn free_mode_gray_out_never_worse() {
        let (wb, goal) = bench_fixture();
        let noisy = free_mode_interactions(&wb, &goal, false, 6);
        let gray = free_mode_interactions(&wb, &goal, true, 6);
        assert!(gray <= noisy, "gray {gray} vs noisy {noisy}");
    }

    #[test]
    fn mean_interactions_varies_random_seed() {
        let (wb, goal) = bench_fixture();
        let mean = mean_interactions(&wb, StrategyKind::Random { seed: 3 }, &goal, 4);
        assert!(mean >= 2.0);
    }

    #[test]
    fn workbench_reuses_database() {
        let (wb, _) = bench_fixture();
        let e1 = wb.engine();
        let e2 = wb.engine();
        assert_eq!(e1.stats().total_tuples, e2.stats().total_tuples);
    }
}
