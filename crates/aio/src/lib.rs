//! # `jim-aio` — a minimal epoll readiness layer
//!
//! The build container has no crates.io access (ROADMAP "Offline deps"),
//! so `tokio`/`mio` are out of reach. This crate is the same move as the
//! `rand`/`proptest`/`criterion` shims: the smallest possible in-repo
//! stand-in for the one capability the server needs — **readiness
//! notification over many sockets from one thread** — built directly on
//! the kernel interface. std already links libc, so plain `extern "C"`
//! declarations of `epoll_create1`/`epoll_ctl`/`epoll_wait`/`eventfd`
//! are all the FFI surface there is; everything above them is safe Rust.
//!
//! The API is deliberately tiny and level-triggered:
//!
//! * [`Poller`] — an epoll instance. [`Poller::add`]/[`Poller::modify`]/
//!   [`Poller::delete`] manage fd registrations keyed by a caller-chosen
//!   `u64` token; [`Poller::wait`] blocks for readiness.
//! * [`Events`] — the reusable wait buffer, iterated as [`Event`]s.
//! * [`Interest`] — which readiness (read/write) a registration asks for.
//! * [`Waker`] — an `eventfd` the *other* threads (worker pool, shutdown
//!   signal) use to pop a reactor out of [`Poller::wait`].
//!
//! **Platform gating:** epoll is linux-only. The crate compiles
//! everywhere; on non-linux targets [`SUPPORTED`] is `false` and
//! [`Poller::new`]/[`Waker::new`] return [`std::io::ErrorKind::Unsupported`],
//! which is what `jim-serve` keys its default `--transport` on.
//!
//! This is the only crate in the workspace allowed to use `unsafe`; the
//! server itself stays `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::time::Duration;

/// Raw file descriptor, as the kernel sees it. Identical to
/// `std::os::fd::RawFd` on unix; defined here so the crate (and its
/// dependents' cfg-free signatures) compile on every platform.
pub type RawFd = std::os::raw::c_int;

/// Whether this build carries a working epoll backend.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// Readiness a registration subscribes to. Error/full-hangup conditions
/// are always reported regardless of interest (epoll semantics); peer
/// *half*-close rides read interest only (see [`Poller::add`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Neither direction (error/hangup still delivered).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable now (includes peer half-close — a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup on the fd; a read will observe it without
    /// blocking, so treat it as readable too.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! The entire FFI surface: four epoll/eventfd entry points plus the
    //! fd lifecycle calls, with the ABI constants they need. Constants
    //! mirror the x86-64/aarch64 linux userspace headers.

    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel declares
    /// it packed (12 bytes); on every other architecture it has natural
    /// alignment — the cfg mirrors the userspace headers exactly.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;
    /// `SIG_DFL` as the integer `signal()` accepts.
    pub const SIG_DFL: usize = 0;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        /// Disposition passed and returned as a plain address, so the
        /// one declaration covers handlers and `SIG_DFL`.
        pub fn signal(signum: c_int, handler: usize) -> usize;
        /// Used by the signal-delivery test only.
        #[allow(dead_code)]
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
        /// Used by the signal-delivery test only.
        #[allow(dead_code)]
        pub fn getpid() -> c_int;
    }

    /// `-1`-checked syscall result → `io::Result`.
    pub fn cvt(ret: c_int) -> std::io::Result<c_int> {
        if ret < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

/// A kernel fd we own and close on drop (epoll instance or eventfd).
#[cfg(target_os = "linux")]
#[derive(Debug)]
struct OwnedFd(RawFd);

#[cfg(target_os = "linux")]
impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Errors on close are unreportable here; the fd is gone either way.
        unsafe { sys::close(self.0) };
    }
}

/// The reusable buffer [`Poller::wait`] fills. One allocation for the
/// life of the reactor.
pub struct Events {
    #[cfg(target_os = "linux")]
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// Room for up to `capacity` notifications per wait (min 1).
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        #[cfg(not(target_os = "linux"))]
        let _ = capacity;
        Events {
            #[cfg(target_os = "linux")]
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Notifications delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        #[cfg(target_os = "linux")]
        {
            self.buf[..self.len].iter().map(|raw| {
                // Copy out of the (possibly packed) struct before use.
                let bits = { raw.events };
                Event {
                    token: { raw.data },
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                }
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            std::iter::empty()
        }
    }

    /// Number of notifications delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance: register fds with tokens, wait for readiness.
#[derive(Debug)]
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: OwnedFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let fd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd: OwnedFd(fd) })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        // EPOLLRDHUP rides *read* interest: it is level-triggered and —
        // unlike EPOLLIN — cannot be drained away by reading, so a
        // registration that is not reading (reactor backpressure) must
        // not subscribe to it or a half-closed peer becomes a busy loop.
        let mut bits = 0;
        if interest.read {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.write {
            bits |= sys::EPOLLOUT;
        }
        let mut event = sys::EpollEvent {
            events: bits,
            data: token,
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd.0, op, fd, &mut event) })?;
        Ok(())
    }

    /// Register `fd` under `token`. Level-triggered; read interest also
    /// subscribes `EPOLLRDHUP`, so peer half-close reads as readiness
    /// exactly when someone is reading (`EPOLLERR`/`EPOLLHUP` are always
    /// delivered, per epoll semantics).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change an existing registration's interest (token may change too).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Remove a registration. Call **before** closing the fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event for DEL; passing
        // one unconditionally costs nothing.
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd.0, sys::EPOLL_CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Block until readiness or `timeout` (forever when `None`), filling
    /// `events`. Returns the notification count; `0` means timeout.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: std::os::raw::c_int = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps instead of spinning.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as std::os::raw::c_int,
        };
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd.0,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as std::os::raw::c_int,
                    ms,
                )
            };
            match sys::cvt(n) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// Unsupported off linux: always `ErrorKind::Unsupported`.
    pub fn new() -> io::Result<Poller> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
        Err(unsupported())
    }
}

#[cfg(not(target_os = "linux"))]
fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "jim-aio: epoll is linux-only; use the threads transport",
    )
}

/// Wakes a [`Poller`] out of [`Poller::wait`] from another thread — an
/// `eventfd` registered like any other readable fd. Clone freely; all
/// clones share the one fd. [`Waker::wake`] is async-signal-unsafe-free,
/// non-blocking and idempotent (an undrained waker stays readable).
#[derive(Debug, Clone)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    fd: std::sync::Arc<OwnedFd>,
}

#[cfg(target_os = "linux")]
impl Waker {
    /// A fresh non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker {
            fd: std::sync::Arc::new(OwnedFd(fd)),
        })
    }

    /// The fd to register with the poller (read interest).
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.0
    }

    /// Make the waker's fd readable. Never blocks: a saturated eventfd
    /// counter (`EAGAIN`) already guarantees a pending wakeup.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe {
            sys::write(
                self.fd.0,
                (&raw const one).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    /// Consume pending wakeups so the fd stops reading as ready. Call
    /// from the reactor when the waker's token fires.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // One read resets an eventfd counter to zero.
        unsafe {
            sys::read(
                self.fd.0,
                (&raw mut count).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

/// Blocks until the process receives `SIGINT` or `SIGTERM` — the hook a
/// server's shutdown path hangs off. Created by [`watch_termination`].
#[derive(Debug)]
pub struct Termination {
    #[cfg(target_os = "linux")]
    fd: std::sync::Arc<OwnedFd>,
}

/// The eventfd the signal handler writes to. One per process: `signal()`
/// dispositions are process-global anyway.
#[cfg(target_os = "linux")]
static TERM_FD: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(-1);

/// The installed handler: `write(2)` is async-signal-safe, and that is
/// the only thing done here — all real work happens in the thread
/// blocked on [`Termination::wait`].
#[cfg(target_os = "linux")]
extern "C" fn term_handler(_sig: std::os::raw::c_int) {
    // SeqCst to pair with the store in `watch_termination`: a handler
    // that observes the fd must also observe the eventfd creation that
    // preceded the store (jim-lint `atomics` pins TERM_FD to SeqCst).
    let fd = TERM_FD.load(std::sync::atomic::Ordering::SeqCst);
    if fd >= 0 {
        let one: u64 = 1;
        unsafe { sys::write(fd, (&raw const one).cast(), std::mem::size_of::<u64>()) };
    }
}

/// Install `SIGINT`/`SIGTERM` handlers that mark a blocking fd readable
/// instead of killing the process. Dedicate a thread to
/// [`Termination::wait`] and trigger the graceful shutdown from there.
/// Off linux this returns [`io::ErrorKind::Unsupported`] and signal
/// dispositions are left untouched.
#[cfg(target_os = "linux")]
pub fn watch_termination() -> io::Result<Termination> {
    // Blocking eventfd: `wait` parks in read(2) until the handler fires.
    let fd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC) })?;
    TERM_FD.store(fd, std::sync::atomic::Ordering::SeqCst);
    let handler = term_handler as *const () as usize;
    unsafe {
        sys::signal(sys::SIGINT, handler);
        sys::signal(sys::SIGTERM, handler);
    }
    Ok(Termination {
        fd: std::sync::Arc::new(OwnedFd(fd)),
    })
}

/// See [`watch_termination`] — unsupported off linux.
#[cfg(not(target_os = "linux"))]
pub fn watch_termination() -> io::Result<Termination> {
    Err(unsupported())
}

#[cfg(target_os = "linux")]
impl Termination {
    /// Block until a termination signal arrives, then restore the
    /// default dispositions — a second Ctrl-C kills immediately instead
    /// of queueing behind a drain that may be stuck.
    pub fn wait(&self) {
        let mut count: u64 = 0;
        unsafe {
            sys::read(
                self.fd.0,
                (&raw mut count).cast(),
                std::mem::size_of::<u64>(),
            );
            sys::signal(sys::SIGINT, sys::SIG_DFL);
            sys::signal(sys::SIGTERM, sys::SIG_DFL);
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Termination {
    /// Unsupported off linux (never constructed).
    pub fn wait(&self) {}
}

#[cfg(not(target_os = "linux"))]
impl Waker {
    /// Unsupported off linux: always `ErrorKind::Unsupported`.
    pub fn new() -> io::Result<Waker> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn as_raw_fd(&self) -> RawFd {
        -1
    }

    /// Unsupported off linux.
    pub fn wake(&self) -> io::Result<()> {
        Err(unsupported())
    }

    /// Unsupported off linux.
    pub fn drain(&self) {}
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    const A: u64 = 7;
    const W: u64 = 9;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), A, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short wait times out.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        assert!(events.is_empty());

        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token, A);
        assert!(ev.readable && !ev.writable);

        // Level-triggered: still readable until drained.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token, A);
        let mut buf = [0u8; 8];
        assert_eq!((&server).read(&mut buf).unwrap(), 1);
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn write_interest_and_modify_and_delete() {
        let (client, server) = pair();
        let poller = Poller::new().unwrap();
        // A fresh socket's send buffer is empty: write-ready immediately.
        poller.add(server.as_raw_fd(), A, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == A && e.writable));

        // Interest::NONE silences it…
        poller
            .modify(server.as_raw_fd(), A, Interest::NONE)
            .unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        // …and delete unregisters for good.
        poller
            .modify(server.as_raw_fd(), A, Interest::WRITE)
            .unwrap();
        poller.delete(server.as_raw_fd()).unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        drop(client);
    }

    #[test]
    fn half_close_is_masked_without_read_interest() {
        // The RDHUP condition is level-triggered and cannot be consumed
        // by reading, so it must be silenceable: a registration with no
        // read interest (a reactor backpressuring a connection) must not
        // wake on peer half-close — that would be a busy loop.
        let (client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), A, Interest::NONE).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap(),
            0,
            "half-close is invisible while not reading"
        );
        // Subscribing to read surfaces it immediately.
        poller
            .modify(server.as_raw_fd(), A, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().next().expect("half-close notifies").readable);
    }

    #[test]
    fn peer_close_reads_as_readiness() {
        let (client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), A, Interest::READ).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("close notifies");
        assert!(ev.readable || ev.hangup);
    }

    #[test]
    fn waker_pops_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.as_raw_fd(), W, Interest::READ).unwrap();

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
            // Coalesced wakes never block.
            remote.wake().unwrap();
            remote.wake().unwrap();
        });

        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token, W);
        // All wakes are in by now; one drain absorbs the coalesced count.
        t.join().unwrap();
        waker.drain();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn supported_on_this_platform() {
        assert!(SUPPORTED && Poller::new().is_ok());
    }

    #[test]
    fn termination_watcher_catches_a_real_sigterm() {
        // With the watcher installed, SIGTERM must not kill this test
        // process — the handler marks the fd and `wait` returns. (If the
        // install is broken the raise kills the whole test binary, which
        // is exactly the loud failure we want.)
        let term = watch_termination().unwrap();
        let waiter = std::thread::spawn(move || term.wait());
        std::thread::sleep(Duration::from_millis(30));
        unsafe { super::sys::kill(super::sys::getpid(), super::sys::SIGTERM) };
        waiter.join().expect("wait returned instead of dying");
    }
}
