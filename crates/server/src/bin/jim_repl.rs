//! `jim` — an interactive REPL client for `jim-serve`.
//!
//! Lets a human actually play the paper's Figure-3 "most informative"
//! loop: open a session, get asked about candidate tuples, answer y/n,
//! watch the candidate space collapse, and read the inferred SQL.
//!
//! ```text
//! jim                       # in-process server (no network needed)
//! jim --connect HOST:PORT   # against a running jim-serve
//! ```
//!
//! Commands: `open [scenario] [strategy]`, `load <left.csv> <right.csv>`,
//! `resume <id>` (rehydrate a journaled session on a `--data-dir` server),
//! `ask`, `y`/`n`, `answer <tuple> <+|->`, `answer <t>=<+|-> ...` (label a
//! whole batch in one engine pass), `top <k>`, `stats`, `explain [tuple]`,
//! `sql`, `transcript`, `sessions`, `metrics` (the server's observability
//! snapshot), `close`, `quit`.
//!
//! `open` and `load` accept sampling knobs as trailing `max=N` (enumerate
//! or sample at most N product tuples) and `seed=N` (sample RNG seed)
//! words; the server reports when a session runs over a sample.

#![forbid(unsafe_code)]

use jim_json::Json;
use jim_server::handler::Handler;
use jim_server::store::{SessionStore, StoreConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Where requests go: a TCP peer or an in-process handler.
enum Conn {
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
    Local(Handler),
}

impl Conn {
    fn send(&mut self, line: &str) -> Result<Json, String> {
        let raw = match self {
            Conn::Local(handler) => handler.handle_line(line),
            Conn::Tcp { reader, writer } => {
                // One write per request; a split-off newline segment would
                // stall on Nagle + delayed ACK.
                writer
                    .write_all(format!("{line}\n").as_bytes())
                    .map_err(|e| e.to_string())?;
                writer.flush().map_err(|e| e.to_string())?;
                let mut response = String::new();
                let n = reader.read_line(&mut response).map_err(|e| e.to_string())?;
                if n == 0 {
                    return Err("server closed the connection".into());
                }
                response
            }
        };
        Json::parse(raw.trim()).map_err(|e| format!("bad response: {e}"))
    }
}

struct Repl {
    conn: Conn,
    session: Option<u64>,
    columns: Vec<String>,
}

fn escape(s: &str) -> String {
    Json::from(s).render()
}

/// Split trailing `max=N` / `seed=N` words off a command line; returns the
/// remaining words and the extra JSON fields (`,"max_product":N,...`).
fn sampling_opts<'a>(words: &[&'a str]) -> Result<(Vec<&'a str>, String), String> {
    let mut rest = Vec::new();
    let mut extra = String::new();
    for w in words {
        let (key, field) = match w.split_once('=') {
            Some(("max", v)) => (v, "max_product"),
            Some(("seed", v)) => (v, "sample_seed"),
            _ => {
                rest.push(*w);
                continue;
            }
        };
        let n: u64 = key
            .parse()
            .map_err(|_| format!("bad value in `{w}` (want a non-negative integer)"))?;
        extra.push_str(&format!(r#","{field}":{n}"#));
    }
    Ok((rest, extra))
}

impl Repl {
    fn request(&mut self, line: &str) -> Option<Json> {
        match self.conn.send(line) {
            Err(e) => {
                println!("! {e}");
                None
            }
            Ok(response) => {
                if response.get("ok").and_then(Json::as_bool) == Some(false) {
                    let msg = response
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error");
                    // Transport-level refusals carry a machine `code`;
                    // the two connection-fate ones deserve a hint beyond
                    // the message (the server is about to hang up on us).
                    match response.get("code").and_then(Json::as_str) {
                        Some("overloaded") => {
                            println!("! {msg}\n! (server shed this connection; retry shortly)")
                        }
                        Some("idle_timeout") => {
                            println!("! {msg}\n! (reconnect with --connect to continue)")
                        }
                        _ => println!("! {msg}"),
                    }
                    None
                } else {
                    Some(response)
                }
            }
        }
    }

    fn session_id(&self) -> Option<u64> {
        if self.session.is_none() {
            println!("! no open session; `open flights` first (try `help`)");
        }
        self.session
    }

    fn show_question(&self, response: &Json) {
        if response.get("resolved").and_then(Json::as_bool) == Some(true) {
            println!("resolved! inferred query:");
            if let Some(sql) = response.get("sql").and_then(Json::as_str) {
                println!("{sql}");
            }
            return;
        }
        let tuple = response.get("tuple").and_then(Json::as_u64).unwrap_or(0);
        println!("is this tuple part of the join result you have in mind?  [y/n]");
        if let Some(values) = response.get("values").and_then(Json::as_array) {
            for (column, value) in self.columns.iter().zip(values) {
                println!("  {column:>24} = {}", value.as_str().unwrap_or("?"));
            }
        }
        let left = response
            .get("informative_remaining")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        println!("  (tuple #{tuple}; {left} informative candidates left)");
    }

    fn open(&mut self, words: &[&str]) {
        let (words, extra) = match sampling_opts(words) {
            Ok(parsed) => parsed,
            Err(e) => {
                println!("! {e}");
                return;
            }
        };
        let scenario = words.first().copied().unwrap_or("flights");
        let strategy = words.get(1).copied().unwrap_or("lookahead-minprune");
        let line = format!(
            r#"{{"op":"CreateSession","source":{{"scenario":{}}},"strategy":{}{}}}"#,
            escape(scenario),
            escape(strategy),
            extra,
        );
        self.finish_open(line);
    }

    fn load(&mut self, words: &[&str]) {
        let (words, extra) = match sampling_opts(words) {
            Ok(parsed) => parsed,
            Err(e) => {
                println!("! {e}");
                return;
            }
        };
        if words.len() < 2 {
            println!("! usage: load <left.csv> <right.csv> [strategy] [max=N] [seed=N]");
            return;
        }
        let mut relations = Vec::new();
        for (i, path) in words[..2].iter().enumerate() {
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
                .unwrap_or_else(|| format!("r{}", i + 1));
            match std::fs::read_to_string(path) {
                Err(e) => {
                    println!("! {path}: {e}");
                    return;
                }
                Ok(text) => relations.push(format!(
                    r#"{{"name":{},"csv":{}}}"#,
                    escape(&name),
                    escape(&text)
                )),
            }
        }
        let strategy = words.get(2).copied().unwrap_or("lookahead-minprune");
        let line = format!(
            r#"{{"op":"CreateSession","source":{{"relations":[{}]}},"strategy":{}{}}}"#,
            relations.join(","),
            escape(strategy),
            extra,
        );
        self.finish_open(line);
    }

    fn finish_open(&mut self, line: String) {
        if let Some(r) = self.request(&line) {
            self.session = r.get("session").and_then(Json::as_u64);
            self.columns = r
                .get("columns")
                .and_then(Json::as_array)
                .map(|cols| {
                    cols.iter()
                        .filter_map(|c| c.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            let sampled = if r.get("sampled").and_then(Json::as_bool) == Some(true) {
                " (a uniform sample of a larger product)"
            } else {
                ""
            };
            println!(
                "session {} open: {} candidate tuples{}, {} candidate atoms, strategy {}",
                self.session.unwrap_or(0),
                r.get("tuples").and_then(Json::as_u64).unwrap_or(0),
                sampled,
                r.get("atoms").and_then(Json::as_u64).unwrap_or(0),
                r.get("strategy").and_then(Json::as_str).unwrap_or("?"),
            );
            println!("`ask` for a question, `y`/`n` to answer, `sql` for the current guess");
        }
    }

    /// `resume <id>` — rehydrate a journaled session (evicted, or left by
    /// a previous server process over the same data dir) and adopt it.
    fn resume(&mut self, words: &[&str]) {
        let Some(id) = words.first().and_then(|w| w.parse::<u64>().ok()) else {
            println!("! usage: resume <session-id>");
            return;
        };
        if let Some(r) = self.request(&format!(r#"{{"op":"ResumeSession","session":{id}}}"#)) {
            self.session = r.get("session").and_then(Json::as_u64);
            self.columns = r
                .get("columns")
                .and_then(Json::as_array)
                .map(|cols| {
                    cols.iter()
                        .filter_map(|c| c.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            println!(
                "session {id} resumed: {} candidate tuples, {} label(s) replayed, strategy {}{}",
                r.get("tuples").and_then(Json::as_u64).unwrap_or(0),
                r.get("interactions").and_then(Json::as_u64).unwrap_or(0),
                r.get("strategy").and_then(Json::as_str).unwrap_or("?"),
                if r.get("resolved").and_then(Json::as_bool) == Some(true) {
                    " — already resolved, `sql` shows the query"
                } else {
                    ""
                },
            );
        }
    }

    fn ask(&mut self) {
        let Some(id) = self.session_id() else { return };
        if let Some(r) = self.request(&format!(r#"{{"op":"NextQuestion","session":{id}}}"#)) {
            self.show_question(&r);
        }
    }

    fn answer(&mut self, tuple: Option<u64>, label: char) {
        let Some(id) = self.session_id() else { return };
        let line = match tuple {
            Some(t) => format!(r#"{{"op":"Answer","session":{id},"tuple":{t},"label":"{label}"}}"#),
            None => format!(r#"{{"op":"Answer","session":{id},"label":"{label}"}}"#),
        };
        if let Some(r) = self.request(&line) {
            println!(
                "pruned {} tuple(s); {} informative left",
                r.get("pruned").and_then(Json::as_u64).unwrap_or(0),
                r.get("informative_remaining")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
            if r.get("resolved").and_then(Json::as_bool) == Some(true) {
                println!("resolved! inferred query:");
                if let Some(sql) = r.get("sql").and_then(Json::as_str) {
                    println!("{sql}");
                }
            } else {
                self.ask();
            }
        }
    }

    /// `answer 3=+ 7=- 9=+` — one `AnswerBatch` request, one propagation
    /// pass server-side, applied atomically.
    fn answer_batch(&mut self, pairs: &[&str]) {
        let Some(id) = self.session_id() else { return };
        let mut labels = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let parsed = pair.split_once('=').and_then(|(t, l)| {
                let sign = match l {
                    "+" => '+',
                    "-" => '-',
                    _ => return None,
                };
                t.parse::<u64>().ok().map(|t| (t, sign))
            });
            match parsed {
                Some((t, sign)) => {
                    labels.push(format!(r#"{{"tuple":{t},"label":"{sign}"}}"#));
                }
                None => {
                    println!("! bad batch entry `{pair}` (want <tuple>=<+|->)");
                    return;
                }
            }
        }
        let line = format!(
            r#"{{"op":"AnswerBatch","session":{id},"labels":[{}]}}"#,
            labels.join(",")
        );
        if let Some(r) = self.request(&line) {
            println!(
                "applied {} label(s) in one pass; pruned {} tuple(s); {} informative left",
                r.get("applied").and_then(Json::as_u64).unwrap_or(0),
                r.get("pruned").and_then(Json::as_u64).unwrap_or(0),
                r.get("informative_remaining")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
            if r.get("resolved").and_then(Json::as_bool) == Some(true) {
                println!("resolved! inferred query:");
                if let Some(sql) = r.get("sql").and_then(Json::as_str) {
                    println!("{sql}");
                }
            }
        }
    }

    fn simple(&mut self, op: &str, extra: &str, show: &[&str]) {
        let Some(id) = self.session_id() else { return };
        let line = format!(r#"{{"op":"{op}","session":{id}{extra}}}"#);
        if let Some(r) = self.request(&line) {
            for key in show {
                if let Some(v) = r.get(key) {
                    match v.as_str() {
                        Some(s) => println!("{s}"),
                        None => println!("{key}: {v}"),
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        println!("JIM — interactive join query inference (type `help`)");
        let stdin = std::io::stdin();
        loop {
            print!("jim> ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.split_first() {
                None => {}
                Some((&"help", _)) => {
                    println!("commands:");
                    println!(
                        "  open [scenario] [strategy]   flights | setgame | tpch | random | social"
                    );
                    println!("  load <l.csv> <r.csv> [strat] infer over your own data");
                    println!("  ... open/load accept max=N (sample cap) and seed=N (sample seed)");
                    println!("  resume <id>                  rehydrate a journaled session");
                    println!("  ask                          next most-informative question");
                    println!("  y | n                        answer the pending question");
                    println!("  answer <tuple> <+|->         label an explicit tuple");
                    println!("  answer <t>=<+|-> ...         label a batch in one pass");
                    println!("  top <k>                      k most informative tuples");
                    println!("  stats | explain [t] | sql | transcript | sessions | close | quit");
                    println!("  metrics                      server counters & latency quantiles");
                }
                Some((&"open", rest)) => self.open(rest),
                Some((&"load", rest)) => self.load(rest),
                Some((&"resume", rest)) => self.resume(rest),
                Some((&"ask", _)) => self.ask(),
                Some((&"y", _)) => self.answer(None, '+'),
                Some((&"n", _)) => self.answer(None, '-'),
                Some((&"answer", rest)) => match rest {
                    [t, l] if l.starts_with('+') || l.starts_with('-') => match t.parse() {
                        Ok(t) => self.answer(Some(t), l.chars().next().unwrap_or('+')),
                        Err(_) => println!("! bad tuple rank `{t}`"),
                    },
                    pairs if !pairs.is_empty() && pairs.iter().all(|w| w.contains('=')) => {
                        self.answer_batch(pairs)
                    }
                    _ => println!("! usage: answer <tuple> <+|->  or  answer <t>=<+|-> ..."),
                },
                Some((&"top", rest)) => {
                    let k = rest
                        .first()
                        .and_then(|k| k.parse::<u64>().ok())
                        .unwrap_or(3);
                    let Some(id) = self.session_id() else {
                        continue;
                    };
                    let line = format!(r#"{{"op":"TopK","session":{id},"k":{k}}}"#);
                    if let Some(r) = self.request(&line) {
                        if r.get("resolved").and_then(Json::as_bool) == Some(true) {
                            self.show_question(&r);
                        } else if let Some(tuples) = r.get("tuples").and_then(Json::as_array) {
                            for t in tuples {
                                let id = t.get("tuple").and_then(Json::as_u64).unwrap_or(0);
                                let values: Vec<&str> = t
                                    .get("values")
                                    .and_then(Json::as_array)
                                    .map(|vs| vs.iter().filter_map(Json::as_str).collect())
                                    .unwrap_or_default();
                                println!("  #{id}: ({})", values.join(", "));
                            }
                            println!("label with `answer <tuple> <+|->`");
                        }
                    }
                }
                Some((&"stats", _)) => self.simple("Stats", "", &["summary"]),
                Some((&"explain", rest)) => {
                    let extra = match rest.first().and_then(|t| t.parse::<u64>().ok()) {
                        Some(t) => format!(r#","tuple":{t}"#),
                        None => String::new(),
                    };
                    self.simple("Explain", &extra, &["explanation"]);
                }
                Some((&"sql", _)) => self.simple("Sql", "", &["predicate", "sql"]),
                Some((&"transcript", _)) => self.simple("Transcript", "", &["text"]),
                Some((&"sessions", _)) => {
                    if let Some(r) = self.request(r#"{"op":"ListSessions"}"#) {
                        println!("{r}");
                    }
                }
                Some((&"metrics", _)) => {
                    if let Some(r) = self.request(r#"{"op":"Metrics"}"#) {
                        println!("{r}");
                    }
                }
                Some((&"close", _)) => {
                    if let Some(id) = self.session.take() {
                        self.request(&format!(r#"{{"op":"CloseSession","session":{id}}}"#));
                        println!("closed session {id}");
                    }
                }
                Some((&"quit" | &"exit", _)) => break,
                Some((other, _)) => println!("! unknown command `{other}` (try `help`)"),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let conn = match args.as_slice() {
        [] => {
            println!("(no --connect given: running an in-process server)");
            Conn::Local(Handler::new(Arc::new(SessionStore::new(
                StoreConfig::default(),
            ))))
        }
        [flag, addr] if flag == "--connect" => match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let reader = match stream.try_clone() {
                    Ok(read_half) => BufReader::new(read_half),
                    Err(e) => {
                        eprintln!("jim: cannot clone TCP stream for reading: {e}");
                        std::process::exit(1);
                    }
                };
                println!("connected to {addr}");
                Conn::Tcp {
                    reader,
                    writer: stream,
                }
            }
            Err(e) => {
                eprintln!("jim: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: jim [--connect HOST:PORT]");
            std::process::exit(2);
        }
    };
    Repl {
        conn,
        session: None,
        columns: Vec::new(),
    }
    .run();
}
