//! `jim-serve` — the JIM inference service over TCP.
//!
//! ```text
//! jim-serve [--port N] [--host ADDR] [--max-sessions N] [--ttl-secs N]
//!           [--shards N] [--max-product N] [--max-batch N] [--data-dir PATH]
//!           [--transport threads|epoll] [--metrics-interval SECS]
//!           [--reactors N] [--max-connections N] [--idle-timeout SECS]
//!           [--max-inflight N] [--max-per-ip N]
//! ```
//!
//! With `--data-dir`, every session is journaled to disk (write-ahead,
//! one JSON line per answered batch): LRU/TTL eviction keeps sessions
//! resumable by id, and a restarted server over the same directory picks
//! them all up. Without it (the default), sessions are memory-only.
//!
//! `--transport` picks the front end: `epoll` (the default on linux) is
//! a non-blocking event loop — `--reactors N` reactor threads (default
//! `min(cores, 4)`, also `JIM_REACTORS`), each with its own poller and
//! worker pool, fed round-robin by an accept thread, so ten thousand
//! idle sessions don't cost ten thousand stacks; `threads` (the default
//! elsewhere, where `jim-aio` has no backend) is the portable
//! thread-per-connection fallback. The wire behavior is identical on
//! both, including the guardrails: `--max-connections` sheds over-cap
//! connects with a typed `overloaded` error, `--idle-timeout` reaps
//! peers that complete no request line in SECS seconds (0 disables),
//! `--max-inflight` caps pipelined requests per connection (epoll), and
//! `--max-per-ip` sheds a single address's connections past N with the
//! same `overloaded` error (0 disables, the default).
//!
//! `--metrics-interval SECS` logs a one-line metrics summary (requests,
//! errors, latency quantiles, live connections, resident sessions) every
//! SECS seconds; the same numbers are always available on demand through
//! the `Metrics` wire op.
//!
//! Speaks the JSON-lines protocol of `jim_server::protocol`; try it with
//! the `jim` REPL client or plain `nc`.

#![forbid(unsafe_code)]

use jim_server::handler::{Handler, ServerLimits};
use jim_server::journal::JournalStore;
use jim_server::serve::{serve_with, spawn_sweeper, Shutdown, Transport, TransportLimits};
use jim_server::store::{SessionStore, StoreConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: jim-serve [--port N] [--host ADDR] [--max-sessions N] [--ttl-secs N] \
         [--shards N] [--max-product N] [--max-batch N] [--data-dir PATH] \
         [--transport threads|epoll] [--metrics-interval SECS] \
         [--reactors N] [--max-connections N] [--idle-timeout SECS] [--max-inflight N] \
         [--max-per-ip N]"
    );
    std::process::exit(2);
}

/// The last commit that touched `crates/lint`, best-effort: the rule
/// set a binary was built under is part of its provenance (matching
/// the `lint_rev` field jim-load stamps into BENCH_load.json), but a
/// deploy without git on PATH or outside a checkout still serves.
fn lint_rev() -> String {
    std::process::Command::new("git")
        .args(["log", "-n1", "--format=%h", "--", "crates/lint"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn main() -> std::io::Result<()> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 7914u16; // "JIM" on a phone pad, more or less.
    let mut config = StoreConfig::default();
    let mut limits = ServerLimits::default();
    let mut data_dir: Option<String> = None;
    let mut transport = Transport::default_for_platform();
    let mut metrics_interval: Option<Duration> = None;
    let mut transport_limits = TransportLimits::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("jim-serve: {flag} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--port" => match value("--port").parse() {
                Ok(p) => port = p,
                Err(_) => usage(),
            },
            "--host" => host = value("--host"),
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) if n > 0 => config.max_sessions = n,
                _ => usage(),
            },
            "--ttl-secs" => match value("--ttl-secs").parse() {
                Ok(secs) if secs > 0 => config.ttl = Duration::from_secs(secs),
                _ => usage(),
            },
            "--shards" => match value("--shards").parse() {
                Ok(n) if n > 0 => config.shards = n,
                _ => usage(),
            },
            "--max-product" => match value("--max-product").parse() {
                Ok(n) if n > 0 => limits.max_product = n,
                _ => usage(),
            },
            "--max-batch" => match value("--max-batch").parse() {
                Ok(n) if n > 0 => limits.max_batch = n,
                _ => usage(),
            },
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--metrics-interval" => match value("--metrics-interval").parse() {
                Ok(secs) if secs > 0 => metrics_interval = Some(Duration::from_secs(secs)),
                _ => usage(),
            },
            "--transport" => match value("--transport").parse() {
                Ok(t) => transport = t,
                Err(message) => {
                    eprintln!("jim-serve: {message}");
                    usage();
                }
            },
            "--reactors" => match value("--reactors").parse() {
                Ok(n) if n > 0 => transport_limits.reactors = n,
                _ => usage(),
            },
            "--max-connections" => match value("--max-connections").parse() {
                Ok(n) if n > 0 => transport_limits.max_connections = n,
                _ => usage(),
            },
            // 0 disables the idle reaper (a debugging convenience).
            "--idle-timeout" => match value("--idle-timeout").parse::<u64>() {
                Ok(0) => transport_limits.idle_timeout = None,
                Ok(secs) => transport_limits.idle_timeout = Some(Duration::from_secs(secs)),
                Err(_) => usage(),
            },
            "--max-inflight" => match value("--max-inflight").parse() {
                Ok(n) if n > 0 => transport_limits.max_inflight = n,
                _ => usage(),
            },
            // 0 disables the per-address quota (the default).
            "--max-per-ip" => match value("--max-per-ip").parse::<usize>() {
                Ok(0) => transport_limits.max_per_ip = None,
                Ok(n) => transport_limits.max_per_ip = Some(n),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("jim-serve: unknown flag {other}");
                usage();
            }
        }
    }

    let store = match &data_dir {
        None => SessionStore::new(config),
        Some(dir) => {
            let journal = JournalStore::open(dir)?;
            let on_disk = journal.ids().len();
            eprintln!("jim-serve: journaling sessions under {dir} ({on_disk} resumable on disk)");
            SessionStore::with_journal(config, journal)
        }
    };
    let store = Arc::new(store);
    let shutdown = Shutdown::new();
    // SIGINT/SIGTERM drain gracefully: stop accepting, flush in-flight
    // responses, then exit (a second signal kills immediately).
    match jim_aio::watch_termination() {
        Ok(term) => {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                term.wait();
                eprintln!("jim-serve: termination signal; draining");
                shutdown.trigger();
            });
        }
        Err(_) => eprintln!("jim-serve: no signal hook on this platform; stop with a plain kill"),
    }
    spawn_sweeper(
        &store,
        Duration::from_secs(5).min(config.ttl),
        shutdown.clone(),
    );
    if let Some(interval) = metrics_interval {
        let metrics = store.metrics().clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            // wait_timeout returns true iff shutdown triggered — the
            // reporter exits on drain instead of logging into the void.
            while !shutdown.wait_timeout(interval) {
                eprintln!("jim-serve: {}", metrics.summary());
            }
        });
    }
    let shards = store.num_shards();
    let handler = Arc::new(Handler::with_limits(store, limits));

    let listener = TcpListener::bind((host.as_str(), port))?;
    eprintln!(
        "jim-serve: listening on {} via the {} transport ({} reactors, max {} connections, \
         idle timeout {}, {} in-flight/conn, per-ip cap {}; max {} sessions, {} shards, \
         ttl {:?}, factorize past {} tuples, answer batches up to {} labels, sessions {}, \
         simd {}, lint rules @ {})",
        listener.local_addr()?,
        transport,
        transport_limits.reactors,
        transport_limits.max_connections,
        match transport_limits.idle_timeout {
            Some(t) => format!("{t:?}"),
            None => "off".to_string(),
        },
        transport_limits.max_inflight,
        match transport_limits.max_per_ip {
            Some(n) => n.to_string(),
            None => "off".to_string(),
        },
        config.max_sessions,
        shards,
        config.ttl,
        limits.max_product,
        limits.max_batch,
        match &data_dir {
            Some(dir) => format!("durable in {dir}"),
            None => "in memory only".to_string(),
        },
        jim_simd::active_name(),
        lint_rev()
    );
    serve_with(listener, handler, transport, shutdown, transport_limits)
}
