//! `jim-serve` — the JIM inference service over TCP.
//!
//! ```text
//! jim-serve [--port N] [--host ADDR] [--max-sessions N] [--ttl-secs N]
//!           [--shards N] [--max-product N] [--max-batch N]
//! ```
//!
//! Speaks the JSON-lines protocol of `jim_server::protocol`; try it with
//! the `jim` REPL client or plain `nc`.

use jim_server::handler::{Handler, ServerLimits};
use jim_server::serve::{serve, spawn_sweeper};
use jim_server::store::{SessionStore, StoreConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: jim-serve [--port N] [--host ADDR] [--max-sessions N] [--ttl-secs N] \
         [--shards N] [--max-product N] [--max-batch N]"
    );
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 7914u16; // "JIM" on a phone pad, more or less.
    let mut config = StoreConfig::default();
    let mut limits = ServerLimits::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("jim-serve: {flag} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--port" => match value("--port").parse() {
                Ok(p) => port = p,
                Err(_) => usage(),
            },
            "--host" => host = value("--host"),
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) if n > 0 => config.max_sessions = n,
                _ => usage(),
            },
            "--ttl-secs" => match value("--ttl-secs").parse() {
                Ok(secs) if secs > 0 => config.ttl = Duration::from_secs(secs),
                _ => usage(),
            },
            "--shards" => match value("--shards").parse() {
                Ok(n) if n > 0 => config.shards = n,
                _ => usage(),
            },
            "--max-product" => match value("--max-product").parse() {
                Ok(n) if n > 0 => limits.max_product = n,
                _ => usage(),
            },
            "--max-batch" => match value("--max-batch").parse() {
                Ok(n) if n > 0 => limits.max_batch = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("jim-serve: unknown flag {other}");
                usage();
            }
        }
    }

    let store = Arc::new(SessionStore::new(config));
    spawn_sweeper(&store, Duration::from_secs(5).min(config.ttl));
    let shards = store.num_shards();
    let handler = Arc::new(Handler::with_limits(store, limits));

    let listener = TcpListener::bind((host.as_str(), port))?;
    eprintln!(
        "jim-serve: listening on {} (max {} sessions, {} shards, ttl {:?}, sample past {} \
         tuples, answer batches up to {} labels)",
        listener.local_addr()?,
        config.max_sessions,
        shards,
        config.ttl,
        limits.max_product,
        limits.max_batch
    );
    serve(listener, handler)
}
