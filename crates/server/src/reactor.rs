//! The epoll event-loop transport (linux only).
//!
//! One **reactor thread** owns every connection: it multiplexes
//! readiness through a `jim-aio` [`Poller`] (level-triggered
//! epoll), accumulates request bytes per connection until `\n`, and
//! writes buffered responses back with backpressure. It never runs a
//! request itself — complete lines are handed to a small **worker pool**
//! (bounded, independent of connection count) so a slow `CreateSession`
//! or journal replay cannot stall the loop; finished responses come back
//! over a completion queue and an eventfd [`Waker`]. The result is the
//! serving posture the interactive workload wants: thousands of
//! mostly-idle sessions held for the price of their buffers, with
//! `reactor + workers` threads total instead of one stack per socket.
//!
//! Per-connection state machine (see [`Conn`]):
//!
//! ```text
//!   read-accumulate ──complete line──▶ in-flight at worker pool
//!        ▲   │ cap hit: queue error, close-after-flush       │
//!        │   ▼                                               ▼
//!        └── idle ◀──────flush response (EPOLLOUT on short write)
//! ```
//!
//! Invariants:
//!
//! * at most **one** line per connection is in flight — responses come
//!   back in request order with no per-connection queueing;
//! * read interest is dropped while a request is in flight or a
//!   response is unflushed, so a pipelining peer is backpressured at
//!   the socket instead of growing server buffers;
//! * a partial line never exceeds [`MAX_LINE_BYTES`]: past the cap the
//!   peer gets the same answered-then-dropped treatment as on the
//!   threads transport;
//! * [`Shutdown`]: stop accepting, drop idle connections, let in-flight
//!   responses finish and flush, then return (with a hard deadline so a
//!   peer that never drains its socket cannot pin the process).

use crate::handler::Handler;
use crate::metrics::ServerMetrics;
use crate::serve::{oversize_response, respond_to, Shutdown, DRAIN_DEADLINE, MAX_LINE_BYTES};
use jim_aio::{Events, Interest, Poller, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
/// Connection tokens count up from here and are **never reused**, so a
/// completion for a connection that died mid-request cannot be delivered
/// to a newcomer that recycled its slot.
const FIRST_CONN_TOKEN: u64 = 2;

/// Socket read granularity.
const READ_CHUNK: usize = 64 * 1024;

/// Worker-pool bounds: enough to hide one slow request behind others,
/// few enough that the "bounded thread count" promise stays meaningful.
const MIN_WORKERS: usize = 2;
const MAX_WORKERS: usize = 8;

fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(MIN_WORKERS)
        .clamp(MIN_WORKERS, MAX_WORKERS)
}

/// One complete request line travelling to the worker pool.
struct Job {
    token: u64,
    line: Vec<u8>,
}

/// The reactor→workers channel: a plain mutex+condvar queue (std has no
/// mpmc channel, and this needs no more than push/pop/close).
#[derive(Default)]
struct JobQueue {
    state: Mutex<JobQueueState>,
    cv: Condvar,
}

#[derive(Default)]
struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("job queue");
        state.jobs.push_back(job);
        self.cv.notify_one();
    }

    /// Block for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("job queue");
        }
    }

    fn close(&self) {
        self.state.lock().expect("job queue").closed = true;
        self.cv.notify_all();
    }
}

/// The workers→reactor channel: finished responses, plus the waker that
/// pops the reactor out of `epoll_wait` to collect them.
struct Completions {
    ready: Mutex<Vec<(u64, Option<String>)>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, token: u64, response: Option<String>) {
        self.ready
            .lock()
            .expect("completions")
            .push((token, response));
        let _ = self.waker.wake();
    }

    fn take(&self) -> Vec<(u64, Option<String>)> {
        std::mem::take(&mut *self.ready.lock().expect("completions"))
    }
}

/// What [`Conn::extract_line`] found in the accumulation buffer.
enum Extract {
    /// A complete, non-blank line (trailing `\n` included).
    Line(Vec<u8>),
    /// The cap was exceeded with no line to show for it.
    Oversize,
    /// Nothing complete yet.
    Partial,
}

/// Per-connection state owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Request bytes accumulated, newline not yet seen past `scanned`.
    inbuf: Vec<u8>,
    /// How far `inbuf` has been scanned for `\n` (so repeated fills of a
    /// large line stay linear, not quadratic).
    scanned: usize,
    /// Response bytes not yet written, from `outpos`.
    outbuf: Vec<u8>,
    outpos: usize,
    /// A line of this connection is at the worker pool.
    inflight: bool,
    /// No more reads: peer EOF, read error, or cap exceeded.
    read_closed: bool,
    /// Close once `outbuf` drains (and nothing is in flight).
    close_after_flush: bool,
    /// The connection is beyond saving (write error / reset): close now,
    /// flushed or not.
    dead: bool,
    /// Interest currently registered with the poller.
    armed: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            scanned: 0,
            outbuf: Vec::new(),
            outpos: 0,
            inflight: false,
            read_closed: false,
            close_after_flush: false,
            dead: false,
            armed: Interest::READ,
        }
    }

    /// Pull whatever the socket has, bounded by the line cap (plus one
    /// chunk of slack): a peer pumping an endless newline-less stream
    /// stops growing this buffer the moment it passes the cap.
    fn fill(&mut self, scratch: &mut [u8]) {
        if self.read_closed {
            return;
        }
        while (self.inbuf.len() as u64) <= MAX_LINE_BYTES {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return;
                }
                Ok(n) => self.inbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Reset underneath us; responses can't be delivered.
                    self.read_closed = true;
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Take the next complete line off the buffer (blank lines skipped,
    /// matching the threads transport).
    fn extract_line(&mut self) -> Extract {
        loop {
            match self.inbuf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(found) => {
                    let end = self.scanned + found;
                    let line: Vec<u8> = self.inbuf.drain(..=end).collect();
                    self.scanned = 0;
                    // One 16 MiB CreateSession must not pin 16 MiB of
                    // buffer for the rest of a mostly-idle connection.
                    if self.inbuf.capacity() > READ_CHUNK && self.inbuf.len() < READ_CHUNK {
                        self.inbuf.shrink_to(READ_CHUNK);
                    }
                    if line.len() as u64 > MAX_LINE_BYTES {
                        return Extract::Oversize;
                    }
                    if line.iter().all(u8::is_ascii_whitespace) {
                        continue;
                    }
                    return Extract::Line(line);
                }
                None => {
                    self.scanned = self.inbuf.len();
                    if self.inbuf.len() as u64 > MAX_LINE_BYTES {
                        return Extract::Oversize;
                    }
                    return Extract::Partial;
                }
            }
        }
    }

    /// Write as much of `outbuf` as the socket accepts right now.
    fn flush(&mut self) {
        while !self.dead && self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => self.dead = true,
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.outpos >= self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            // Same as `inbuf`: a one-off multi-MiB response (Transcript
            // of a long session) must not stay allocated while idle.
            if self.outbuf.capacity() > READ_CHUNK {
                self.outbuf.shrink_to(READ_CHUNK);
            }
        }
    }

    fn queue_response(&mut self, line: &str) {
        self.outbuf.reserve(line.len() + 1);
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    fn flushed(&self) -> bool {
        self.outbuf.is_empty()
    }
}

/// Run the event loop until `shutdown` triggers and the drain finishes.
pub(crate) fn serve_epoll(
    listener: TcpListener,
    handler: Arc<Handler>,
    shutdown: Shutdown,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    {
        let waker = waker.clone();
        shutdown.on_trigger(move || {
            let _ = waker.wake();
        });
    }

    let jobs = Arc::new(JobQueue::default());
    let completions = Arc::new(Completions {
        ready: Mutex::new(Vec::new()),
        waker: waker.clone(),
    });
    let metrics = Arc::clone(handler.store().metrics());
    let workers: Vec<_> = (0..worker_count())
        .map(|i| {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("jim-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = jobs.pop() {
                        let metrics = handler.store().metrics();
                        metrics.worker_queue_depth.add(-1);
                        completions.push(job.token, respond_to(&handler, &job.line));
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();

    let result = event_loop(
        &listener,
        &poller,
        &waker,
        &jobs,
        &completions,
        &shutdown,
        &metrics,
    );

    jobs.close();
    for worker in workers {
        let _ = worker.join();
    }
    // Every connection the loop still held is gone with it; jobs the
    // workers never popped are gone too. Zero the gauges so a snapshot
    // taken after (or across a transport restart in tests) reads clean.
    metrics.live_connections.set(0);
    metrics.worker_queue_depth.set(0);
    result
}

fn event_loop(
    listener: &TcpListener,
    poller: &Poller,
    waker: &Waker,
    jobs: &JobQueue,
    completions: &Completions,
    shutdown: &Shutdown,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Events::with_capacity(1024);
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut touched: Vec<u64> = Vec::new();
    let mut draining: Option<Instant> = None;

    loop {
        if let Some(since) = draining {
            if conns.is_empty() || since.elapsed() > DRAIN_DEADLINE {
                return Ok(());
            }
        }
        let timeout = draining.map(|_| Duration::from_millis(100));
        poller.wait(&mut events, timeout)?;

        touched.clear();
        let mut accept_ready = false;
        for event in events.iter() {
            match event.token {
                WAKER_TOKEN => waker.drain(),
                LISTENER_TOKEN => accept_ready = true,
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if event.readable || event.hangup {
                        conn.fill(&mut scratch);
                    }
                    touched.push(token);
                }
            }
        }

        for (token, response) in completions.take() {
            // A completion for a token that already closed is dropped
            // here — tokens are never reused, so it can't be misdelivered.
            if let Some(conn) = conns.get_mut(&token) {
                conn.inflight = false;
                if let Some(line) = response {
                    conn.queue_response(&line);
                }
                touched.push(token);
            }
        }

        if draining.is_none() && shutdown.is_triggered() {
            draining = Some(Instant::now());
            let _ = poller.delete(listener.as_raw_fd());
            for (&token, conn) in conns.iter_mut() {
                // Stop reading everywhere; whatever is in flight still
                // finishes, flushes and then closes.
                conn.read_closed = true;
                conn.close_after_flush = true;
                touched.push(token);
            }
        }

        if accept_ready && draining.is_none() {
            accept_all(listener, poller, &mut conns, &mut next_token, metrics);
        }

        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            advance(token, &mut conns, poller, jobs, metrics);
        }
    }
}

/// Accept everything pending on the listener and register it.
fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    metrics: &ServerMetrics,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue; // drop the stream; the peer sees a close
                }
                // Responses leave in one write; Nagle would stall the
                // interactive ping-pong a delayed-ACK per turn.
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                match poller.add(stream.as_raw_fd(), token, Interest::READ) {
                    Ok(()) => {
                        conns.insert(token, Conn::new(stream));
                        metrics.live_connections.add(1);
                    }
                    Err(e) => eprintln!("jim-serve: cannot register connection: {e}"),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // EMFILE and friends: the listener event is level-
                // triggered and stays readable, so without a pause the
                // reactor would spin on the failing accept. A short
                // sleep bounds the retry rate; existing connections
                // resume within it.
                eprintln!("jim-serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(25));
                return;
            }
        }
    }
}

/// Drive one connection's state machine as far as it can go right now:
/// flush, then either dispatch the next buffered line or close, then
/// re-arm poller interest to match the new state.
fn advance(
    token: u64,
    conns: &mut HashMap<u64, Conn>,
    poller: &Poller,
    jobs: &JobQueue,
    metrics: &ServerMetrics,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    let mut close = loop {
        conn.flush();
        if conn.dead || (conn.flushed() && conn.close_after_flush && !conn.inflight) {
            break true;
        }
        if !conn.flushed() || conn.inflight || conn.close_after_flush {
            break false;
        }
        match conn.extract_line() {
            Extract::Line(line) => {
                conn.inflight = true;
                metrics.worker_queue_depth.add(1);
                jobs.push(Job { token, line });
                break false;
            }
            Extract::Oversize => {
                // Same contract as the threads transport: answer the
                // error, then drop the connection once it flushes.
                metrics.oversized.inc();
                let response = oversize_response();
                conn.queue_response(&response);
                conn.read_closed = true;
                conn.close_after_flush = true;
                // Loop: flush what we can immediately.
            }
            Extract::Partial => {
                // EOF with no complete line pending: drop the partial.
                break conn.read_closed;
            }
        }
    };
    if !close {
        // Backpressure: read only when idle and fully flushed.
        let want = Interest {
            read: !conn.inflight && conn.flushed() && !conn.read_closed && !conn.close_after_flush,
            write: !conn.flushed(),
        };
        if want != conn.armed {
            match poller.modify(conn.stream.as_raw_fd(), token, want) {
                Ok(()) => conn.armed = want,
                Err(_) => close = true,
            }
        }
    }
    if close {
        if let Some(conn) = conns.remove(&token) {
            let _ = poller.delete(conn.stream.as_raw_fd());
            metrics.live_connections.add(-1);
        }
    }
}
