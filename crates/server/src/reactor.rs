//! The epoll event-loop transport (linux only): a multi-reactor front
//! end with admission control.
//!
//! ## Thread layout
//!
//! ```text
//!                 ┌───────────────┐  round-robin   ┌──────────────────────┐
//!   TCP accept ──▶│ accept thread │───────────────▶│ reactor 0 ... N-1    │
//!                 │  (admission)  │  inbox+waker   │  Poller · conns      │
//!                 └───────┬───────┘                │  worker pool (2..8)  │
//!                         │ over cap:              │  completion queue    │
//!                         ▼                        └──────────────────────┘
//!                  Overloaded + close
//! ```
//!
//! The thread that calls [`serve_epoll`] becomes the **accept loop**: it
//! owns the listener, enforces the global max-connections admission cap,
//! and hands each accepted socket to one of N **reactor threads**
//! (`TransportLimits::reactors`) round-robin, via a per-reactor inbox
//! and eventfd [`Waker`]. Each reactor owns its own `jim-aio`
//! [`Poller`], its own worker pool and its own completion queue, so the
//! accept/framing path scales across cores with no shared epoll set and
//! no cross-reactor locks on the hot path.
//!
//! **Why an accept thread, not `SO_REUSEPORT`?** `serve()` takes a
//! *pre-bound* listener (tests, benches and `jim-load` all bind
//! `127.0.0.1:0` and read the OS-assigned port back), and `SO_REUSEPORT`
//! only balances across sockets that all set the option *before* `bind`
//! — adopting it would mean re-binding inside `serve` (racy for port-0
//! listeners) and breaking the public API. A single accept point also
//! makes the admission cap **exact** (one admitter, one counter — no
//! distributed over-admit race) and balances small connection counts
//! better than the kernel's 4-tuple hash, which happily lands a test's
//! four connections on one reactor. The cost — one thread doing only
//! `accept` + an eventfd write per connection — is noise next to
//! per-connection framing work.
//!
//! ## Guardrails (see [`TransportLimits`])
//!
//! * **Admission**: past `max_connections` the accept thread writes one
//!   typed `Overloaded` line (machine `code":"overloaded"`) and closes —
//!   load is shed, never queued.
//! * **Idle/read timeout**: the reactor's `poller.wait` timeout doubles
//!   as a timer tick; a connection that completes no request line for
//!   `idle_timeout` is answered with `IdleTimeout` and reaped. The clock
//!   resets on *complete lines* only, so a slowloris dripping bytes
//!   mid-line is reaped on schedule.
//! * **In-flight cap**: up to `max_inflight` pipelined lines per
//!   connection run concurrently at the worker pool; responses are
//!   reordered back into **request order** before flushing (`seq`
//!   numbers, a per-connection pending map). Past the cap, read interest
//!   is dropped and the peer is backpressured at the socket.
//!
//! Other invariants carried over from the single-reactor design:
//!
//! * connection tokens are **never reused** within a reactor, so a
//!   completion for a dead connection cannot be misdelivered;
//! * a partial line never exceeds [`MAX_LINE_BYTES`]: past the cap the
//!   peer gets the same answered-then-dropped treatment as on the
//!   threads transport;
//! * [`Shutdown`]: stop accepting, stop reading, let in-flight responses
//!   finish and flush, then return (with a hard deadline so a peer that
//!   never drains its socket cannot pin the process);
//! * the global `live_connections` / `worker_queue_depth` gauges are
//!   **aggregates**: every reactor moves them symmetrically (increment
//!   on admit/dispatch, decrement on close/pop — never `set`), so they
//!   stay correct with N reactors and across transport restarts.

use crate::handler::Handler;
use crate::metrics::{ReactorMetrics, ServerMetrics};
use crate::serve::{
    idle_timeout_response, oversize_response, respond_to, shed_connection, IpPermit, PerIpQuota,
    Shutdown, TransportLimits, DRAIN_DEADLINE, MAX_LINE_BYTES,
};
use crate::sync::{CondvarExt, LockExt};
use jim_aio::{Events, Interest, Poller, Waker};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
/// Connection tokens count up from here (per reactor) and are **never
/// reused**, so a completion for a connection that died mid-request
/// cannot be delivered to a newcomer that recycled its slot.
const FIRST_CONN_TOKEN: u64 = 2;

/// Socket read granularity.
const READ_CHUNK: usize = 64 * 1024;

/// Per-reactor worker-pool bounds: enough to hide one slow request
/// behind others, few enough that the "bounded thread count" promise
/// stays meaningful even at `--reactors 4`.
const MIN_WORKERS: usize = 2;
const MAX_WORKERS: usize = 8;

fn workers_per_reactor(reactors: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(MIN_WORKERS);
    (cores / reactors.max(1)).clamp(MIN_WORKERS, MAX_WORKERS)
}

/// One complete request line travelling to a reactor's worker pool.
/// `seq` is its position in the connection's request order — the reactor
/// uses it to put concurrent completions back in order.
struct Job {
    token: u64,
    seq: u64,
    line: Vec<u8>,
}

/// The reactor→workers channel: a plain mutex+condvar queue (std has no
/// mpmc channel, and this needs no more than push/pop/close).
#[derive(Default)]
struct JobQueue {
    state: Mutex<JobQueueState>,
    cv: Condvar,
}

#[derive(Default)]
struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn push(&self, job: Job) {
        let mut state = self.state.lock_unpoisoned();
        state.jobs.push_back(job);
        self.cv.notify_one();
    }

    /// Block for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock_unpoisoned();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait_unpoisoned(state);
        }
    }

    fn close(&self) {
        self.state.lock_unpoisoned().closed = true;
        self.cv.notify_all();
    }
}

/// The workers→reactor channel: finished responses, plus the waker that
/// pops the reactor out of `epoll_wait` to collect them.
struct Completions {
    ready: Mutex<Vec<(u64, u64, Option<String>)>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, token: u64, seq: u64, response: Option<String>) {
        self.ready.lock_unpoisoned().push((token, seq, response));
        let _ = self.waker.wake();
    }

    fn take(&self) -> Vec<(u64, u64, Option<String>)> {
        std::mem::take(&mut *self.ready.lock_unpoisoned())
    }
}

/// What [`Conn::extract_line`] found in the accumulation buffer.
enum Extract {
    /// A complete, non-blank line (trailing `\n` included).
    Line(Vec<u8>),
    /// The cap was exceeded with no line to show for it.
    Oversize,
    /// Nothing complete yet.
    Partial,
}

/// Per-connection state owned by one reactor.
struct Conn {
    stream: TcpStream,
    /// Request bytes accumulated, newline not yet seen past `scanned`.
    inbuf: Vec<u8>,
    /// How far `inbuf` has been scanned for `\n` (so repeated fills of a
    /// large line stay linear, not quadratic).
    scanned: usize,
    /// Response bytes not yet written, from `outpos`.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Lines of this connection at the worker pool right now.
    inflight: usize,
    /// Request-order sequence number of the next dispatched line.
    next_seq: u64,
    /// Sequence number whose response flushes next: completions arriving
    /// out of order park in `done` until their turn.
    next_flush: u64,
    /// Completed responses not yet promoted to `outbuf` (`None` = the
    /// blank-line no-response case).
    done: BTreeMap<u64, Option<String>>,
    /// No more reads: peer EOF, read error, or cap exceeded.
    read_closed: bool,
    /// Close once `outbuf` drains (and nothing is in flight).
    close_after_flush: bool,
    /// The connection is beyond saving (write error / reset): close now,
    /// flushed or not.
    dead: bool,
    /// Interest currently registered with the poller.
    armed: Interest,
    /// When the last *complete* request line arrived (or the connection
    /// was accepted). Raw bytes do not move this — that is the whole
    /// slowloris defense.
    last_line: Instant,
    /// This connection's claim on its address's per-IP quota (`None`
    /// when the knob is off); dropped with the connection.
    _permit: Option<IpPermit>,
}

impl Conn {
    fn new(stream: TcpStream, permit: Option<IpPermit>) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            scanned: 0,
            outbuf: Vec::new(),
            outpos: 0,
            inflight: 0,
            next_seq: 0,
            next_flush: 0,
            done: BTreeMap::new(),
            read_closed: false,
            close_after_flush: false,
            dead: false,
            armed: Interest::READ,
            last_line: Instant::now(),
            _permit: permit,
        }
    }

    /// Everything dispatched has completed and been promoted.
    fn settled(&self) -> bool {
        self.inflight == 0 && self.done.is_empty()
    }

    /// Pull whatever the socket has, bounded by the line cap (plus one
    /// chunk of slack): a peer pumping an endless newline-less stream
    /// stops growing this buffer the moment it passes the cap.
    fn fill(&mut self, scratch: &mut [u8]) {
        if self.read_closed {
            return;
        }
        while (self.inbuf.len() as u64) <= MAX_LINE_BYTES {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return;
                }
                Ok(n) => self.inbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Reset underneath us; responses can't be delivered.
                    self.read_closed = true;
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Take the next complete line off the buffer (blank lines skipped,
    /// matching the threads transport).
    fn extract_line(&mut self) -> Extract {
        loop {
            match self.inbuf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(found) => {
                    let end = self.scanned + found;
                    let line: Vec<u8> = self.inbuf.drain(..=end).collect();
                    self.scanned = 0;
                    // One 16 MiB CreateSession must not pin 16 MiB of
                    // buffer for the rest of a mostly-idle connection.
                    if self.inbuf.capacity() > READ_CHUNK && self.inbuf.len() < READ_CHUNK {
                        self.inbuf.shrink_to(READ_CHUNK);
                    }
                    if line.len() as u64 > MAX_LINE_BYTES {
                        return Extract::Oversize;
                    }
                    if line.iter().all(u8::is_ascii_whitespace) {
                        continue;
                    }
                    return Extract::Line(line);
                }
                None => {
                    self.scanned = self.inbuf.len();
                    if self.inbuf.len() as u64 > MAX_LINE_BYTES {
                        return Extract::Oversize;
                    }
                    return Extract::Partial;
                }
            }
        }
    }

    /// Write as much of `outbuf` as the socket accepts right now.
    fn flush(&mut self) {
        while !self.dead && self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => self.dead = true,
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.outpos >= self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            // Same as `inbuf`: a one-off multi-MiB response (Transcript
            // of a long session) must not stay allocated while idle.
            if self.outbuf.capacity() > READ_CHUNK {
                self.outbuf.shrink_to(READ_CHUNK);
            }
        }
    }

    fn queue_response(&mut self, line: &str) {
        self.outbuf.reserve(line.len() + 1);
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    fn flushed(&self) -> bool {
        self.outbuf.is_empty()
    }
}

/// A socket the accept thread admitted, travelling to its reactor with
/// the per-IP permit it holds (if the quota is on).
type Admitted = (TcpStream, Option<IpPermit>);

/// The accept thread's handle on one reactor.
struct ReactorHandle {
    /// Sockets admitted but not yet registered with the reactor's poller.
    inbox: Arc<Mutex<Vec<Admitted>>>,
    /// Pops the reactor out of `epoll_wait` to drain the inbox (also
    /// hooked into [`Shutdown`]).
    waker: Waker,
    /// This reactor's metrics slot (shed attribution happens here, since
    /// the accept thread knows which reactor a refused socket was for).
    metrics: Arc<ReactorMetrics>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

/// Run the multi-reactor front end until `shutdown` triggers and every
/// reactor finishes draining. The calling thread becomes the accept
/// loop.
pub(crate) fn serve_epoll(
    listener: TcpListener,
    handler: Arc<Handler>,
    shutdown: Shutdown,
    limits: TransportLimits,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let metrics = Arc::clone(handler.store().metrics());
    // Admitted-and-not-yet-closed connections, across every reactor.
    // The accept thread is the only admitter, so `load >= cap → shed`
    // cannot over-admit.
    let admitted = Arc::new(AtomicUsize::new(0));

    let mut reactors: Vec<ReactorHandle> = Vec::with_capacity(limits.reactors);
    for index in 0..limits.reactors {
        let waker = Waker::new()?;
        let inbox: Arc<Mutex<Vec<Admitted>>> = Arc::default();
        let rmetrics = metrics.reactor(index);
        {
            let waker = waker.clone();
            shutdown.on_trigger(move || {
                let _ = waker.wake();
            });
        }
        let thread = {
            let handler = Arc::clone(&handler);
            let reactor_shutdown = shutdown.clone();
            let limits = limits.clone();
            let waker = waker.clone();
            let inbox = Arc::clone(&inbox);
            let admitted = Arc::clone(&admitted);
            let rmetrics = Arc::clone(&rmetrics);
            let spawned = std::thread::Builder::new()
                .name(format!("jim-reactor-{index}"))
                .spawn(move || {
                    run_reactor(ReactorCtx {
                        index,
                        handler,
                        shutdown: reactor_shutdown,
                        limits,
                        waker,
                        inbox,
                        admitted,
                        rmetrics,
                    })
                });
            match spawned {
                Ok(thread) => thread,
                Err(e) => {
                    // Could not bring up the full reactor set. Shed the
                    // ones already running and surface the error instead
                    // of serving with silently degraded capacity.
                    shutdown.trigger();
                    for reactor in reactors {
                        let _ = reactor.waker.wake();
                        let _ = reactor.thread.join();
                    }
                    return Err(e);
                }
            }
        };
        reactors.push(ReactorHandle {
            inbox,
            waker,
            metrics: rmetrics,
            thread,
        });
    }

    let per_ip = PerIpQuota::from_limits(&limits);
    let accept_result = accept_loop(
        &listener,
        &shutdown,
        &limits,
        per_ip.as_ref(),
        &admitted,
        &metrics,
        &reactors,
    );
    if accept_result.is_err() {
        // The accept path is fatally broken; the server is coming down.
        // Triggering shutdown makes the reactors (and the sweeper) drain
        // and exit so this function can still join everything.
        shutdown.trigger();
    }
    drop(listener); // stop the port answering while the reactors drain
    let mut result = accept_result;
    for reactor in reactors {
        let _ = reactor.waker.wake();
        match reactor.thread.join() {
            Ok(r) => {
                if result.is_ok() {
                    result = r;
                }
            }
            Err(_) => {
                if result.is_ok() {
                    result = Err(io::Error::other("reactor thread panicked"));
                }
            }
        }
    }
    result
}

/// Accept until shutdown: admission check, then round-robin handoff.
fn accept_loop(
    listener: &TcpListener,
    shutdown: &Shutdown,
    limits: &TransportLimits,
    per_ip: Option<&Arc<PerIpQuota>>,
    admitted: &AtomicUsize,
    metrics: &ServerMetrics,
    reactors: &[ReactorHandle],
) -> io::Result<()> {
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    {
        let waker = waker.clone();
        shutdown.on_trigger(move || {
            let _ = waker.wake();
        });
    }
    let mut events = Events::with_capacity(64);
    let mut next = 0usize; // round-robin cursor
    while !shutdown.is_triggered() {
        poller.wait(&mut events, None)?;
        let mut accept_ready = false;
        for event in events.iter() {
            match event.token {
                WAKER_TOKEN => waker.drain(),
                LISTENER_TOKEN => accept_ready = true,
                _ => {}
            }
        }
        if !accept_ready || shutdown.is_triggered() {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // drop the stream; the peer sees a close
                    }
                    // Responses leave in one write; Nagle would stall the
                    // interactive ping-pong a delayed-ACK per turn.
                    let _ = stream.set_nodelay(true);
                    let target = &reactors[next];
                    next = (next + 1) % reactors.len();
                    if admitted.load(Ordering::SeqCst) >= limits.max_connections {
                        metrics.sheds.inc();
                        target.metrics.sheds.inc();
                        shed_connection(stream);
                        continue;
                    }
                    // Per-address quota: shed a greedy peer with the same
                    // typed answer as the global cap. An unattributable
                    // socket (peer_addr fails — already dead) sheds too.
                    let permit = match per_ip {
                        None => None,
                        Some(quota) => {
                            match stream.peer_addr().ok().and_then(|a| quota.admit(a.ip())) {
                                Some(permit) => Some(permit),
                                None => {
                                    metrics.sheds.inc();
                                    target.metrics.sheds.inc();
                                    shed_connection(stream);
                                    continue;
                                }
                            }
                        }
                    };
                    admitted.fetch_add(1, Ordering::SeqCst);
                    metrics.live_connections.add(1);
                    target.inbox.lock_unpoisoned().push((stream, permit));
                    let _ = target.waker.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // EMFILE and friends: the listener event is level-
                    // triggered and stays readable, so without a pause
                    // the loop would spin on the failing accept. A short
                    // sleep bounds the retry rate.
                    eprintln!("jim-serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(25));
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Everything one reactor thread owns.
struct ReactorCtx {
    index: usize,
    handler: Arc<Handler>,
    shutdown: Shutdown,
    limits: TransportLimits,
    waker: Waker,
    inbox: Arc<Mutex<Vec<Admitted>>>,
    admitted: Arc<AtomicUsize>,
    rmetrics: Arc<ReactorMetrics>,
}

/// One reactor: poller + conns + worker pool, until shutdown drains it.
fn run_reactor(ctx: ReactorCtx) -> io::Result<()> {
    let metrics = Arc::clone(ctx.handler.store().metrics());
    let poller = Poller::new()?;
    poller.add(ctx.waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;

    let jobs = Arc::new(JobQueue::default());
    let completions = Arc::new(Completions {
        ready: Mutex::new(Vec::new()),
        waker: ctx.waker.clone(),
    });
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for w in 0..workers_per_reactor(ctx.limits.reactors) {
        let worker_jobs = Arc::clone(&jobs);
        let completions = Arc::clone(&completions);
        let handler = Arc::clone(&ctx.handler);
        let rmetrics = Arc::clone(&ctx.rmetrics);
        let spawned = std::thread::Builder::new()
            .name(format!("jim-r{}-w{w}", ctx.index))
            .spawn(move || {
                while let Some(job) = worker_jobs.pop() {
                    let metrics = handler.store().metrics();
                    metrics.worker_queue_depth.add(-1);
                    rmetrics.worker_queue_depth.add(-1);
                    completions.push(job.token, job.seq, respond_to(&handler, &job.line));
                }
            });
        match spawned {
            Ok(t) => workers.push(t),
            Err(e) if workers.is_empty() => {
                // No worker at all means no request would ever complete:
                // fail the reactor outright rather than accept and hang.
                jobs.close();
                return Err(e);
            }
            Err(e) => {
                // Degraded but functional: log and run with the pool we
                // have — jobs just queue a little deeper.
                eprintln!(
                    "jim-serve: reactor {} running with {} worker(s) (spawn failed: {e})",
                    ctx.index,
                    workers.len()
                );
                break;
            }
        }
    }

    let result = reactor_loop(&ctx, &poller, &jobs, &completions, &metrics);

    jobs.close();
    for worker in workers {
        let _ = worker.join();
    }
    // Symmetric teardown (never `set(0)` — other reactors are still
    // counting): whatever this reactor still holds is released here
    // (dropping the tuple also returns its per-IP slot).
    for admitted in std::mem::take(&mut *ctx.inbox.lock_unpoisoned()) {
        drop(admitted);
        ctx.admitted.fetch_sub(1, Ordering::SeqCst);
        metrics.live_connections.add(-1);
    }
    result
}

fn reactor_loop(
    ctx: &ReactorCtx,
    poller: &Poller,
    jobs: &JobQueue,
    completions: &Completions,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Events::with_capacity(1024);
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut touched: Vec<u64> = Vec::new();
    let mut draining: Option<Instant> = None;
    // The idle sweep rides the poller timeout: wake at least every
    // `tick` so a reap happens within [timeout, timeout + tick].
    let tick = ctx
        .limits
        .idle_timeout
        .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
    let mut last_sweep = Instant::now();

    loop {
        if let Some(since) = draining {
            if conns.is_empty() || since.elapsed() > DRAIN_DEADLINE {
                for (_, conn) in conns.drain() {
                    close_conn(conn, poller, metrics, ctx);
                }
                return Ok(());
            }
        }
        let timeout = match draining {
            Some(_) => Some(Duration::from_millis(100)),
            None => tick,
        };
        poller.wait(&mut events, timeout)?;

        touched.clear();
        for event in events.iter() {
            match event.token {
                WAKER_TOKEN => ctx.waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if event.readable || event.hangup {
                        conn.fill(&mut scratch);
                    }
                    touched.push(token);
                }
            }
        }

        // Sockets the accept thread handed over since the last pass.
        for (stream, permit) in std::mem::take(&mut *ctx.inbox.lock_unpoisoned()) {
            if draining.is_some() {
                // Too late to serve it; release its admission slot (the
                // permit drops with the stream).
                drop(stream);
                ctx.admitted.fetch_sub(1, Ordering::SeqCst);
                metrics.live_connections.add(-1);
                continue;
            }
            let token = next_token;
            next_token += 1;
            match poller.add(stream.as_raw_fd(), token, Interest::READ) {
                Ok(()) => {
                    conns.insert(token, Conn::new(stream, permit));
                    ctx.rmetrics.live_connections.add(1);
                    touched.push(token);
                }
                Err(e) => {
                    eprintln!("jim-serve: cannot register connection: {e}");
                    ctx.admitted.fetch_sub(1, Ordering::SeqCst);
                    metrics.live_connections.add(-1);
                }
            }
        }

        for (token, seq, response) in completions.take() {
            // A completion for a token that already closed is dropped
            // here — tokens are never reused, so it can't be misdelivered.
            if let Some(conn) = conns.get_mut(&token) {
                conn.inflight -= 1;
                conn.done.insert(seq, response);
                touched.push(token);
            }
        }

        if draining.is_none() && ctx.shutdown.is_triggered() {
            draining = Some(Instant::now());
            for (&token, conn) in conns.iter_mut() {
                // Stop reading everywhere; whatever is in flight still
                // finishes, flushes and then closes.
                conn.read_closed = true;
                conn.close_after_flush = true;
                touched.push(token);
            }
        }

        // The timer tick: reap connections idle past the deadline. A
        // conn with work in flight is never idle; one whose peer stopped
        // draining responses gets dropped without the courtesy line.
        if let (None, Some(idle)) = (draining, ctx.limits.idle_timeout) {
            let t = tick.unwrap_or(Duration::MAX);
            if last_sweep.elapsed() >= t {
                last_sweep = Instant::now();
                for (&token, conn) in conns.iter_mut() {
                    if conn.inflight > 0
                        || conn.close_after_flush
                        || conn.dead
                        || conn.last_line.elapsed() < idle
                    {
                        continue;
                    }
                    metrics.idle_timeouts.inc();
                    ctx.rmetrics.idle_timeouts.inc();
                    if conn.flushed() && conn.done.is_empty() {
                        conn.queue_response(&idle_timeout_response());
                        conn.read_closed = true;
                        conn.close_after_flush = true;
                    } else {
                        conn.dead = true;
                    }
                    touched.push(token);
                }
            }
        }

        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            if let Some(conn) = advance(token, &mut conns, poller, jobs, metrics, ctx) {
                close_conn(conn, poller, metrics, ctx);
            }
        }
    }
}

/// Release one closed connection: poller registration, the aggregate
/// and per-reactor gauges, and its global admission slot — the exact
/// mirror of what admission + registration took, so the counters stay
/// correct with any number of reactors (nobody ever `set`s them).
fn close_conn(conn: Conn, poller: &Poller, metrics: &ServerMetrics, ctx: &ReactorCtx) {
    let _ = poller.delete(conn.stream.as_raw_fd());
    metrics.live_connections.add(-1);
    ctx.rmetrics.live_connections.add(-1);
    ctx.admitted.fetch_sub(1, Ordering::SeqCst);
}

/// Drive one connection's state machine as far as it can go right now:
/// promote completed responses into request order, flush, dispatch
/// buffered lines up to the in-flight cap, then re-arm poller interest.
/// Returns the connection if it must close.
fn advance(
    token: u64,
    conns: &mut HashMap<u64, Conn>,
    poller: &Poller,
    jobs: &JobQueue,
    metrics: &ServerMetrics,
    ctx: &ReactorCtx,
) -> Option<Conn> {
    let conn = conns.get_mut(&token)?;
    let mut close = loop {
        // Responses leave in request order: promote every completion
        // whose turn has come, park the rest in `done`.
        while let Some(response) = conn.done.remove(&conn.next_flush) {
            conn.next_flush += 1;
            if let Some(line) = response {
                conn.queue_response(&line);
            }
        }
        conn.flush();
        if conn.dead {
            break true;
        }
        if conn.close_after_flush && conn.settled() && conn.flushed() {
            break true;
        }
        // Dispatch more pipelined lines only when under the in-flight
        // cap and fully flushed (the flush requirement bounds `outbuf`:
        // a peer that won't read its responses stops being served).
        if conn.close_after_flush || !conn.flushed() || conn.inflight >= ctx.limits.max_inflight {
            break false;
        }
        match conn.extract_line() {
            Extract::Line(line) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.inflight += 1;
                conn.last_line = Instant::now();
                metrics.worker_queue_depth.add(1);
                ctx.rmetrics.worker_queue_depth.add(1);
                ctx.rmetrics.dispatched.inc();
                jobs.push(Job { token, seq, line });
                // Loop: there may be more buffered lines under the cap.
            }
            Extract::Oversize => {
                // Same contract as the threads transport: answer the
                // error, then drop the connection once it flushes. The
                // answer takes a `seq` slot so it stays in order behind
                // any responses still in flight.
                metrics.oversized.inc();
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.done.insert(seq, Some(oversize_response()));
                conn.read_closed = true;
                conn.close_after_flush = true;
                // Loop: promote + flush what we can immediately.
            }
            Extract::Partial => {
                // EOF with no complete line pending: drop the partial.
                break conn.read_closed && conn.settled() && conn.flushed();
            }
        }
    };
    if !close {
        // Backpressure: read only when flushed and under the cap.
        let want = Interest {
            read: !conn.read_closed
                && !conn.close_after_flush
                && conn.flushed()
                && conn.inflight < ctx.limits.max_inflight,
            write: !conn.flushed(),
        };
        if want != conn.armed {
            match poller.modify(conn.stream.as_raw_fd(), token, want) {
                Ok(()) => conn.armed = want,
                Err(_) => close = true,
            }
        }
    }
    if close {
        return conns.remove(&token);
    }
    None
}
