//! The TCP front ends: JSON lines over two interchangeable transports.
//!
//! The `Handler`/`protocol` split is transport-agnostic by design — a
//! transport's whole job is *framing* (accumulate bytes to `\n`, enforce
//! the line cap, decode strictly) and *scheduling* (who blocks where).
//! Two implementations share that framing code:
//!
//! * [`Transport::Threads`] — one thread per connection, blocking I/O.
//!   Simple and portable; costs a stack per mostly-idle session, which is
//!   exactly what the interactive workload produces (one question/answer
//!   line per human turn).
//! * [`Transport::Epoll`] — a non-blocking event loop (linux only): one
//!   reactor thread multiplexes every connection through a `jim-aio`
//!   epoll [`jim_aio::Poller`], and a small worker pool runs
//!   [`Handler::handle_line`] so a slow `CreateSession` or journal replay
//!   never stalls the reactor. Thousands of idle connections cost a few
//!   hundred bytes of buffer each instead of a thread stack — see
//!   [`crate::reactor`].
//!
//! Both observe a shared [`Shutdown`] signal: trigger it and the accept
//! loop stops, in-flight responses drain, and [`serve`] returns (the TTL
//! sweeper spawned by [`spawn_sweeper`] observes the same signal). Both
//! decode request lines **strictly**: a line that is not valid UTF-8 is
//! refused with a typed protocol error instead of being lossily mangled
//! into replacement characters and stored as corrupted relation data.

use crate::handler::Handler;
use crate::protocol::ServerError;
use crate::store::SessionStore;
use crate::sync::{CondvarExt, LockExt};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Longest request line the server buffers (16 MiB — roomy enough for a
/// large inline-CSV `CreateSession`). A peer streaming bytes with no
/// newline must not grow server memory without bound.
pub const MAX_LINE_BYTES: u64 = 16 << 20;

/// How often blocked accept/read loops in the threads transport wake to
/// observe the shutdown signal.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// How long a shutting-down transport waits for in-flight responses to
/// finish and flush before giving up on them (a peer that never reads
/// its socket must not pin the process).
pub(crate) const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Default global admission cap (see [`TransportLimits::max_connections`]).
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Default per-connection idle timeout (see [`TransportLimits::idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Default per-connection in-flight cap (see [`TransportLimits::max_inflight`]).
pub const DEFAULT_MAX_INFLIGHT: usize = 4;

/// The production-traffic guardrails both transports honor.
///
/// One struct, one semantics, two enforcement points: the epoll
/// transport checks admission in its accept loop and drives timeouts off
/// the reactor's `poller.wait` tick; the threads transport checks
/// admission in the same place and drives timeouts off its existing
/// 50 ms read-timeout tick. Either way a client sees the identical wire
/// behavior: connection 257 of a 256-cap server gets a typed
/// [`ServerError::Overloaded`] line and a close (never a silent queue),
/// and a peer that goes quiet — or drips bytes without ever finishing a
/// line — is answered with [`ServerError::IdleTimeout`] and reaped.
#[derive(Debug, Clone)]
pub struct TransportLimits {
    /// Epoll reactor threads (`--reactors` / `JIM_REACTORS`). Ignored by
    /// the threads transport. Clamped to at least 1.
    pub reactors: usize,
    /// Global admission cap across every reactor (or connection thread).
    /// Connections past it are shed with [`ServerError::Overloaded`].
    pub max_connections: usize,
    /// Reap a connection that completes no request line for this long
    /// (`None` disables). The clock resets on *complete lines*, not raw
    /// bytes, so a slowloris drip does not count as progress.
    pub idle_timeout: Option<Duration>,
    /// Pipelined requests one connection may have in flight at the
    /// worker pool before the reactor stops reading it (epoll only; the
    /// threads transport is strictly request/response per thread).
    pub max_inflight: usize,
    /// Concurrent connections one peer address may hold (`None` = off,
    /// the default). Past it, that peer's next connect is shed with the
    /// same typed [`ServerError::Overloaded`] as the global cap — one
    /// greedy client stops being able to eat the whole admission budget.
    pub max_per_ip: Option<usize>,
}

impl Default for TransportLimits {
    fn default() -> TransportLimits {
        TransportLimits {
            reactors: default_reactors(),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
            max_inflight: DEFAULT_MAX_INFLIGHT,
            max_per_ip: None,
        }
    }
}

impl TransportLimits {
    /// Clamp every knob to something the transports can run with.
    pub fn normalized(mut self) -> TransportLimits {
        self.reactors = self.reactors.clamp(1, 64);
        self.max_connections = self.max_connections.max(1);
        self.max_inflight = self.max_inflight.max(1);
        self.max_per_ip = self.max_per_ip.map(|n| n.max(1));
        self
    }
}

/// The per-address admission table (see [`TransportLimits::max_per_ip`]).
/// One shared instance per server; both transports consult it at accept,
/// and every admitted connection holds an [`IpPermit`] whose drop gives
/// the slot back however the connection ends.
pub(crate) struct PerIpQuota {
    cap: usize,
    counts: Mutex<HashMap<IpAddr, usize>>,
}

impl PerIpQuota {
    /// The quota the limits ask for, or `None` when the knob is off.
    pub(crate) fn from_limits(limits: &TransportLimits) -> Option<Arc<PerIpQuota>> {
        limits.max_per_ip.map(|cap| {
            Arc::new(PerIpQuota {
                cap,
                counts: Mutex::new(HashMap::new()),
            })
        })
    }

    /// Claim a slot for `ip`: a permit while the address is under its
    /// cap, else `None` (the caller sheds the connection).
    pub(crate) fn admit(self: &Arc<Self>, ip: IpAddr) -> Option<IpPermit> {
        let mut counts = self.counts.lock_unpoisoned();
        let count = counts.entry(ip).or_insert(0);
        if *count >= self.cap {
            return None;
        }
        *count += 1;
        Some(IpPermit {
            quota: Arc::clone(self),
            ip,
        })
    }
}

/// One admitted connection's claim on its address's quota. Dropping it
/// releases the slot and forgets drained addresses, so the table stays
/// proportional to *active* peers, not every address ever seen.
pub(crate) struct IpPermit {
    quota: Arc<PerIpQuota>,
    ip: IpAddr,
}

impl Drop for IpPermit {
    fn drop(&mut self) {
        let mut counts = self.quota.counts.lock_unpoisoned();
        if let Some(count) = counts.get_mut(&self.ip) {
            *count -= 1;
            if *count == 0 {
                counts.remove(&self.ip);
            }
        }
    }
}

/// The reactor-count default: `JIM_REACTORS` if set to a positive
/// integer, else `min(cores, 4)` — enough to spread accept/framing load
/// across cores without spawning a pool of mostly-idle epoll waiters on
/// big machines.
pub fn default_reactors() -> usize {
    if let Ok(raw) = std::env::var("JIM_REACTORS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n.min(64),
            _ => eprintln!("jim-serve: ignoring invalid JIM_REACTORS={raw:?}"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// Which TCP front end [`serve`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One blocking thread per connection (portable fallback).
    Threads,
    /// One epoll reactor plus a worker pool (linux only).
    Epoll,
}

impl Transport {
    /// The best transport this build supports: epoll where `jim-aio` has
    /// a backend (linux), threads elsewhere.
    pub fn default_for_platform() -> Transport {
        if jim_aio::SUPPORTED {
            Transport::Epoll
        } else {
            Transport::Threads
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Transport, String> {
        match s {
            "threads" => Ok(Transport::Threads),
            "epoll" => Ok(Transport::Epoll),
            other => Err(format!(
                "unknown transport {other:?} (expected \"threads\" or \"epoll\")"
            )),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transport::Threads => "threads",
            Transport::Epoll => "epoll",
        })
    }
}

/// A cloneable graceful-shutdown signal shared by the accept loop, every
/// connection, the epoll reactor and the TTL sweeper.
///
/// [`Shutdown::trigger`] is idempotent and returns immediately; the
/// server then stops accepting, finishes and flushes any response already
/// being computed, closes its connections and returns from [`serve`]
/// (the sweeper thread exits the same way). Requests that are merely
/// half-received are dropped — only *in-flight responses* are drained.
#[derive(Clone, Default)]
pub struct Shutdown {
    inner: Arc<ShutdownInner>,
}

#[derive(Default)]
struct ShutdownInner {
    triggered: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
    /// Side effects a trigger must perform beyond flag+condvar — e.g.
    /// waking an epoll reactor out of its wait. Each hook runs exactly
    /// once: at trigger time, or immediately on registration if the
    /// trigger already fired (`HookState::fired` is flipped under the
    /// same lock that hands the hook list to the trigger, so the two
    /// cannot both run one).
    hooks: Mutex<HookState>,
}

#[derive(Default)]
struct HookState {
    pending: Vec<Box<dyn Fn() + Send + Sync>>,
    fired: bool,
}

impl Shutdown {
    /// A fresh, untriggered signal.
    pub fn new() -> Shutdown {
        Shutdown::default()
    }

    /// Request shutdown. Idempotent; never blocks on server progress.
    pub fn trigger(&self) {
        {
            let mut triggered = self.inner.lock.lock_unpoisoned();
            if *triggered {
                return;
            }
            *triggered = true;
            self.inner.triggered.store(true, Ordering::SeqCst);
            self.inner.cv.notify_all();
        }
        let hooks = {
            let mut state = self.inner.hooks.lock_unpoisoned();
            state.fired = true;
            std::mem::take(&mut state.pending)
        };
        // Outside the lock: a hook may itself register further hooks.
        for hook in hooks {
            hook();
        }
    }

    /// Has [`Shutdown::trigger`] been called?
    pub fn is_triggered(&self) -> bool {
        self.inner.triggered.load(Ordering::SeqCst)
    }

    /// Block until triggered or `timeout` elapses; `true` iff triggered.
    /// The sweeper's interval sleep and the threads transport's accept
    /// poll both live here, so a trigger interrupts them immediately.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut triggered = self.inner.lock.lock_unpoisoned();
        while !*triggered {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            triggered = self.inner.cv.wait_timeout_unpoisoned(triggered, remaining);
        }
        true
    }

    /// Register a side effect to run **exactly once** at trigger time —
    /// or immediately, if the signal already fired (registration must
    /// not race a concurrent trigger into a lost wakeup, nor into a
    /// double run).
    pub(crate) fn on_trigger(&self, hook: impl Fn() + Send + Sync + 'static) {
        {
            let mut state = self.inner.hooks.lock_unpoisoned();
            if !state.fired {
                state.pending.push(Box::new(hook));
                return;
            }
        }
        hook(); // late registration: the trigger already ran its hooks
    }
}

/// Serve the listener with the chosen transport until `shutdown` is
/// triggered (or a fatal listener/reactor error), under the default
/// [`TransportLimits`] (which honor `JIM_REACTORS`). [`Transport::Epoll`]
/// off linux returns [`io::ErrorKind::Unsupported`].
pub fn serve(
    listener: TcpListener,
    handler: Arc<Handler>,
    transport: Transport,
    shutdown: Shutdown,
) -> io::Result<()> {
    serve_with(listener, handler, transport, shutdown, Default::default())
}

/// [`serve`] with explicit [`TransportLimits`].
pub fn serve_with(
    listener: TcpListener,
    handler: Arc<Handler>,
    transport: Transport,
    shutdown: Shutdown,
    limits: TransportLimits,
) -> io::Result<()> {
    let limits = limits.normalized();
    match transport {
        Transport::Threads => serve_threads(listener, handler, shutdown, limits),
        Transport::Epoll => {
            #[cfg(target_os = "linux")]
            {
                crate::reactor::serve_epoll(listener, handler, shutdown, limits)
            }
            #[cfg(not(target_os = "linux"))]
            {
                let _ = (listener, handler, shutdown, limits);
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "the epoll transport is linux-only; use --transport threads",
                ))
            }
        }
    }
}

/// Refuse a connection at the admission cap: best-effort write of the
/// typed [`ServerError::Overloaded`] line, then close. Shared by both
/// transports' accept paths so an over-cap client always sees the same
/// thing — an answer and a hangup, never a hang.
pub(crate) fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut line = overloaded_response();
    line.push('\n');
    // The socket is fresh, so the line fits its send buffer whether the
    // stream is blocking or not; if the peer is already gone, the shed
    // stands regardless.
    let _ = stream.write_all(line.as_bytes());
}

/// Decrements the live-connection count (and its metrics gauge) however
/// the connection thread exits (clean EOF, I/O error or panic in the
/// handler).
struct ConnGuard {
    active: Arc<std::sync::atomic::AtomicUsize>,
    gauge: Arc<jim_metrics::Gauge>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.gauge.add(-1);
    }
}

/// The thread-per-connection transport: accept until shutdown, one
/// blocking thread per connection, then drain — connection threads
/// observe the signal within one [`SHUTDOWN_POLL`] (finishing any
/// response they are mid-way through first), and `serve` waits for them
/// up to [`DRAIN_DEADLINE`] so returning really means drained. The
/// [`TransportLimits`] admission cap is enforced at accept; the idle
/// timeout rides the per-read [`SHUTDOWN_POLL`] tick inside
/// [`serve_connection`].
fn serve_threads(
    listener: TcpListener,
    handler: Arc<Handler>,
    shutdown: Shutdown,
    limits: TransportLimits,
) -> io::Result<()> {
    // Non-blocking accept so the loop can observe the shutdown signal;
    // connections themselves stay blocking.
    listener.set_nonblocking(true)?;
    let metrics = Arc::clone(handler.store().metrics());
    let active = Arc::new(AtomicUsize::new(0));
    let per_ip = PerIpQuota::from_limits(&limits);
    let limits = Arc::new(limits);
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _)) => {
                // BSD-derived platforms make accepted sockets inherit the
                // listener's O_NONBLOCK; connection threads rely on
                // blocking reads with a timeout, so force blocking mode
                // (a no-op on linux).
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Admission: `active` counts only admitted connections
                // and this loop is the only admitter, so the cap is
                // exact — no queueing, the peer gets a typed answer now.
                if active.load(Ordering::SeqCst) >= limits.max_connections {
                    metrics.sheds.inc();
                    shed_connection(stream);
                    continue;
                }
                // Per-address quota: a greedy peer is shed the same way
                // an over-cap one is. An unattributable socket (peer_addr
                // fails — it is already dead) is shed too.
                let permit = match &per_ip {
                    None => None,
                    Some(quota) => {
                        match stream.peer_addr().ok().and_then(|a| quota.admit(a.ip())) {
                            Some(permit) => Some(permit),
                            None => {
                                metrics.sheds.inc();
                                shed_connection(stream);
                                continue;
                            }
                        }
                    }
                };
                // One write per response line; Nagle would stall the
                // question/answer ping-pong a delayed-ACK (~40ms) per turn.
                let _ = stream.set_nodelay(true);
                let handler = Arc::clone(&handler);
                let shutdown = shutdown.clone();
                let limits = Arc::clone(&limits);
                active.fetch_add(1, Ordering::SeqCst);
                metrics.live_connections.add(1);
                let guard = ConnGuard {
                    active: Arc::clone(&active),
                    gauge: Arc::clone(&metrics.live_connections),
                };
                std::thread::spawn(move || {
                    let _guard = guard;
                    let _permit = permit; // released when the thread exits
                    if let Err(e) = serve_connection(stream, &handler, &shutdown, &limits) {
                        // Disconnects are routine; log and move on.
                        eprintln!("jim-serve: connection ended: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.wait_timeout(SHUTDOWN_POLL) {
                    break;
                }
            }
            Err(e) => {
                // EMFILE and friends: without a pause this arm is a
                // busy loop until an fd frees up.
                eprintln!("jim-serve: accept failed: {e}");
                if shutdown.wait_timeout(SHUTDOWN_POLL) {
                    break;
                }
            }
        }
    }
    drop(listener); // stop the port answering before the drain wait
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    Ok(())
}

/// Decode one complete request line (newline included or not) and
/// produce the response line, or `None` for a blank line. This is the
/// single decoding path both transports share: non-UTF-8 bytes are
/// **refused** with a typed protocol error — never lossily replaced, so
/// a `CreateSession` carrying mangled inline CSV can never be stored as
/// corrupted relation data.
pub(crate) fn respond_to(handler: &Handler, raw: &[u8]) -> Option<String> {
    let metrics = handler.store().metrics();
    let Ok(line) = std::str::from_utf8(raw) else {
        // Dispatched-then-refused: the line reached the decode path (it
        // counts toward transport traffic) but was never parsed as a
        // request (it counts as a decode refusal, like malformed JSON).
        metrics.dispatched.inc();
        metrics.decode_refused.inc();
        return Some(invalid_utf8_response());
    };
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    metrics.dispatched.inc();
    Some(handler.handle_line(line))
}

/// The typed rejection for a request line with invalid UTF-8.
pub(crate) fn invalid_utf8_response() -> String {
    ServerError::InvalidUtf8.response().render()
}

/// The typed rejection for a request line over [`MAX_LINE_BYTES`].
pub(crate) fn oversize_response() -> String {
    ServerError::Oversize.response().render()
}

/// The typed rejection written (best effort) before reaping an idle peer.
pub(crate) fn idle_timeout_response() -> String {
    ServerError::IdleTimeout.response().render()
}

/// The typed rejection for a connection shed at the admission cap.
pub(crate) fn overloaded_response() -> String {
    ServerError::Overloaded.response().render()
}

/// Pump one connection: read request lines, write response lines.
/// Returns when the peer closes the stream, `shutdown` triggers between
/// requests, or the idle timeout reaps it; drops the connection after
/// answering if a line exceeds [`MAX_LINE_BYTES`].
///
/// Reads are raw `read` calls with a [`SHUTDOWN_POLL`] timeout into an
/// explicit accumulation buffer (not `read_until`): the idle deadline is
/// checked once per read tick, so a slowloris peer dripping one byte per
/// tick is reaped on schedule — a buffered line reader would happily sit
/// inside one `read_until` call for as long as bytes keep trickling in.
/// The deadline clock resets only on **complete** lines.
pub fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    shutdown: &Shutdown,
    limits: &TransportLimits,
) -> io::Result<()> {
    // A read timeout lets an idle (or mid-line) connection observe the
    // shutdown signal and its own idle deadline without a byte arriving.
    stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut scanned = 0usize; // newline-scan high-water mark in `buf`
    let mut chunk = vec![0u8; 64 << 10];
    let mut last_line = Instant::now();
    loop {
        // Answer every complete line already buffered.
        while let Some(found) = buf[scanned..].iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=scanned + found).collect();
            scanned = 0;
            last_line = Instant::now();
            if line.len() as u64 > MAX_LINE_BYTES {
                handler.store().metrics().oversized.inc();
                let mut response = oversize_response();
                response.push('\n');
                writer.write_all(response.as_bytes())?;
                return Ok(()); // drop the connection rather than resync
            }
            if let Some(mut response) = respond_to(handler, &line) {
                // One write per response: two segments would trip the
                // peer's delayed ACK even with nodelay set here.
                response.push('\n');
                writer.write_all(response.as_bytes())?;
                writer.flush()?;
            }
        }
        scanned = buf.len();
        // A one-off huge line must not pin its buffer for the rest of a
        // mostly-idle connection.
        if buf.capacity() > (64 << 10) && buf.len() < (64 << 10) {
            buf.shrink_to(64 << 10);
        }
        // The cap is cumulative across partial reads of one line.
        if buf.len() as u64 > MAX_LINE_BYTES {
            handler.store().metrics().oversized.inc();
            let mut response = oversize_response();
            response.push('\n');
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
            return Ok(());
        }
        // One idle check per tick, whether the tick ended in a timeout,
        // a drip of bytes, or a slow trickle mid-line.
        if let Some(idle) = limits.idle_timeout {
            if last_line.elapsed() >= idle {
                handler.store().metrics().idle_timeouts.inc();
                let mut response = idle_timeout_response();
                response.push('\n');
                let _ = writer.write_all(response.as_bytes()); // best effort
                return Ok(());
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed; drop any partial line
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.is_triggered() {
                    return Ok(()); // a half-received request is not in flight
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Start the TTL sweeper thread, evicting expired sessions every
/// `interval` (floored at 100ms so a tiny TTL cannot become a busy
/// loop). It exits when `shutdown` triggers **or** every other owner of
/// the store is gone (it holds only a weak reference); the returned
/// handle joins promptly after a trigger. Evictions are accounted from
/// the sweep result itself: each sweep updates the metrics aggregate
/// (sweep counters plus the session-population gauges) and the log line
/// is formatted **from those counters**, so the sweeper's reporting and
/// a concurrent `Metrics` snapshot can never disagree about totals —
/// concurrent LRU evictions on `create` move the running totals but are
/// never attributed to the sweep.
pub fn spawn_sweeper(
    store: &Arc<SessionStore>,
    interval: Duration,
    shutdown: Shutdown,
) -> std::thread::JoinHandle<()> {
    let interval = interval.max(Duration::from_millis(100));
    let weak = Arc::downgrade(store);
    std::thread::spawn(move || loop {
        if shutdown.wait_timeout(interval) {
            return;
        }
        let Some(store) = weak.upgrade() else { return };
        let report = store.sweep_report(Instant::now());
        let metrics = store.metrics();
        metrics.sweeps.inc();
        metrics.swept_sessions.add(report.evicted.len() as u64);
        metrics.resident_sessions.set(store.len() as i64);
        metrics.disk_sessions.set(store.disk_ids().len() as i64);
        if !report.evicted.is_empty() {
            eprintln!(
                "jim-serve: swept {} expired session(s), {} resumable on disk \
                 ({} evicted / {} persisted since start; {} resident, {} on disk)",
                report.evicted.len(),
                report.persisted,
                metrics.evicted_total.get(),
                metrics.persisted_total.get(),
                metrics.resident_sessions.get(),
                metrics.disk_sessions.get(),
            );
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn shutdown_trigger_is_idempotent_and_observable() {
        let s = Shutdown::new();
        assert!(!s.is_triggered());
        assert!(!s.wait_timeout(Duration::from_millis(1)), "not yet");
        s.trigger();
        s.trigger(); // idempotent
        assert!(s.is_triggered());
        assert!(s.wait_timeout(Duration::from_secs(3600)), "returns at once");
    }

    #[test]
    fn shutdown_wakes_a_parked_waiter() {
        let s = Shutdown::new();
        let waiter = s.clone();
        let started = Instant::now();
        let t = std::thread::spawn(move || waiter.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        s.trigger();
        assert!(t.join().unwrap(), "woken by the trigger, not the timeout");
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn on_trigger_hooks_run_exactly_once_even_when_registered_late() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fired = Arc::new(AtomicUsize::new(0));
        let s = Shutdown::new();
        let early = Arc::clone(&fired);
        s.on_trigger(move || {
            early.fetch_add(1, Ordering::SeqCst);
        });
        s.trigger();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registered after the fact (the reactor starting during a
        // shutdown race): runs immediately — and does NOT replay the
        // early hook, nor does a redundant trigger re-run anything.
        let late = Arc::clone(&fired);
        s.on_trigger(move || {
            late.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        s.trigger();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn strict_utf8_decode_refuses_and_preserves() {
        let handler = Handler::new(Arc::new(crate::store::SessionStore::new(
            StoreConfig::default(),
        )));
        // Invalid bytes: a typed refusal, not a lossy U+FFFD mangle.
        let r = respond_to(&handler, &[b'{', 0xFF, 0xC3, b'}']).expect("error response");
        assert!(r.contains("\"ok\":false") && r.contains("UTF-8"), "{r}");
        // Blank lines are skipped, valid lines dispatched.
        assert!(respond_to(&handler, b"   \r\n").is_none());
        let r = respond_to(&handler, b"{\"op\":\"ListSessions\"}\n").expect("dispatched");
        assert!(r.contains("\"ok\":true"), "{r}");
    }

    #[test]
    fn sweeper_joins_on_shutdown_and_on_store_drop() {
        let store = Arc::new(crate::store::SessionStore::new(StoreConfig::default()));
        let shutdown = Shutdown::new();
        let sweeper = spawn_sweeper(&store, Duration::from_secs(3600), shutdown.clone());
        shutdown.trigger();
        sweeper.join().expect("sweeper exits on shutdown");

        // Without a trigger, dropping every strong store reference also
        // ends it (it holds only a weak ref), within one interval.
        let shutdown = Shutdown::new();
        let sweeper = spawn_sweeper(&store, Duration::from_millis(100), shutdown);
        drop(store);
        sweeper
            .join()
            .expect("sweeper exits once the store is gone");
    }
}
