//! The TCP front end: JSON lines over a thread-per-connection listener.
//!
//! Scale story (ROADMAP): thread-per-connection is the simplest correct
//! backend for the session-store architecture — the store is the shared
//! state, connections are stateless request pumps, so swapping this module
//! for an async reactor or a sharded fleet touches nothing else.

use crate::handler::Handler;
use crate::store::SessionStore;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Accept connections forever, one thread per connection.
pub fn serve(listener: TcpListener, handler: Arc<Handler>) -> std::io::Result<()> {
    for stream in listener.incoming() {
        match stream {
            Err(e) => eprintln!("jim-serve: accept failed: {e}"),
            Ok(stream) => {
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    if let Err(e) = serve_connection(stream, &handler) {
                        // Disconnects are routine; log and move on.
                        eprintln!("jim-serve: connection ended: {e}");
                    }
                });
            }
        }
    }
    Ok(())
}

/// Longest request line the server buffers (16 MiB — roomy enough for a
/// large inline-CSV `CreateSession`). A peer streaming bytes with no
/// newline must not grow server memory without bound.
pub const MAX_LINE_BYTES: u64 = 16 << 20;

/// Pump one connection: read request lines, write response lines. Returns
/// when the peer closes the stream; drops the connection after answering
/// if a line exceeds [`MAX_LINE_BYTES`].
pub fn serve_connection(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = (&mut reader)
            .take(MAX_LINE_BYTES)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        if buf.last() != Some(&b'\n') && n as u64 == MAX_LINE_BYTES {
            writer.write_all(br#"{"ok":false,"error":"request line exceeds the 16 MiB limit"}"#)?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            return Ok(()); // drop the connection rather than resync mid-line
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        let response = handler.handle_line(line.trim());
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Start the TTL sweeper: a detached thread evicting expired sessions every
/// `interval` (floored at 100ms so a tiny TTL cannot become a busy loop).
/// Holds only a weak reference, so dropping the store stops it. Evictions
/// are accounted, not discarded: each sweep reports how many sessions left
/// memory and how many of those stayed resumable on disk (the store's
/// running totals are surfaced in the `ListSessions` response).
pub fn spawn_sweeper(store: &Arc<SessionStore>, interval: Duration) {
    let interval = interval.max(Duration::from_millis(100));
    let weak = Arc::downgrade(store);
    std::thread::spawn(move || {
        while let Some(store) = weak.upgrade() {
            let persisted_before = store.persisted_total();
            let evicted = store.sweep_at(std::time::Instant::now());
            if !evicted.is_empty() {
                let persisted = store.persisted_total() - persisted_before;
                eprintln!(
                    "jim-serve: swept {} expired session(s), {} resumable on disk \
                     ({} evicted / {} persisted since start)",
                    evicted.len(),
                    persisted,
                    store.evicted_total(),
                    store.persisted_total(),
                );
            }
            drop(store);
            std::thread::sleep(interval);
        }
    });
}
